"""In-switch compute offloads: KV read cache and RPC fan-in aggregation.

The paper's Figure 5 negotiates between host-resident and in-network
implementations of the *same* Chunnel; this module supplies the two offload
shapes NetRPC identifies as the highest-value in-network compute:

* :class:`KvCache` — a read cache for the kv wire protocol, resident in a
  programmable switch (:class:`KvCacheSwitch`) or absent entirely
  (:class:`KvCacheHostPath`, the fallback: every request continues to the
  shard workers).  The switch parses kv-codec requests at **fixed wire
  offsets** — tag at byte 0, op at byte 5, key length at bytes 6..8 — the
  way a P4 parser would, deliberately *not* reusing the host codec.  GET
  hits are answered by rewriting the transiting request into a response
  datagram and redirecting it straight back to the client; PUTs are
  write-through (the cache is updated as the packet transits, so a
  subsequent GET can never observe a stale value once the PUT is
  acknowledged); DELETE and RMW invalidate.  Reads run at line rate
  (station-less, on the fused fast path); cache maintenance crosses the
  switch's control path, modelled as a single-server station whose queueing
  delay is what makes the offload *lose* on write-heavy mixes.

* :class:`FanIn` — scatter/gather RPC: one logical request fans out to N
  workers and their N replies combine into one response.  The scatter is
  always client-side (:class:`_FanInClientStage`); the *gather* either
  happens at the client too (:class:`FanInHost`) or at the ToR
  (:class:`FanInSwitch`), where the switch absorbs N−1 reply datagrams and
  forwards a single combined one — the NetRPC aggregation offload.  Both
  gathers produce byte-identical combined payloads, so the placements are
  observably equivalent above the serialization layer.

Both switch implementations are ordinary discovery records with
:class:`~repro.core.resources.ResourceVector` footprints: negotiation ranks
them by policy, the discovery-side scheduler admits or preempts them
(§6 multi-resource scheduling), and live reconfiguration degrades to the
host path when the switch fails.  A failed switch loses its SRAM: cache
entries and pending aggregations are cleared on both fail and recover, so
a recovered program never serves pre-failure state.
"""

from __future__ import annotations

import struct
from typing import Iterable, Optional

from ..core.chunnel import (
    ChunnelImpl,
    ChunnelSpec,
    ChunnelStage,
    ImplMeta,
    Message,
    Role,
    register_spec,
)
from ..core.registry import catalog
from ..core.resources import SWITCH_SRAM_KB, SWITCH_STAGES, ResourceVector
from ..core.scope import Endpoints, Placement, Scope
from ..core.stack import SetupContext
from ..core.wire import CTL_HEADER
from ..errors import ChunnelArgumentError
from ..sim.datagram import Address, Datagram
from ..sim.faults import CORRUPT_HEADER
from ..sim.programs import PacketAction, PacketProgram, ProgramResult
from ..sim.resources import Station
from ..sim.switch import SwitchProgramFootprint

__all__ = [
    "KvCache",
    "KvCacheSwitch",
    "KvCacheHostPath",
    "SwitchKvCacheReader",
    "SwitchKvCacheWriter",
    "FanIn",
    "FanInHost",
    "FanInSwitch",
    "SwitchFanInProgram",
    "combine_replies",
    "split_combined_value",
]

# kv wire protocol constants, restated at the offsets a switch parser sees.
# (Deliberately independent of apps.kvstore: the P4 program matches bytes,
# it does not link against the host codec.)
_REQ_TAG = 0x10
_RESP_TAG = 0x20
_OP_GET = 0
_OP_PUT = 1
_OP_DELETE = 2
_OP_SCAN = 3
_OP_RMW = 4
_STATUS_OK = 0
_STATUS_NOT_FOUND = 1
_STATUS_ERROR = 2

REPLY_TO_HEADER = "shard_reply_to"
FANIN_PARTS_HEADER = "fanin_parts"
FANIN_COMBINED_HEADER = "fanin_combined"


def _parse_request_key(payload: bytes) -> Optional[tuple[int, bytes]]:
    """(op, raw key) from kv request bytes at fixed offsets, or None.

    Truncated buffers return None — a switch parser falls through to PASS
    rather than acting on garbage (the host codec is the strict validator).
    """
    if len(payload) < 8 or payload[0] != _REQ_TAG:
        return None
    op = payload[5]
    (key_len,) = struct.unpack_from(">H", payload, 6)
    if len(payload) < 8 + key_len:
        return None
    return op, bytes(payload[8 : 8 + key_len])


def _response_bytes(status: int, value: bytes = b"") -> bytes:
    """kv response wire bytes (tag | status | value_len | value)."""
    return struct.pack(">BBI", _RESP_TAG, status, len(value)) + value


def combine_replies(parts: list[bytes]) -> bytes:
    """Fold N kv reply payloads into one combined kv response.

    The combined value is each part's value, length-prefixed (4 bytes, big
    endian), in the order given.  Status is ``ok`` only if every part was
    ``ok``.  Both the host gather and the switch gather call this, which is
    what makes the two placements byte-identical above the wire.
    """
    status = _STATUS_OK
    chunks = []
    for part in parts:
        if len(part) < 6 or part[0] != _RESP_TAG:
            status = _STATUS_ERROR
            chunks.append(struct.pack(">I", 0))
            continue
        part_status = part[1]
        (value_len,) = struct.unpack_from(">I", part, 2)
        value = bytes(part[6 : 6 + value_len])
        if part_status != _STATUS_OK:
            status = _STATUS_ERROR if part_status == _STATUS_ERROR else status
            if part_status == _STATUS_NOT_FOUND and status == _STATUS_OK:
                status = _STATUS_NOT_FOUND
        chunks.append(struct.pack(">I", len(value)) + value)
    return _response_bytes(status, b"".join(chunks))


def split_combined_value(value: bytes) -> list[bytes]:
    """Invert :func:`combine_replies`'s value encoding."""
    parts = []
    offset = 0
    while offset + 4 <= len(value):
        (length,) = struct.unpack_from(">I", value, offset)
        offset += 4
        parts.append(bytes(value[offset : offset + length]))
        offset += length
    return parts


# --------------------------------------------------------------------------
# KV read cache
# --------------------------------------------------------------------------
@register_spec
class KvCache(ChunnelSpec):
    """Cache kv GETs for a set of shard-worker addresses.

    Parameters
    ----------
    choices:
        The shard-worker addresses whose request traffic the cache watches
        (the same list the sharding Chunnel steers across).
    capacity:
        Maximum cached entries; insertion beyond it evicts the oldest
        entry (FIFO — what a register-array P4 cache actually does).
    write_cost:
        Control-path seconds per cache-maintenance operation (PUT/DELETE/
        RMW).  Served by a single control CPU: write-heavy traffic queues
        here, which is the offload's saturation mode.
    """

    type_name = "kvcache"

    def __init__(
        self,
        choices: list[Address],
        capacity: int = 1024,
        write_cost: float = 4.0e-6,
    ):
        if not choices:
            raise ChunnelArgumentError("kvcache needs at least one worker")
        if capacity <= 0:
            raise ChunnelArgumentError("kvcache capacity must be positive")
        if write_cost < 0:
            raise ChunnelArgumentError("kvcache write_cost must be >= 0")
        super().__init__(
            choices=list(choices), capacity=capacity, write_cost=write_cost
        )

    @property
    def choices(self) -> list[Address]:
        return self.args["choices"]


class _CacheState:
    """The register array: key → value plus hit/miss accounting."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: dict[bytes, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalidations = 0
        self.evictions = 0

    def insert(self, key: bytes, value: bytes) -> None:
        if key not in self.entries and len(self.entries) >= self.capacity:
            self.entries.pop(next(iter(self.entries)))
            self.evictions += 1
        self.entries[key] = value

    def clear(self) -> None:
        """SRAM wipe: failure and recovery both start from empty."""
        self.entries.clear()


class SwitchKvCacheReader(PacketProgram):
    """Serve GET hits at line rate by rewriting the request in place.

    Station-less on purpose: reads ride the fused `_Walk` fast path.  A hit
    turns the transiting request datagram into the response — payload and
    size rewritten, source/destination swapped — and redirects it straight
    back toward the client, never touching the server host.
    """

    def __init__(self, name: str, server_entity: str, state: _CacheState):
        super().__init__(name)
        self.server_entity = server_entity
        self.state = state
        self.watched_ports: set[int] = set()

    def match(self, dgram: Datagram) -> bool:
        if dgram.headers.get(CTL_HEADER) or dgram.headers.get(CORRUPT_HEADER):
            return False
        if dgram.dst.host != self.server_entity:
            return False
        if dgram.dst.port not in self.watched_ports:
            return False
        payload = dgram.payload
        return (
            isinstance(payload, (bytes, bytearray))
            and len(payload) >= 8
            and payload[0] == _REQ_TAG
            and payload[5] == _OP_GET
        )

    def handle(self, dgram: Datagram) -> ProgramResult:
        parsed = _parse_request_key(bytes(dgram.payload))
        if parsed is None:
            return ProgramResult(action=PacketAction.PASS)
        _op, key = parsed
        value = self.state.entries.get(key)
        if value is None:
            self.state.misses += 1
            return ProgramResult(action=PacketAction.PASS)
        self.state.hits += 1
        reply_to = dgram.headers.get(REPLY_TO_HEADER)
        client = (
            Address(reply_to[0], reply_to[1]) if reply_to else dgram.src
        )
        worker = dgram.dst
        dgram.payload = _response_bytes(_STATUS_OK, value)
        dgram.size = len(dgram.payload)
        dgram.dst = client
        dgram.src = worker
        headers = {"ser_codec": "kv"}
        if "rpc_id" in dgram.headers:
            headers["rpc_id"] = dgram.headers["rpc_id"]
        dgram.headers = headers
        return ProgramResult(action=PacketAction.REDIRECT)


class SwitchKvCacheWriter(PacketProgram):
    """Cache maintenance on the switch control path (PUT/DELETE/RMW).

    Write-through: a PUT updates the cached value *as the packet transits*,
    before the worker applies it — by the time the client sees the PUT
    acknowledged, cache and store agree, so no later GET reads stale data.
    DELETE and RMW invalidate (the switch cannot compute the merged RMW
    value).  The attached station is the control CPU: one server, fixed
    per-op cost, and therefore a queue that grows with write rate.
    """

    def __init__(
        self,
        name: str,
        server_entity: str,
        state: _CacheState,
        station: Station,
    ):
        super().__init__(name, station=station)
        self.server_entity = server_entity
        self.state = state
        self.watched_ports: set[int] = set()

    def match(self, dgram: Datagram) -> bool:
        # A corrupted PUT must not write-through garbage: the NIC checksum
        # would reject it at the host, so the switch skips it too.
        if dgram.headers.get(CTL_HEADER) or dgram.headers.get(CORRUPT_HEADER):
            return False
        if dgram.dst.host != self.server_entity:
            return False
        if dgram.dst.port not in self.watched_ports:
            return False
        payload = dgram.payload
        return (
            isinstance(payload, (bytes, bytearray))
            and len(payload) >= 8
            and payload[0] == _REQ_TAG
            and payload[5] in (_OP_PUT, _OP_DELETE, _OP_RMW)
        )

    def handle(self, dgram: Datagram) -> ProgramResult:
        parsed = _parse_request_key(bytes(dgram.payload))
        if parsed is None:
            return ProgramResult(action=PacketAction.PASS)
        op, key = parsed
        if op == _OP_PUT:
            value = bytes(dgram.payload[8 + len(key) :])
            self.state.insert(key, value)
            self.state.writes += 1
        else:  # DELETE / RMW: drop the entry, let the store answer.
            if self.state.entries.pop(key, None) is not None:
                self.state.invalidations += 1
        return ProgramResult(action=PacketAction.PASS)


@catalog.add
class KvCacheSwitch(ChunnelImpl):
    """The in-switch KV read cache (NetCache-style, NetRPC's first shape)."""

    meta = ImplMeta(
        chunnel_type="kvcache",
        name="switch",
        priority=85,
        scope=Scope.NETWORK,
        endpoints=Endpoints.SERVER,
        placement=Placement.SWITCH,
        resources=ResourceVector({SWITCH_STAGES: 3, SWITCH_SRAM_KB: 512}),
        description="in-switch GET cache with write-through invalidation",
    )

    FOOTPRINT = SwitchProgramFootprint(stages=3, sram_kb=512)

    def _shared_key(self) -> str:
        spec: KvCache = self.spec
        backends = ",".join(str(a) for a in spec.choices)
        return f"kvcache:{self.location}:[{backends}]"

    def after_establish(self, ctx: SetupContext, connection) -> None:
        if not ctx.is_server:
            return
        if self.location is None:
            raise ChunnelArgumentError(
                "switch kv-cache implementation chosen without a location"
            )
        switch = ctx.network.switches[self.location]
        key = self._shared_key()
        entry = ctx.shared.get(key)
        if entry is None:
            spec: KvCache = self.spec
            state = _CacheState(spec.args["capacity"])
            reader = SwitchKvCacheReader(
                f"{key}/read", ctx.server_entity, state
            )
            station = Station(
                ctx.env,
                spec.args["write_cost"],
                name=f"{key}/ctl",
            )
            writer = SwitchKvCacheWriter(
                f"{key}/write", ctx.server_entity, state, station
            )
            switch.install(reader, SwitchProgramFootprint(stages=2, sram_kb=448))
            switch.install(writer, SwitchProgramFootprint(stages=1, sram_kb=64))
            # SRAM does not survive the ASIC restarting: wipe on both edges
            # so a recovered cache never serves pre-failure values.
            switch.on_state_change(
                lambda _device, _failed, _reason: state.clear()
            )
            entry = (state, reader, writer)
            ctx.shared[key] = entry
        state, reader, writer = entry
        spec = self.spec
        for worker in spec.choices:
            reader.watched_ports.add(worker.port)
            writer.watched_ports.add(worker.port)
        self._entry = entry
        self._refs_key = key + "/refs"
        ctx.shared[self._refs_key] = ctx.shared.get(self._refs_key, 0) + 1

    def teardown(self, ctx: SetupContext) -> None:
        entry = getattr(self, "_entry", None)
        if entry is None:
            return
        self._entry = None
        refs = ctx.shared.get(self._refs_key, 1) - 1
        ctx.shared[self._refs_key] = refs
        if refs <= 0:
            _state, reader, writer = entry
            switch = ctx.network.switches[self.location]
            switch.uninstall(reader)
            switch.uninstall(writer)
            ctx.shared.pop(self._shared_key(), None)
            ctx.shared.pop(self._refs_key, None)

    def make_stage(self, role: Role) -> Optional[ChunnelStage]:
        return None  # the switch programs are the implementation

    @property
    def cache_state(self) -> Optional[_CacheState]:
        entry = getattr(self, "_entry", None)
        return entry[0] if entry is not None else None


@catalog.add
class KvCacheHostPath(ChunnelImpl):
    """The fallback: no cache — every request continues to the workers.

    Registered so negotiation always has a feasible choice when the switch
    is excluded (failed, preempted, or simply absent): the Chunnel then
    costs nothing and caches nothing.
    """

    meta = ImplMeta(
        chunnel_type="kvcache",
        name="host-path",
        priority=10,
        scope=Scope.APPLICATION,
        endpoints=Endpoints.SERVER,
        placement=Placement.HOST_SOFTWARE,
        description="no cache; requests go to the shard workers",
    )

    def make_stage(self, role: Role) -> Optional[ChunnelStage]:
        return None


# --------------------------------------------------------------------------
# RPC fan-in aggregation
# --------------------------------------------------------------------------
@register_spec
class FanIn(ChunnelSpec):
    """Scatter one request to ``members``, gather their replies into one.

    The scatter always happens at the client; the gather placement is what
    negotiation decides (client host vs. ToR switch).
    """

    type_name = "fanin"

    def __init__(self, members: list[Address]):
        if not members:
            raise ChunnelArgumentError("fanin needs at least one member")
        super().__init__(members=list(members))

    @property
    def members(self) -> list[Address]:
        return self.args["members"]


class _FanInClientStage(ChunnelStage):
    """Scatter on send; gather on receive unless the switch already did.

    Replies carrying :data:`FANIN_COMBINED_HEADER` were aggregated in the
    network and pass straight up.  Otherwise the stage buffers parts per
    rpc id and synthesizes the combined payload itself — the host gather,
    and also the graceful path when a switch aggregator fails mid-flight
    and raw replies start arriving again.
    """

    def __init__(self, impl: ChunnelImpl, role: Role):
        super().__init__(impl, role)
        self._next_id = 0
        self._pending: dict[str, dict[Address, bytes]] = {}
        self.fanned_out = 0
        self.gathered_at_host = 0
        self.gathered_in_network = 0

    def on_send(self, msg: Message) -> Iterable[Message]:
        spec: FanIn = self.impl.spec
        rpc_id = msg.headers.get("rpc_id")
        if rpc_id is None:
            rpc_id = f"fanin-{self._next_id}"
            self._next_id += 1
        out = []
        for member in spec.members:
            copy = msg.copy()
            copy.dst = member
            copy.headers["rpc_id"] = rpc_id
            copy.headers[FANIN_PARTS_HEADER] = len(spec.members)
            out.append(copy)
        self.fanned_out += 1
        return out

    def on_recv(self, msg: Message) -> Iterable[Message]:
        if msg.headers.get(FANIN_COMBINED_HEADER):
            self.gathered_in_network += 1
            return [msg]
        spec: FanIn = self.impl.spec
        rpc_id = msg.headers.get("rpc_id")
        if rpc_id is None or not isinstance(msg.payload, (bytes, bytearray)):
            return [msg]  # not ours to gather
        parts = self._pending.setdefault(rpc_id, {})
        parts[msg.src] = bytes(msg.payload)
        if len(parts) < len(spec.members):
            return []
        del self._pending[rpc_id]
        ordered = [parts[m] for m in spec.members if m in parts]
        msg.payload = combine_replies(ordered)
        msg.size = len(msg.payload)
        msg.headers[FANIN_COMBINED_HEADER] = True
        self.gathered_at_host += 1
        return [msg]


class SwitchFanInProgram(PacketProgram):
    """Aggregate N worker replies into one datagram at the switch.

    Learns each pending aggregation from the request copies transiting on
    the way out (they carry the expected part count); buffers reply
    payloads as they transit back; on the last part, rewrites that reply
    into the combined response and redirects it to the client, having
    absorbed (dropped) the earlier N−1.
    """

    def __init__(self, name: str, spec: FanIn, server_entity: str):
        super().__init__(name)
        self.spec = spec
        self.server_entity = server_entity
        self.member_ports = {m.port for m in spec.members}
        #: rpc id → (expected parts, client address, gathered payloads)
        self.pending: dict[str, tuple[int, Address, dict[Address, bytes]]] = {}
        self.aggregated = 0
        self.absorbed = 0

    def clear(self) -> None:
        """SRAM wipe on fail/recover: in-flight aggregations are lost and
        their stragglers fall through to the client's host gather."""
        self.pending.clear()

    def match(self, dgram: Datagram) -> bool:
        if dgram.headers.get(CTL_HEADER) or dgram.headers.get(CORRUPT_HEADER):
            return False
        if (
            dgram.dst.host == self.server_entity
            and dgram.dst.port in self.member_ports
            and FANIN_PARTS_HEADER in dgram.headers
        ):
            return True  # outbound request copy: learn the aggregation
        return (
            dgram.src.host == self.server_entity
            and dgram.src.port in self.member_ports
            and dgram.headers.get("rpc_id") in self.pending
            and isinstance(dgram.payload, (bytes, bytearray))
            and len(dgram.payload) >= 6
            and dgram.payload[0] == _RESP_TAG
        )

    def handle(self, dgram: Datagram) -> ProgramResult:
        rpc_id = dgram.headers.get("rpc_id")
        if FANIN_PARTS_HEADER in dgram.headers and dgram.dst.host == self.server_entity:
            if rpc_id is not None and rpc_id not in self.pending:
                self.pending[rpc_id] = (
                    dgram.headers[FANIN_PARTS_HEADER],
                    dgram.src,
                    {},
                )
            return ProgramResult(action=PacketAction.PASS)
        expected, client, parts = self.pending[rpc_id]
        parts[dgram.src] = bytes(dgram.payload)
        if len(parts) < expected:
            self.absorbed += 1
            return ProgramResult(action=PacketAction.DROP)
        del self.pending[rpc_id]
        ordered = [parts[m] for m in self.spec.members if m in parts]
        dgram.payload = combine_replies(ordered)
        dgram.size = len(dgram.payload)
        dgram.dst = client
        dgram.headers = {
            "ser_codec": "kv",
            "rpc_id": rpc_id,
            FANIN_COMBINED_HEADER: True,
        }
        self.aggregated += 1
        return ProgramResult(action=PacketAction.REDIRECT)


@catalog.add
class FanInHost(ChunnelImpl):
    """Gather at the client host (the fallback placement)."""

    meta = ImplMeta(
        chunnel_type="fanin",
        name="host-gather",
        priority=15,
        scope=Scope.APPLICATION,
        endpoints=Endpoints.CLIENT,
        placement=Placement.HOST_SOFTWARE,
        description="client scatters and gathers the replies itself",
    )

    def make_stage(self, role: Role) -> Optional[ChunnelStage]:
        return _FanInClientStage(self, role) if role is Role.CLIENT else None


@catalog.add
class FanInSwitch(ChunnelImpl):
    """Gather at the ToR: N replies in, one combined reply out."""

    meta = ImplMeta(
        chunnel_type="fanin",
        name="switch-agg",
        priority=70,
        scope=Scope.NETWORK,
        endpoints=Endpoints.CLIENT,
        placement=Placement.SWITCH,
        resources=ResourceVector({SWITCH_STAGES: 2, SWITCH_SRAM_KB: 256}),
        description="in-switch reply aggregation for RPC fan-in",
    )

    FOOTPRINT = SwitchProgramFootprint(stages=2, sram_kb=256)

    def _shared_key(self) -> str:
        spec: FanIn = self.spec
        members = ",".join(str(a) for a in spec.members)
        return f"fanin-agg:{self.location}:[{members}]"

    def after_establish(self, ctx: SetupContext, connection) -> None:
        if ctx.is_server:
            return
        if self.location is None:
            raise ChunnelArgumentError(
                "switch fan-in implementation chosen without a location"
            )
        switch = ctx.network.switches[self.location]
        key = self._shared_key()
        program: Optional[SwitchFanInProgram] = ctx.shared.get(key)
        if program is None:
            program = SwitchFanInProgram(key, self.spec, ctx.server_entity)
            switch.install(program, self.FOOTPRINT)
            switch.on_state_change(
                lambda _device, _failed, _reason: program.clear()
            )
            ctx.shared[key] = program
        self._program = program
        self._refs_key = key + "/refs"
        ctx.shared[self._refs_key] = ctx.shared.get(self._refs_key, 0) + 1

    def teardown(self, ctx: SetupContext) -> None:
        program = getattr(self, "_program", None)
        if program is None:
            return
        self._program = None
        refs = ctx.shared.get(self._refs_key, 1) - 1
        ctx.shared[self._refs_key] = refs
        if refs <= 0:
            switch = ctx.network.switches[self.location]
            switch.uninstall(program)
            ctx.shared.pop(self._shared_key(), None)
            ctx.shared.pop(self._refs_key, None)

    def make_stage(self, role: Role) -> Optional[ChunnelStage]:
        # The scatter (and the degraded-mode gather) still run at the
        # client; only the aggregation moved into the network.
        return _FanInClientStage(self, role) if role is Role.CLIENT else None
