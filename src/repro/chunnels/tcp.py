"""The coarse TCP Chunnel (§2's minimality discussion).

The paper argues minimality is subjective: NIC TCP-offload engines offload
*all* of TCP, and most applications want all of TCP's functions or none, so
a single coarse ``tcp`` Chunnel is more useful than fine-grained pieces.
This Chunnel bundles reliability (ack/retransmit) and in-order delivery in
one type, and ships two implementations: the software fallback and a
SmartNIC TOE whose host CPU cost approximates doorbell writes.

(For applications that *do* want the pieces separately, ``reliable`` and
``ordered`` remain independent Chunnels — exactly the trade-off §2
describes.)
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..core.chunnel import ChunnelImpl, ChunnelSpec, ImplMeta, Message, Role, register_spec
from ..core.registry import catalog
from ..core.resources import NIC_SLOTS, ResourceVector
from ..core.scope import Endpoints, Placement, Scope
from .reliability import _ReliableStage

__all__ = ["Tcp", "TcpFallback", "TcpToe"]

_STREAM_SEQ = "tcp_seq"


@register_spec
class Tcp(ChunnelSpec):
    """Reliable, in-order byte-message delivery as one Chunnel.

    Parameters mirror :class:`~repro.chunnels.reliability.Reliable`, plus
    ``window``: the flow-control limit on unacknowledged messages in
    flight (TCP's third bundled function, §2).  Sends beyond the window
    queue at the sender and drain as acks arrive.
    """

    type_name = "tcp"

    def __init__(
        self, timeout: float = 200e-6, max_retries: int = 5, window: int = 32
    ):
        if timeout <= 0:
            raise ValueError("retransmission timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if window < 1:
            raise ValueError("window must be at least 1")
        super().__init__(timeout=timeout, max_retries=max_retries, window=window)


class _TcpStage(_ReliableStage):
    """Reliability plus per-source resequencing plus a send window.

    Gaps are left to the retransmission machinery: a missing message will
    arrive again, so the resequencer holds out-of-order arrivals without a
    flush timer.  The window bounds in-flight (unacked) messages; excess
    sends queue FIFO and are released by incoming acks.
    """

    def __init__(self, impl: ChunnelImpl, role: Role, per_message_cost: float):
        super().__init__(impl, role, per_message_cost)
        self.window = impl.spec.args.get("window", 32)
        self._stream_next = 1
        self._send_queue: "deque[Message]" = deque()
        self._rx_expected: dict[Optional[str], int] = {}
        self._rx_buffers: dict[Optional[str], dict[int, Message]] = {}
        self.reordered = 0
        self.window_stalls = 0

    def on_send(self, msg: Message) -> Iterable[Message]:
        msg.headers[_STREAM_SEQ] = self._stream_next
        self._stream_next += 1
        if len(self._unacked) >= self.window:
            self.window_stalls += 1
            self._send_queue.append(msg)
            return []
        return super().on_send(msg)

    def _after_ack(self, seq) -> None:
        # The window opened: release queued sends through the reliability
        # machinery (sequence/timer assignment happens now, at actual send).
        while self._send_queue and len(self._unacked) < self.window:
            queued = self._send_queue.popleft()
            for out in super().on_send(queued):
                self.send_below(out)

    def stop(self) -> None:
        self._send_queue.clear()
        super().stop()

    def on_recv(self, msg: Message) -> Iterable[Message]:
        delivered = super().on_recv(msg)
        ordered: list[Message] = []
        for out in delivered:
            ordered.extend(self._resequence(out))
        return ordered

    def _resequence(self, msg: Message) -> list[Message]:
        seq = msg.headers.get(_STREAM_SEQ)
        if seq is None:
            return [msg]
        source = msg.src.host if msg.src else None
        expected = self._rx_expected.get(source, 1)
        if seq < expected:
            return []
        buffer = self._rx_buffers.setdefault(source, {})
        if seq > expected:
            self.reordered += 1
            buffer[seq] = msg
            return []
        released = [msg]
        expected += 1
        while expected in buffer:
            released.append(buffer.pop(expected))
            expected += 1
        self._rx_expected[source] = expected
        return released


@catalog.add
class TcpFallback(ChunnelImpl):
    """Software TCP-class delivery (always available; mTCP-class)."""

    meta = ImplMeta(
        chunnel_type="tcp",
        name="sw",
        priority=10,
        scope=Scope.APPLICATION,
        endpoints=Endpoints.BOTH,
        placement=Placement.HOST_SOFTWARE,
        description="userspace reliability + ordering",
    )

    PER_MESSAGE_COST = 0.8e-6

    def make_stage(self, role: Role):
        return _TcpStage(self, role, self.PER_MESSAGE_COST)


@catalog.add
class TcpToe(ChunnelImpl):
    """NIC TCP-offload engine (§2): full protocol on the device."""

    meta = ImplMeta(
        chunnel_type="tcp",
        name="toe",
        priority=80,
        scope=Scope.HOST,
        endpoints=Endpoints.ANY,
        placement=Placement.SMARTNIC,
        resources=ResourceVector({NIC_SLOTS: 1}),
        description="TCP offload engine",
    )

    PER_MESSAGE_COST = 0.03e-6

    def make_stage(self, role: Role):
        return _TcpStage(self, role, self.PER_MESSAGE_COST)
