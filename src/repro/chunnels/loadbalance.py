"""The load-balancing Chunnel (§3.2 "Load Balancing, Sharding, and
Routing").

Unlike sharding (key-affine routing), a load balancer spreads requests
across equivalent backends.  The paper's point is about *where* this runs:
an application load balancer (ALB/F5/ProxySQL-style proxy) is easy to
deploy but becomes a bottleneck; client-side balancing scales but
complicates operations.  As a Chunnel, the placement is negotiated per
connection:

* ``LoadBalanceClient`` — client picks a backend per request;
* ``LoadBalanceProxy`` — a server-side proxy stage forwards each request
  (the ALB baseline shape: every request costs an extra hop and the proxy
  serializes).
"""

from __future__ import annotations

import zlib
from typing import Iterable, Optional

from ..core.chunnel import (
    ChunnelImpl,
    ChunnelSpec,
    ChunnelStage,
    ImplMeta,
    Message,
    Role,
    register_spec,
)
from ..core.registry import catalog
from ..core.scope import Endpoints, Placement, Scope
from ..errors import ChunnelArgumentError
from ..sim.datagram import Address
from .sharding import REPLY_TO_HEADER

__all__ = ["LoadBalance", "LoadBalanceClient", "LoadBalanceProxy"]


@register_spec
class LoadBalance(ChunnelSpec):
    """Spread requests over ``backends``.

    ``strategy``: ``"round_robin"`` or ``"hash_source"`` (connection
    affinity by source address).
    """

    type_name = "loadbalance"

    def __init__(self, backends: list[Address], strategy: str = "round_robin"):
        if not backends:
            raise ChunnelArgumentError("loadbalance needs at least one backend")
        if strategy not in ("round_robin", "hash_source"):
            raise ChunnelArgumentError(f"unknown strategy {strategy!r}")
        super().__init__(backends=list(backends), strategy=strategy)

    @property
    def backends(self) -> list[Address]:
        return self.args["backends"]


class _BalanceState:
    """Backend selection shared by both stage flavours."""

    def __init__(self, spec: LoadBalance):
        self.spec = spec
        self._next = 0

    def pick(self, source: Optional[Address]) -> tuple[Address, bool]:
        """Choose a backend; the flag reports whether source affinity
        actually applied (``hash_source`` with a known source)."""
        backends = self.spec.backends
        if self.spec.args["strategy"] == "hash_source" and source is not None:
            index = zlib.crc32(str(source).encode()) % len(backends)
            return backends[index], True
        index = self._next % len(backends)
        self._next += 1
        return backends[index], False


class _ClientBalanceStage(ChunnelStage):
    """Client-side balancing: address each request directly.

    Under ``hash_source`` the hash key is the connection's own source
    address — every request from one connection lands on the same backend
    (the docstring's affinity promise).  ``affinity_picks`` counts the
    requests that used the hash; the remainder of ``requests_balanced``
    fell back to round-robin (round-robin strategy, or a source that is
    genuinely unknown because the stack has no socket yet).
    """

    PER_REQUEST_COST = 0.2e-6

    def __init__(self, impl: ChunnelImpl, role: Role):
        super().__init__(impl, role)
        self.state = _BalanceState(impl.spec)
        self.requests_balanced = 0
        self.affinity_picks = 0

    def _source_address(self) -> Optional[Address]:
        conn = self._stack.connection if self._stack is not None else None
        socket = conn.socket if conn is not None else None
        return socket.address if socket is not None else None

    def on_send(self, msg: Message) -> Iterable[Message]:
        msg.dst, affine = self.state.pick(self._source_address())
        self.charge(self.PER_REQUEST_COST)
        self.requests_balanced += 1
        if affine:
            self.affinity_picks += 1
        return [msg]


class _ProxyBalanceStage(ChunnelStage):
    """Server-side proxy: receive, pick a backend, re-send."""

    PER_REQUEST_COST = 6.0e-6  # proxy packet handling (serializes requests)

    def __init__(self, impl: ChunnelImpl, role: Role):
        super().__init__(impl, role)
        self.state = _BalanceState(impl.spec)
        self.requests_proxied = 0
        self.proxied_without_source = 0

    def on_recv(self, msg: Message) -> Iterable[Message]:
        if msg.headers.get("lb_forwarded"):
            return [msg]
        self.charge(self.PER_REQUEST_COST)
        forward = msg.copy()
        forward.dst, _affine = self.state.pick(msg.src)
        forward.headers["lb_forwarded"] = True
        if msg.src is not None:
            forward.headers[REPLY_TO_HEADER] = [msg.src.host, msg.src.port]
        else:
            # No source address: the backend has nowhere to send the reply.
            # The request is still forwarded (one-way traffic is legal) but
            # the dead reply path is recorded instead of silently produced.
            self.proxied_without_source += 1
            conn = self._stack.connection if self._stack is not None else None
            if conn is not None:
                conn.runtime.network.trace.event(
                    "loadbalance",
                    conn.conn_id,
                    action="forward-without-source",
                    backend=str(forward.dst),
                )
        self.send_below(forward)
        self.requests_proxied += 1
        return []


@catalog.add
class LoadBalanceClient(ChunnelImpl):
    """Client-side balancing (scales with clients)."""

    meta = ImplMeta(
        chunnel_type="loadbalance",
        name="client",
        priority=20,
        scope=Scope.APPLICATION,
        endpoints=Endpoints.CLIENT,
        placement=Placement.HOST_SOFTWARE,
        description="client picks a backend per request",
    )

    def make_stage(self, role: Role) -> Optional[ChunnelStage]:
        return _ClientBalanceStage(self, role) if role is Role.CLIENT else None


@catalog.add
class LoadBalanceProxy(ChunnelImpl):
    """Proxy balancing at the server (the ALB baseline shape)."""

    meta = ImplMeta(
        chunnel_type="loadbalance",
        name="proxy",
        priority=10,
        scope=Scope.APPLICATION,
        endpoints=Endpoints.SERVER,
        placement=Placement.HOST_SOFTWARE,
        description="userspace proxy forwards each request",
    )

    def make_stage(self, role: Role) -> Optional[ChunnelStage]:
        return _ProxyBalanceStage(self, role) if role is Role.SERVER else None
