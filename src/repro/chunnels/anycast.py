"""The anycast Chunnel (§3.2 "Anycast").

Route each connection to "the best" instance of a replicated service.  The
paper's observation: IP anycast picks the topologically-nearest instance
but suffers routing instability, so many deployments fall back to DNS-based
selection; which is right depends on where the application is deployed —
so make it a Chunnel and let the connection bind whichever mechanism is
available.

Both implementations act at *instance selection* time (the per-connection
name resolution step):

* ``AnycastIp`` — nearest instance by network path latency (what IP
  anycast approximates);
* ``AnycastDns`` — DNS-style selection: deterministic rotation over the
  healthy instance list.

The spec's ``select_instance`` hook applies whichever strategy the
connection negotiated last time the application connected; before the first
negotiation it uses the nearest-instance strategy, matching anycast's
connection-establishment semantics.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from ..core.chunnel import ChunnelImpl, ChunnelSpec, ImplMeta, register_spec
from ..core.registry import catalog
from ..core.scope import Endpoints, Placement, Scope
from ..sim.datagram import Address

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.host import NetEntity
    from ..sim.network import Network

__all__ = ["Anycast", "AnycastIp", "AnycastDns", "nearest_instance"]

_rotation = itertools.count()


def nearest_instance(
    instances: list[Address], entity: "NetEntity", network: "Network"
) -> Optional[Address]:
    """The instance with the lowest path latency from ``entity``."""
    if not instances:
        return None
    origin = entity.host.name

    def path_cost(address: Address) -> float:
        target = network.entities.get(address.host)
        if target is None:
            return float("inf")
        if target.host.name == origin:
            return 0.0
        path = network.route(origin, target.host.name)
        return sum(
            network.link_between(a, b).latency for a, b in zip(path, path[1:])
        )

    return min(instances, key=lambda a: (path_cost(a), a.host, a.port))


def rotating_instance(
    instances: list[Address], entity: "NetEntity", network: "Network"
) -> Optional[Address]:
    """DNS-style rotation across instances."""
    if not instances:
        return None
    return instances[next(_rotation) % len(instances)]


@register_spec
class Anycast(ChunnelSpec):
    """Connect to the best instance of a replicated service.

    ``strategy`` seeds the pre-negotiation behaviour: ``"nearest"``
    (IP-anycast-like, default) or ``"rotate"`` (DNS-like).
    """

    type_name = "anycast"

    def __init__(self, strategy: str = "nearest"):
        if strategy not in ("nearest", "rotate"):
            raise ValueError(f"unknown anycast strategy {strategy!r}")
        super().__init__(strategy=strategy)

    def select_instance(
        self, instances: list[Address], entity: "NetEntity", network: "Network"
    ) -> Optional[Address]:
        if self.args["strategy"] == "rotate":
            return rotating_instance(instances, entity, network)
        return nearest_instance(instances, entity, network)


@catalog.add
class AnycastIp(ChunnelImpl):
    """Nearest-instance selection (IP anycast semantics)."""

    meta = ImplMeta(
        chunnel_type="anycast",
        name="ip",
        priority=30,
        scope=Scope.NETWORK,
        endpoints=Endpoints.ANY,
        placement=Placement.HOST_SOFTWARE,
        description="route to the topologically nearest instance",
    )


@catalog.add
class AnycastDns(ChunnelImpl):
    """DNS-rotation selection (the common deployed fallback)."""

    meta = ImplMeta(
        chunnel_type="anycast",
        name="dns",
        priority=10,
        scope=Scope.GLOBAL,
        endpoints=Endpoints.ANY,
        placement=Placement.HOST_SOFTWARE,
        description="rotate across healthy instances",
    )
