"""The in-order delivery Chunnel.

Resequences datagrams per sender: messages carry a per-connection sequence
number; the receiver buffers out-of-order arrivals and releases them in
order.  Composes under ``reliable`` (which handles loss) to approximate the
delivery guarantees applications get from TCP, without taking all of TCP
(the §2 minimality discussion).

A buffer-flush timer bounds head-of-line blocking: if a gap persists longer
than ``flush_after``, buffered messages are released out of order rather
than held forever (the application opted into ordering, not deadlock).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.chunnel import (
    ChunnelImpl,
    ChunnelSpec,
    ChunnelStage,
    ImplMeta,
    Message,
    Role,
    register_spec,
)
from ..core.registry import catalog
from ..core.scope import Endpoints, Placement, Scope
from ..sim.eventloop import Interrupt

__all__ = ["Ordered", "OrderedFallback"]

_SEQ = "ord_seq"


@register_spec
class Ordered(ChunnelSpec):
    """Per-sender in-order delivery.

    Parameters
    ----------
    flush_after:
        Seconds a gap may block delivery before the buffer is released
        out of order (None = hold forever).
    """

    type_name = "ordered"

    def __init__(self, flush_after: Optional[float] = 2e-3):
        if flush_after is not None and flush_after <= 0:
            raise ValueError("flush_after must be positive or None")
        super().__init__(flush_after=flush_after)


class _OrderedStage(ChunnelStage):
    """Sequence stamping on send; per-source resequencing on receive."""

    def __init__(self, impl: ChunnelImpl, role: Role):
        super().__init__(impl, role)
        self.flush_after = impl.spec.args["flush_after"]
        self._next_send = 1
        # Per source: next expected seq and the out-of-order buffer.
        self._expected: dict[Optional[str], int] = {}
        self._buffers: dict[Optional[str], dict[int, Message]] = {}
        self._flush_timers: dict[Optional[str], object] = {}
        self.out_of_order = 0
        self.forced_flushes = 0

    def on_send(self, msg: Message) -> Iterable[Message]:
        msg.headers[_SEQ] = self._next_send
        self._next_send += 1
        return [msg]

    def on_recv(self, msg: Message) -> Iterable[Message]:
        seq = msg.headers.get(_SEQ)
        if seq is None:
            return [msg]  # unsequenced traffic passes through
        source = msg.src.host if msg.src else None
        expected = self._expected.get(source, 1)
        if seq < expected:
            return []  # stale duplicate
        buffer = self._buffers.setdefault(source, {})
        if seq > expected:
            self.out_of_order += 1
            buffer[seq] = msg
            self._arm_flush(source)
            return []
        # In-order: release it plus any now-contiguous buffered run.
        released = [msg]
        expected += 1
        while expected in buffer:
            released.append(buffer.pop(expected))
            expected += 1
        self._expected[source] = expected
        if not buffer:
            self._disarm_flush(source)
        return released

    # -- gap-timeout plumbing ------------------------------------------------
    def _arm_flush(self, source: Optional[str]) -> None:
        if self.flush_after is None or source in self._flush_timers:
            return
        self._flush_timers[source] = self.env.process(
            self._flush_loop(source), name=f"ord.flush:{source}"
        )

    def _disarm_flush(self, source: Optional[str]) -> None:
        timer = self._flush_timers.pop(source, None)
        if timer is not None and timer.is_alive:
            timer.interrupt("gap filled")

    def _flush_loop(self, source: Optional[str]):
        try:
            yield self.env.timeout(self.flush_after)
        except Interrupt:
            return
        buffer = self._buffers.get(source, {})
        if not buffer:
            return
        self.forced_flushes += 1
        pending = [buffer.pop(seq) for seq in sorted(buffer)]
        top = max(msg.headers[_SEQ] for msg in pending)
        self._expected[source] = max(self._expected.get(source, 1), top + 1)
        self._flush_timers.pop(source, None)
        for msg in pending:
            self.deliver_above(msg)

    def stop(self) -> None:
        for timer in self._flush_timers.values():
            if timer.is_alive:
                timer.interrupt("stack stopped")
        self._flush_timers.clear()


@catalog.add
class OrderedFallback(ChunnelImpl):
    """Software resequencer (always available)."""

    meta = ImplMeta(
        chunnel_type="ordered",
        name="sw",
        priority=10,
        scope=Scope.APPLICATION,
        endpoints=Endpoints.BOTH,
        placement=Placement.HOST_SOFTWARE,
        description="per-source resequencing buffer",
    )

    def make_stage(self, role: Role) -> ChunnelStage:
        return _OrderedStage(self, role)
