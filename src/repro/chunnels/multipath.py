"""The weighted-multipath Chunnel (ROADMAP item 3: one flow, many tunnels).

``WeightedMultipath`` spreads one connection's datagrams over up to
``tunnels`` edge-disjoint network paths: the sender-side stage queries
:meth:`~repro.sim.network.Network.k_routes` once at start, then picks a
tunnel per packet from the negotiated weights using a seeded
per-connection RNG, and pins the chosen path into the datagram with the
:data:`~repro.sim.network.SRCROUTE_HEADER` source route.  The receive
side strips the routing headers and keeps per-tunnel delivery counters.

Weights are ordinary Chunnel args, so they travel through negotiation
like any other spec parameter — and, critically, they can be *renegotiated
mid-connection*: a same-shape transition carrying a reweighted spec
rebuilds only this node (see ``ChunnelDag.merge_arg_updates``), leaving a
reliability stage above it — and its unacked window — untouched.  That is
the zero-app-loss live-rebalancing mechanism PROTOCOL.md §10 documents:
a path-quality trigger shifts traffic off a degrading link without the
application noticing.

Retransmissions re-roll the tunnel choice for free: a reliability stage
above this one buffers its copy *before* the multipath headers are
stamped, so a retransmit re-traverses this stage and may escape a path
that just went bad.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..core.chunnel import (
    ChunnelImpl,
    ChunnelSpec,
    ChunnelStage,
    ImplMeta,
    Message,
    Role,
    register_spec,
)
from ..core.registry import catalog
from ..core.scope import Endpoints, Placement, Scope
from ..errors import ChunnelArgumentError
from ..sim.network import SRCROUTE_HEADER

__all__ = ["MULTIPATH_TUNNEL_HEADER", "MultipathWeighted", "WeightedMultipath"]

#: Header carrying the chosen tunnel index (an int in ``[0, tunnels)``),
#: stamped by the sender and stripped — after counting — by the receiver.
MULTIPATH_TUNNEL_HEADER = "mp_tunnel"


@register_spec
class WeightedMultipath(ChunnelSpec):
    """Per-packet weighted spreading over ``tunnels`` disjoint paths.

    Parameters
    ----------
    tunnels:
        How many edge-disjoint paths to request from the topology.
    weights:
        Relative (not necessarily normalized) positive weight per tunnel;
        defaults to equal weights.  ``weights[i]`` is the probability mass
        of tunnel ``i`` under the seeded per-connection chooser.
    seed:
        Chooser seed.  The per-connection RNG is derived from
        ``(seed, conn_id, role)``, so same-seed runs pick bit-identical
        tunnel sequences while distinct connections stay uncorrelated.
    """

    type_name = "multipath"

    def __init__(
        self,
        tunnels: int = 2,
        weights: Optional[list[float]] = None,
        seed: int = 0,
    ):
        if tunnels < 1:
            raise ChunnelArgumentError("multipath needs at least one tunnel")
        if weights is None:
            weights = [1.0] * tunnels
        weights = [float(w) for w in weights]
        if len(weights) != tunnels:
            raise ChunnelArgumentError(
                f"got {len(weights)} weights for {tunnels} tunnels"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ChunnelArgumentError(
                "tunnel weights must be non-negative with a positive sum"
            )
        super().__init__(tunnels=tunnels, weights=weights, seed=seed)


class _MultipathStage(ChunnelStage):
    """Sender-side weighted chooser + receiver-side header stripping.

    Both endpoints run the stage (``endpoints::Both``): each side computes
    its own forward paths toward the peer at start time and pins its own
    sends, so request and reply traffic both spread.
    """

    PER_MESSAGE_COST = 0.05e-6

    def __init__(self, impl: ChunnelImpl, role: Role):
        super().__init__(impl, role)
        args = impl.spec.args
        self.tunnels: int = args["tunnels"]
        self.weights: list[float] = list(args["weights"])
        self.seed: int = args["seed"]
        self._cumulative: list[float] = []
        total = 0.0
        for weight in self.weights:
            total += weight
            self._cumulative.append(total)
        self._total = total
        self._rng: Optional[random.Random] = None
        #: tunnel index → pinned path (tuple of node names); None until
        #: start, or when the topology yields no paths to pin.
        self._paths: Optional[list[tuple[str, ...]]] = None
        self._peer_host: Optional[str] = None
        self.sent_by_tunnel = [0] * self.tunnels
        self.received_by_tunnel = [0] * self.tunnels
        #: Sends that could not be pinned (no paths, or an explicit
        #: destination off the negotiated peer path) and went out unpinned.
        self.pins_skipped = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        conn = self.connection
        if conn is None:
            return
        self._rng = random.Random(
            f"{self.seed}:{conn.conn_id}:{self.role.value}"
        )
        src_entity = (
            conn.client_entity
            if self.role is Role.CLIENT
            else conn.server_entity
        )
        dst_entity = (
            conn.server_entity
            if self.role is Role.CLIENT
            else conn.client_entity
        )
        if not src_entity or not dst_entity:
            return
        net = conn.runtime.network
        src = net.entity(src_entity).host.name
        dst = net.entity(dst_entity).host.name
        self._peer_host = dst
        if src == dst:
            # Same-host traffic never crosses a link; nothing to pin.
            return
        self._paths = [
            tuple(path) for path in net.k_routes(src, dst, self.tunnels)
        ]
        obs = net.obs
        prefix = f"multipath.{conn.conn_id}.{self.role.value}"
        for index in range(self.tunnels):
            obs.replace(
                f"{prefix}.t{index}.sent",
                lambda stage=self, i=index: stage.sent_by_tunnel[i],
            )
            obs.replace(
                f"{prefix}.t{index}.received",
                lambda stage=self, i=index: stage.received_by_tunnel[i],
            )
        obs.replace(
            f"{prefix}.pins_skipped", lambda stage=self: stage.pins_skipped
        )

    # -- data path ---------------------------------------------------------
    def choose_tunnel(self) -> int:
        """Draw one tunnel index from the weight distribution."""
        draw = self._rng.random() * self._total
        for index, bound in enumerate(self._cumulative):
            if draw < bound:
                return index
        return self.tunnels - 1

    def _destination_host(self, msg: Message) -> Optional[str]:
        conn = self.connection
        dst = msg.dst or (conn.peer if conn is not None else None)
        if dst is None:
            return None
        entity = conn.runtime.network.entities.get(dst.host)
        return entity.host.name if entity is not None else None

    def on_send(self, msg: Message) -> Iterable[Message]:
        self.charge(self.PER_MESSAGE_COST)
        if self._paths is None or self._rng is None:
            self.pins_skipped += 1
            return [msg]
        if self._destination_host(msg) != self._peer_host:
            # An explicit destination off the negotiated peer (e.g. a
            # balancing stage below rewrote it): routing tables apply.
            self.pins_skipped += 1
            return [msg]
        tunnel = self.choose_tunnel()
        self.sent_by_tunnel[tunnel] += 1
        msg.headers[MULTIPATH_TUNNEL_HEADER] = tunnel
        msg.headers[SRCROUTE_HEADER] = self._paths[tunnel % len(self._paths)]
        return [msg]

    def on_recv(self, msg: Message) -> Iterable[Message]:
        msg.headers.pop(SRCROUTE_HEADER, None)
        tunnel = msg.headers.pop(MULTIPATH_TUNNEL_HEADER, None)
        if isinstance(tunnel, int) and 0 <= tunnel < self.tunnels:
            self.received_by_tunnel[tunnel] += 1
        return [msg]


@catalog.add
class MultipathWeighted(ChunnelImpl):
    """Software weighted spreading (always available on any host)."""

    meta = ImplMeta(
        chunnel_type="multipath",
        name="weighted",
        priority=10,
        scope=Scope.APPLICATION,
        endpoints=Endpoints.BOTH,
        placement=Placement.HOST_SOFTWARE,
        description="seeded weighted per-packet tunnel selection",
    )

    def make_stage(self, role: Role) -> ChunnelStage:
        return _MultipathStage(self, role)
