"""The reliability Chunnel (Listing 5's ``reliable``).

Positive-ack reliable delivery over datagrams: the sender buffers each
message, retransmits on a timer, and gives up after a bounded number of
attempts; the receiver acks everything and suppresses duplicates.  This is
the classic ``endpoints::Both`` Chunnel — both sides must run the protocol,
so negotiation only chooses it when both processes registered it (§4.3's
worked example: "the negotiation process for the reliability Chunnel first
checks whether compatible implementations are available at both client and
server; the connection fails in the absence of the implementations").

Two implementations: the software fallback and a SmartNIC "TOE-lite" that
runs the same protocol with near-zero host CPU cost (standing in for the
TCP-offload-engine class of hardware the paper discusses in §2).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..core.chunnel import (
    ChunnelImpl,
    ChunnelSpec,
    ChunnelStage,
    ImplMeta,
    Message,
    Role,
    register_spec,
)
from ..core.registry import catalog
from ..core.resources import NIC_SLOTS, ResourceVector
from ..core.scope import Endpoints, Placement, Scope

__all__ = ["Reliable", "ReliableFallback", "ReliableToe"]

_KIND = "rel_kind"
_SEQ = "rel_seq"
_DATA = "data"
_ACK = "ack"


class _RetxTimer:
    """Process-free retransmit timer: one heap slot per attempt, none per ack.

    The historical timer was a generator :class:`~repro.sim.eventloop.Process`
    per in-flight message: a bootstrap event at send time, one ``Timeout``
    per attempt, and an interruption event per ack — three heap entries and
    a generator resume on the happy path of *every* reliable message.  Now
    the first check is scheduled straight from the constructor (landing on
    the bit-identical ``send_time + timeout`` instant the bootstrapped
    process produced) and an ack kills the timer with a flag write: the
    already-scheduled check fires into a dead timer and does nothing.
    """

    __slots__ = ("stage", "seq", "remaining", "dead")

    def __init__(self, stage: "_ReliableStage", seq: int):
        self.stage = stage
        self.seq = seq
        self.remaining = stage.max_retries
        self.dead = False
        if self.remaining == 0:
            # max_retries == 0: the historical loop body never ran and the
            # message was abandoned at bootstrap time (send time + 0).
            stage.env.call_in(0.0, self._abandon_now)
        else:
            stage.env.call_in(stage.timeout, self._check)

    @property
    def is_alive(self) -> bool:
        return not self.dead

    def interrupt(self, cause: object = None) -> None:
        """Stop the timer (ack / migration freeze / stack stop)."""
        self.dead = True

    def _abandon_now(self) -> None:
        stage = self.stage
        self.dead = True
        if stage._unacked.pop(self.seq, None) is not None:
            stage.abandoned += 1
        stage._timers.pop(self.seq, None)

    def _check(self) -> None:
        if self.dead:
            return
        stage = self.stage
        pending = stage._unacked.get(self.seq)
        if pending is None or stage._stopped:
            self.dead = True
            return
        stage.retransmissions += 1
        stage.send_below(pending.copy())
        self.remaining -= 1
        if self.remaining:
            stage.env.call_in(stage.timeout, self._check)
            return
        self.dead = True
        if stage._unacked.pop(self.seq, None) is not None:
            stage.abandoned += 1
        stage._timers.pop(self.seq, None)


@register_spec
class Reliable(ChunnelSpec):
    """At-least-once delivery with duplicate suppression.

    Parameters
    ----------
    timeout:
        Retransmission timer, seconds.
    max_retries:
        Retransmissions before the message is abandoned.
    """

    def __init__(self, timeout: float = 200e-6, max_retries: int = 5):
        if timeout <= 0:
            raise ValueError("retransmission timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        super().__init__(timeout=timeout, max_retries=max_retries)

    type_name = "reliable"


class _ReliableStage(ChunnelStage):
    """Sender buffering + receiver acking, with per-message CPU charge."""

    def __init__(self, impl: ChunnelImpl, role: Role, per_message_cost: float):
        super().__init__(impl, role)
        self.timeout = impl.spec.args["timeout"]
        self.max_retries = impl.spec.args["max_retries"]
        self.per_message_cost = per_message_cost
        self._seq = itertools.count(1)
        self._unacked: dict[int, Message] = {}
        self._timers: dict[int, object] = {}
        self._delivered: set[tuple[Optional[str], int]] = set()
        self.retransmissions = 0
        self.abandoned = 0
        self.duplicates_suppressed = 0
        self.replays = 0
        self._stopped = False

    # -- send side --------------------------------------------------------
    def on_send(self, msg: Message) -> Iterable[Message]:
        seq = next(self._seq)
        msg.headers[_KIND] = _DATA
        msg.headers[_SEQ] = seq
        self.charge(self.per_message_cost)
        self._unacked[seq] = msg.copy()
        self._timers[seq] = _RetxTimer(self, seq)
        return [msg]

    # -- receive side -------------------------------------------------------
    def on_recv(self, msg: Message) -> Iterable[Message]:
        kind = msg.headers.get(_KIND)
        if kind == _ACK:
            seq = msg.headers.get(_SEQ)
            self._unacked.pop(seq, None)
            timer = self._timers.pop(seq, None)
            if timer is not None and timer.is_alive:
                timer.interrupt("acked")
            self._after_ack(seq)
            return []  # acks never reach the application
        if kind == _DATA:
            seq = msg.headers.get(_SEQ)
            source = msg.src.host if msg.src else None
            self.charge(self.per_message_cost)
            ack = Message(
                payload=b"",
                size=16,
                headers={_KIND: _ACK, _SEQ: seq},
                dst=msg.src,
            )
            self.send_below(ack)
            key = (source, seq)
            if key in self._delivered:
                self.duplicates_suppressed += 1
                return []
            self._delivered.add(key)
            return [msg]
        # Not a reliability frame (pre-negotiation traffic etc.): pass up.
        return [msg]

    def _after_ack(self, seq: int) -> None:
        """Hook for subclasses reacting to acks (e.g. window opening)."""

    # -- migration support --------------------------------------------------
    # The failover engine (repro.core.failover) carries this stage across a
    # peer migration: the unacked window IS the connection's transport
    # state, so freezing it at suspicion time (instead of letting retransmit
    # budgets drain against a dead peer) and replaying it to the standby is
    # what makes delivery exactly-once with zero app loss across a crash.
    def freeze_retransmits(self) -> int:
        """Stop retransmit timers without abandoning their messages.

        Called at suspicion time: the peer is presumed dead, so further
        retransmissions are wasted and — worse — a timer that exhausts
        ``max_retries`` mid-blackout would abandon a message the standby
        could still receive.  Returns the number of frozen messages.
        """
        for timer in self._timers.values():
            if timer.is_alive:
                timer.interrupt("migration freeze")
        self._timers.clear()
        return len(self._unacked)

    def replay_unacked(self) -> int:
        """Re-send the frozen unacked window (in sequence order) and
        restart its retransmit timers.

        Called after the migration handshake commits: the stage object
        itself survived the transition (an unchanged DAG node is carried
        over by ``build_binding(reuse=...)``), so ``_unacked`` still holds
        every message the old peer never acked.  The standby's receive
        side has never seen this sender's sequence numbers, so each replay
        delivers exactly once.  Returns the number of messages replayed.
        """
        replayed = 0
        for seq in sorted(self._unacked):
            self.send_below(self._unacked[seq].copy())
            self._timers[seq] = _RetxTimer(self, seq)
            replayed += 1
        self.replays += replayed
        return replayed

    def adopt_window(self, frozen: dict) -> None:
        """Inherit a predecessor stage's frozen unacked window.

        A migration that *changes* the reliability binding cannot carry
        the stage object over, so the replacement adopts the window
        instead.  Sequence numbering must then continue past the adopted
        seqs: the receiver dedups on ``(sender, seq)``, so a fresh stage
        restarting at 1 would eventually collide with a replayed seq and
        silently swallow a brand-new message.
        """
        for seq, message in frozen.items():
            self._unacked.setdefault(seq, message.copy())
        if self._unacked:
            next_fresh = next(self._seq)
            self._seq = itertools.count(
                max(max(self._unacked) + 1, next_fresh)
            )

    def stop(self) -> None:
        self._stopped = True
        for timer in self._timers.values():
            if timer.is_alive:
                timer.interrupt("stack stopped")
        self._timers.clear()


@catalog.add
class ReliableFallback(ChunnelImpl):
    """Software ack/retransmit (always available on any host)."""

    meta = ImplMeta(
        chunnel_type="reliable",
        name="sw",
        priority=10,
        scope=Scope.APPLICATION,
        endpoints=Endpoints.BOTH,
        placement=Placement.HOST_SOFTWARE,
        description="userspace ack/retransmit",
    )

    PER_MESSAGE_COST = 0.5e-6

    def make_stage(self, role: Role) -> ChunnelStage:
        return _ReliableStage(self, role, self.PER_MESSAGE_COST)


@catalog.add
class ReliableToe(ChunnelImpl):
    """SmartNIC reliability offload ("TOE-lite", §2's TCP offload engines).

    Runs the same ack protocol but charges (almost) no host CPU: the NIC
    tracks the unacked window.  Negotiation picks it over the fallback when
    the discovery service registered it at the host and a NIC slot is free.
    """

    meta = ImplMeta(
        chunnel_type="reliable",
        name="toe",
        priority=75,
        scope=Scope.HOST,
        endpoints=Endpoints.ANY,
        placement=Placement.SMARTNIC,
        resources=ResourceVector({NIC_SLOTS: 1}),
        description="NIC-offloaded ack/retransmit",
    )

    PER_MESSAGE_COST = 0.02e-6

    def make_stage(self, role: Role) -> ChunnelStage:
        return _ReliableStage(self, role, self.PER_MESSAGE_COST)
