"""A minimal RPC (ping/echo) application on the Bertha API.

This is the measurement app of the paper's Figures 3 and 4: a client opens
a connection, sends a few requests, measures each round trip, closes, and
repeats.  The server echoes.  Both sides are ordinary Bertha endpoints —
which Chunnels run, and over which transport, is whatever negotiation
decided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.connection import Connection
from ..core.dag import ChunnelDag
from ..core.runtime import Listener, Runtime
from ..sim.datagram import Address
from ..sim.eventloop import Interrupt

__all__ = ["EchoServer", "PingResult", "ping_connection", "ping_session"]


class EchoServer:
    """Accepts connections forever; echoes every request.

    The reply payload mirrors the request (so byte-level apps measure pure
    transport cost), addressed to the request's source — which also makes
    the server correct behind routing Chunnels.
    """

    def __init__(
        self,
        runtime: Runtime,
        port: int,
        dag: Optional[ChunnelDag] = None,
        service_name: Optional[str] = None,
        name: str = "echo-server",
        idle_close: Optional[float] = None,
    ):
        self.runtime = runtime
        self.endpoint = runtime.new(name, dag)
        self.listener: Listener = self.endpoint.listen(
            port=port, service_name=service_name
        )
        self.connections_served = 0
        self.requests_served = 0
        self.idle_closed = 0
        #: A client close is silent on the wire, so a fleet-scale server
        #: must shed server-side state itself: when ``idle_close`` is set,
        #: a reaper closes any connection with no traffic for one full
        #: sweep interval.  Off by default — the reaper's periodic timeout
        #: keeps the event heap non-empty until the deadline.
        self.idle_close = idle_close
        #: conn -> (serve process, messages_received at last sweep)
        self._sessions: dict[Connection, tuple] = {}
        self._acceptor = runtime.env.process(self._accept_loop(), name=f"{name}.accept")
        self._reaper = (
            runtime.env.process(self._reap_loop(), name=f"{name}.reaper")
            if idle_close is not None
            else None
        )

    @property
    def address(self) -> Address:
        return self.listener.address

    def _accept_loop(self):
        while True:
            conn = yield self.listener.accept()
            self.connections_served += 1
            proc = self.runtime.env.process(
                self._serve(conn), name=f"{self.endpoint.name}.conn"
            )
            if self.idle_close is not None:
                self._sessions[conn] = (proc, -1)

    def _serve(self, conn: Connection):
        while not conn.closed:
            try:
                msg = yield conn.recv()
            except Interrupt:
                return
            self.requests_served += 1
            conn.send(msg.payload, size=msg.size, dst=msg.src)

    def _reap_loop(self):
        while True:
            try:
                yield self.runtime.env.timeout(self.idle_close)
            except Interrupt:
                return
            for conn in list(self._sessions):
                proc, seen = self._sessions[conn]
                if conn.closed:
                    del self._sessions[conn]
                elif conn.messages_received == seen:
                    # A full interval without traffic: the client is gone
                    # (its close never crosses the wire).
                    del self._sessions[conn]
                    self.idle_closed += 1
                    if proc.is_alive:
                        proc.interrupt("idle close")
                    conn.close()
                else:
                    self._sessions[conn] = (proc, conn.messages_received)

    def close(self) -> None:
        """Stop accepting new connections (and the idle reaper)."""
        if self._reaper is not None and self._reaper.is_alive:
            self._reaper.interrupt("server closed")
        self.listener.close()


@dataclass
class PingResult:
    """Measurements from one client session."""

    setup_time: float
    rtts: list[float] = field(default_factory=list)
    transport: str = ""
    server_entity: str = ""


def ping_connection(conn: Connection, payload: bytes, count: int):
    """Generator: ``count`` request/response RTTs on an open connection."""
    env = conn.env
    rtts: list[float] = []
    for _ in range(count):
        start = env.now
        conn.send(payload, size=len(payload))
        yield conn.recv()
        rtts.append(env.now - start)
    return rtts


def ping_session(
    runtime: Runtime,
    target,
    dag: Optional[ChunnelDag] = None,
    size: int = 64,
    count: int = 3,
    name: str = "ping-client",
):
    """Generator → :class:`PingResult`: connect, ping ``count`` times, close.

    This is one sample of the Figure 3/4 experiments: connection
    establishment (which includes the discovery + negotiation round trips)
    is timed separately from the per-request RTTs.
    """
    env = runtime.env
    endpoint = runtime.new(name, dag)
    start = env.now
    conn = yield from endpoint.connect(target)
    setup_time = env.now - start
    payload = bytes(size)
    rtts = yield from ping_connection(conn, payload, count)
    result = PingResult(
        setup_time=setup_time,
        rtts=rtts,
        transport=conn.transport,
        server_entity=conn.peer.host if conn.peer else "",
    )
    conn.close()
    return result
