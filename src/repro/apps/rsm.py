"""Replicated state machine over ordered multicast (§3.2, Listing 2).

The paper's consensus example: with the network providing ordered
multicast (Speculative Paxos / NOPaxos style), replicas can apply client
operations in network order and reply directly; the client accepts a result
once a quorum of replicas agrees on the sequence number.  Gap recovery —
what NOPaxos does when the ``mcast_gap`` marker appears — is counted per
replica and surfaced in metrics snapshots as ``rsm.<group>.gaps_total``
(a full view-change protocol is out of the paper's scope and ours).

Client retransmission rides the control plane's one retry loop
(:mod:`repro.core.rpc`): capped exponential backoff with deterministic
jitter, charged to a shared :class:`~repro.core.rpc.RpcStats`.  Because a
retransmitted operation re-enters the ordered multicast and is assigned a
*new* sequence number, replicas dedup by (client address, request id) and
replay their original (seq, result) — otherwise a retransmit would both
double-apply the op and split the quorum across two sequence numbers.

The state machine is a dictionary with compare-and-swap, enough to exercise
"replies must agree" semantics.
"""

from __future__ import annotations

import itertools
import random
import zlib
from typing import Optional

from ..chunnels.multicast import GAP_HEADER, SEQ_HEADER, OrderedMcast
from ..chunnels.serialize import Serialize
from ..core import rpc
from ..core.dag import wrap
from ..core.runtime import Runtime
from ..errors import BerthaError, ConnectionTimeoutError
from ..sim.datagram import Address
from ..sim.eventloop import Interrupt

__all__ = ["RsmReplica", "RsmClient", "QuorumError"]


class QuorumError(BerthaError):
    """The client could not assemble a quorum of matching replies."""


class RsmReplica:
    """One replica: apply multicast-ordered operations; reply directly."""

    def __init__(
        self,
        runtime: Runtime,
        port: int,
        group: str,
        members: list[str],
        apply_cost: float = 1.0e-6,
    ):
        self.runtime = runtime
        self.group = group
        self.name = runtime.entity.name
        self.apply_cost = apply_cost
        self.state: dict[str, object] = {}
        self.applied = 0
        self.gaps_seen = 0
        #: Chaos flag: while down, multicast deliveries are consumed but
        #: neither applied nor answered — the replica falls behind exactly
        #: as a crashed process would (recovery/state transfer is out of
        #: scope; a restarted replica simply rejoins from where it died).
        self.down = False
        #: (client address, request id) → (seq, result): a retransmitted op
        #: re-enters the multicast under a fresh sequence number, so replay
        #: of the original verdict is what keeps ops at-most-once *and* the
        #: quorum agreeing on one (seq, result).
        self._replies = rpc.ReplyCache(1024)
        dag = wrap(Serialize() >> OrderedMcast(group=group, members=members))
        self.endpoint = runtime.new(f"rsm-{group}", dag)
        self.listener = self.endpoint.listen(port=port)
        self._acceptor = runtime.env.process(
            self._accept_loop(), name=f"rsm:{self.name}.accept"
        )
        obs = runtime.network.obs
        obs.bind(
            f"rsm.{group}.{self.name}.gaps_total", self, "gaps_seen",
            replace=True,
        )
        roster = runtime.network.__dict__.setdefault(
            "_rsm_groups", {}
        ).setdefault(group, [])
        roster.append(self)
        obs.replace(
            f"rsm.{group}.gaps_total",
            lambda roster=roster: sum(r.gaps_seen for r in roster),
        )

    @property
    def address(self) -> Address:
        return self.listener.address

    def _accept_loop(self):
        while True:
            try:
                conn = yield self.listener.accept()
            except Interrupt:
                return
            self.runtime.env.process(
                self._serve(conn), name=f"rsm:{self.name}.conn"
            )

    def _serve(self, conn):
        env = self.runtime.env
        while not conn.closed:
            msg = yield conn.recv()
            if self.down:
                continue
            if msg.headers.get(GAP_HEADER):
                self.gaps_seen += 1
            payload = msg.payload
            request_id = (
                payload.get("request_id") if isinstance(payload, dict) else None
            )
            key = (repr(msg.src), request_id)
            cached = (
                self._replies.get(key, rpc.MISSING)
                if request_id is not None
                else rpc.MISSING
            )
            if cached is not rpc.MISSING:
                seq, result = cached
            else:
                yield env.timeout(self.apply_cost)
                seq = msg.headers.get(SEQ_HEADER)
                result = self._apply(payload)
                self.applied += 1
                if request_id is not None:
                    self._replies.put(key, (seq, result))
            conn.send(
                {
                    "replica": self.name,
                    "seq": seq,
                    "request_id": request_id,
                    "result": result,
                },
                dst=msg.src,
            )

    def _apply(self, op: dict) -> object:
        kind = op.get("op")
        if kind == "put":
            self.state[op["key"]] = op["value"]
            return "ok"
        if kind == "get":
            return self.state.get(op["key"])
        if kind == "cas":
            current = self.state.get(op["key"])
            if current == op["expect"]:
                self.state[op["key"]] = op["value"]
                return "ok"
            return f"conflict:{current!r}"
        return "error:unknown-op"

    def crash(self) -> None:
        """Stop applying and answering (see :attr:`down`)."""
        self.down = True

    def restart(self) -> None:
        """Resume from the pre-crash state (missed ops stay missed)."""
        self.down = False

    def close(self) -> None:
        self.listener.close()


class RsmClient:
    """Submit operations to the whole group; wait for a quorum.

    Retries ride :func:`repro.core.rpc.call` under ``policy`` (capped
    exponential backoff, deterministic per-client jitter); retransmit and
    round-trip counts accumulate on :attr:`stats`.
    """

    def __init__(
        self,
        runtime: Runtime,
        group: str,
        name: str = "rsm-client",
        policy: Optional[rpc.RetryPolicy] = None,
    ):
        self.runtime = runtime
        self.group = group
        dag = wrap(Serialize() >> OrderedMcast(group=group))
        self.endpoint = runtime.new(name, dag)
        self.conn = None
        self._request_ids = itertools.count(1)
        self.mismatches = 0
        self.policy = policy or rpc.RetryPolicy(
            timeout=5e-3, retries=3, backoff=2.0, jitter=0.1
        )
        self.stats = rpc.RpcStats()
        self._rng = random.Random(
            zlib.crc32(f"{runtime.entity.name}:{group}:{name}".encode())
        )

    def connect(self, replica_addresses: list[Address]):
        """Generator: negotiate with every group member (Listing 2)."""
        conn = yield from self.endpoint.connect(list(replica_addresses))
        self.conn = conn
        return conn

    def submit(
        self,
        op: dict,
        quorum: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        """Generator → result once ``quorum`` replicas agree on the order.

        ``timeout`` (when given) bounds a single attempt with no
        retransmits — the pre-retry-policy contract some callers still
        want; otherwise :attr:`policy` drives backed-off retransmissions.
        Raises :class:`QuorumError` on exhaustion or ordering disagreement
        (the trigger for a real protocol's recovery path).
        """
        if self.conn is None:
            raise QuorumError("connect() first")
        group_size = len(self.conn.peers)
        needed = quorum if quorum is not None else group_size // 2 + 1
        request_id = next(self._request_ids)
        env = self.runtime.env
        policy = (
            rpc.RetryPolicy(timeout=timeout, retries=1)
            if timeout is not None
            else self.policy
        )
        payload = {**op, "request_id": request_id}
        #: Accumulated across attempts: replicas replay their original
        #: (seq, result) on retransmits, so late first-attempt replies
        #: still count toward the quorum.
        replies: dict[str, dict] = {}

        def send(attempt: int) -> None:
            self.conn.send(payload)

        def wait(attempt: int, budget: float):
            deadline = env.now + budget
            while env.now < deadline:
                receive = self.conn.recv()
                timer = env.timeout(max(deadline - env.now, 0.0))
                yield env.any_of([receive, timer])
                if not receive.processed:
                    if not receive.triggered:
                        receive.succeed(None)  # cancel the mailbox getter
                    return None
                reply = receive.value.payload
                if (
                    not isinstance(reply, dict)
                    or reply.get("request_id") != request_id
                ):
                    continue  # stale reply from an earlier, timed-out request
                replies[reply["replica"]] = reply
                agreeing = self._largest_agreement(replies)
                if len(agreeing) >= needed:
                    # Containered: a ``get`` legitimately returns None,
                    # which rpc.call would read as an attempt timeout.
                    return {"result": agreeing[0]["result"]}
            return None

        try:
            outcome = yield from rpc.call(
                env,
                policy,
                send,
                wait,
                stats=self.stats,
                rng=self._rng,
                describe=f"rsm:{self.group}",
            )
        except ConnectionTimeoutError:
            raise QuorumError(
                f"no quorum for request {request_id} "
                f"({len(replies)}/{group_size} replies, need {needed} agreeing)"
            ) from None
        return outcome["result"]

    def _largest_agreement(self, replies: dict[str, dict]) -> list[dict]:
        """The largest subset of replies agreeing on (seq, result)."""
        groups: dict[tuple, list[dict]] = {}
        for reply in replies.values():
            key = (reply.get("seq"), repr(reply.get("result")))
            groups.setdefault(key, []).append(reply)
        if not groups:
            return []
        best = max(groups.values(), key=len)
        if len(best) < len(replies):
            self.mismatches += 1
        return best

    def close(self) -> None:
        if self.conn is not None:
            self.conn.close()
            self.conn = None
