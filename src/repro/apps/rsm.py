"""Replicated state machine over ordered multicast (§3.2, Listing 2).

The paper's consensus example: with the network providing ordered
multicast (Speculative Paxos / NOPaxos style), replicas can apply client
operations in network order and reply directly; the client accepts a result
once a quorum of replicas agrees on the sequence number.  Gap recovery —
what NOPaxos does when the ``mcast_gap`` marker appears — is stubbed to
counting (a full view-change protocol is out of the paper's scope and
ours).

The state machine is a dictionary with compare-and-swap, enough to exercise
"replies must agree" semantics.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..chunnels.multicast import GAP_HEADER, SEQ_HEADER, OrderedMcast
from ..chunnels.serialize import Serialize
from ..core.dag import wrap
from ..core.runtime import Runtime
from ..errors import BerthaError
from ..sim.datagram import Address
from ..sim.eventloop import Interrupt

__all__ = ["RsmReplica", "RsmClient", "QuorumError"]


class QuorumError(BerthaError):
    """The client could not assemble a quorum of matching replies."""


class RsmReplica:
    """One replica: apply multicast-ordered operations; reply directly."""

    def __init__(
        self,
        runtime: Runtime,
        port: int,
        group: str,
        members: list[str],
        apply_cost: float = 1.0e-6,
    ):
        self.runtime = runtime
        self.group = group
        self.name = runtime.entity.name
        self.apply_cost = apply_cost
        self.state: dict[str, object] = {}
        self.applied = 0
        self.gaps_seen = 0
        dag = wrap(Serialize() >> OrderedMcast(group=group, members=members))
        self.endpoint = runtime.new(f"rsm-{group}", dag)
        self.listener = self.endpoint.listen(port=port)
        self._acceptor = runtime.env.process(
            self._accept_loop(), name=f"rsm:{self.name}.accept"
        )

    @property
    def address(self) -> Address:
        return self.listener.address

    def _accept_loop(self):
        while True:
            try:
                conn = yield self.listener.accept()
            except Interrupt:
                return
            self.runtime.env.process(
                self._serve(conn), name=f"rsm:{self.name}.conn"
            )

    def _serve(self, conn):
        env = self.runtime.env
        while not conn.closed:
            msg = yield conn.recv()
            if msg.headers.get(GAP_HEADER):
                self.gaps_seen += 1
            yield env.timeout(self.apply_cost)
            result = self._apply(msg.payload)
            self.applied += 1
            conn.send(
                {
                    "replica": self.name,
                    "seq": msg.headers.get(SEQ_HEADER),
                    "request_id": msg.payload.get("request_id"),
                    "result": result,
                },
                dst=msg.src,
            )

    def _apply(self, op: dict) -> object:
        kind = op.get("op")
        if kind == "put":
            self.state[op["key"]] = op["value"]
            return "ok"
        if kind == "get":
            return self.state.get(op["key"])
        if kind == "cas":
            current = self.state.get(op["key"])
            if current == op["expect"]:
                self.state[op["key"]] = op["value"]
                return "ok"
            return f"conflict:{current!r}"
        return "error:unknown-op"

    def close(self) -> None:
        self.listener.close()


class RsmClient:
    """Submit operations to the whole group; wait for a quorum."""

    def __init__(self, runtime: Runtime, group: str, name: str = "rsm-client"):
        self.runtime = runtime
        self.group = group
        dag = wrap(Serialize() >> OrderedMcast(group=group))
        self.endpoint = runtime.new(name, dag)
        self.conn = None
        self._request_ids = itertools.count(1)
        self.mismatches = 0

    def connect(self, replica_addresses: list[Address]):
        """Generator: negotiate with every group member (Listing 2)."""
        conn = yield from self.endpoint.connect(list(replica_addresses))
        self.conn = conn
        return conn

    def submit(
        self,
        op: dict,
        quorum: Optional[int] = None,
        timeout: float = 5e-3,
    ):
        """Generator → result once ``quorum`` replicas agree on the order.

        Raises :class:`QuorumError` on timeout or ordering disagreement
        (the trigger for a real protocol's recovery path).
        """
        if self.conn is None:
            raise QuorumError("connect() first")
        group_size = len(self.conn.peers)
        needed = quorum if quorum is not None else group_size // 2 + 1
        request_id = next(self._request_ids)
        env = self.runtime.env
        deadline = env.now + timeout
        self.conn.send({**op, "request_id": request_id})
        replies: dict[str, dict] = {}
        while env.now < deadline:
            receive = self.conn.recv()
            timer = env.timeout(max(deadline - env.now, 0))
            yield env.any_of([receive, timer])
            if not receive.processed:
                if not receive.triggered:
                    receive.succeed(None)  # cancel the mailbox getter
                break
            reply = receive.value.payload
            if not isinstance(reply, dict) or reply.get("request_id") != request_id:
                continue  # stale reply from an earlier, timed-out request
            replies[reply["replica"]] = reply
            agreeing = self._largest_agreement(replies)
            if len(agreeing) >= needed:
                return agreeing[0]["result"]
        raise QuorumError(
            f"no quorum for request {request_id} "
            f"({len(replies)}/{group_size} replies, need {needed} agreeing)"
        )

    def _largest_agreement(self, replies: dict[str, dict]) -> list[dict]:
        """The largest subset of replies agreeing on (seq, result)."""
        groups: dict[tuple, list[dict]] = {}
        for reply in replies.values():
            key = (reply.get("seq"), repr(reply.get("result")))
            groups.setdefault(key, []).append(reply)
        if not groups:
            return []
        best = max(groups.values(), key=len)
        if len(best) < len(replies):
            self.mismatches += 1
        return best

    def close(self) -> None:
        if self.conn is not None:
            self.conn.close()
            self.conn = None
