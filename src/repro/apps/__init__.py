"""Applications built on the Bertha API: the paper's evaluation workloads."""

from .kvstore import (
    KV_SHARD_FN,
    KvClient,
    KvCodec,
    KvServer,
    ShardWorker,
    kv_request,
    kv_response,
)
from .rpc import EchoServer, PingResult, ping_connection, ping_session
from .rsm import QuorumError, RsmClient, RsmReplica

__all__ = [
    "EchoServer",
    "KV_SHARD_FN",
    "KvClient",
    "KvCodec",
    "KvServer",
    "PingResult",
    "QuorumError",
    "RsmClient",
    "RsmReplica",
    "ShardWorker",
    "kv_request",
    "kv_response",
    "ping_connection",
    "ping_session",
]
