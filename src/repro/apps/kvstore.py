"""The sharded key-value store (Listings 4 & 5, Figure 5).

The paper's evaluation server: "a key-value store which uses the hashmap
implementation from Rust's standard library and serialization from the
widely-used bincode crate atop UDP RPCs", sharded across worker threads by
a Chunnel.  Here:

* :class:`KvCodec` — a fixed-layout binary request/response encoding whose
  bytes ``[1..5)`` are the key hash, so *every* shard placement — client
  library, XDP program, or switch — computes the shard from the same four
  wire bytes (the paper's ``hash(p.payload[10..14]) % 3``).
* :class:`ShardWorker` — one shard: a plain socket + an in-memory dict +
  a configurable per-request service time.  Workers reply directly to the
  requesting client (datagram-based transport lets offloads avoid
  terminating connections — the Listing 4 caption).
* :class:`KvServer` — spawns the workers, builds the
  ``serialize |> shard`` DAG with the worker addresses, and listens.
* :class:`KvClient` — an empty-DAG Bertha client (Listing 5): the Chunnels
  used are dictated entirely by the server.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Optional

from ..chunnels.serialize import Codec, get_codec, register_codec
from ..chunnels.sharding import REPLY_TO_HEADER, HashBytes, Shard
from ..core.dag import ChunnelDag, wrap
from ..core.runtime import Runtime
from ..errors import ChunnelArgumentError
from ..sim.datagram import Address, Datagram
from ..sim.eventloop import Interrupt
from ..sim.transport import UdpSocket

__all__ = [
    "KvCodec",
    "KV_SHARD_FN",
    "ShardWorker",
    "KvServer",
    "KvClient",
    "kv_request",
    "kv_response",
]

_OP_CODES = {"get": 0, "put": 1, "delete": 2, "scan": 3, "rmw": 4}
_OP_NAMES = {code: name for name, code in _OP_CODES.items()}
_STATUS_CODES = {"ok": 0, "not_found": 1, "error": 2}
_STATUS_NAMES = {code: name for name, code in _STATUS_CODES.items()}

_REQUEST_TAG = 0x10
_RESPONSE_TAG = 0x20

#: Shard on the 4-byte key hash at a fixed wire offset (byte 1).  Keeping
#: the hash at a fixed offset is what makes the XDP and switch shard
#: implementations possible — they parse raw packet bytes.
KV_SHARD_FN = HashBytes(offset=1, length=4)


def key_hash(key: str) -> int:
    """The 32-bit key hash carried in every request."""
    return zlib.crc32(key.encode()) & 0xFFFFFFFF


def kv_request(op: str, key: str, value: bytes = b"") -> dict:
    """Build a request object (what the application sends)."""
    if op not in _OP_CODES:
        raise ChunnelArgumentError(f"unknown op {op!r}")
    return {"type": "request", "op": op, "key": key, "value": value}


def kv_response(status: str, value: bytes = b"") -> dict:
    """Build a response object (what workers send back)."""
    if status not in _STATUS_CODES:
        raise ChunnelArgumentError(f"unknown status {status!r}")
    return {"type": "response", "status": status, "value": value}


class KvCodec(Codec):
    """Fixed-layout binary encoding for KV requests/responses.

    Request:  ``tag(1) | keyhash(4) | op(1) | keylen(2) | key | value``
    Response: ``tag(1) | status(1) | vallen(4) | value``

    The key hash sits at bytes ``[1..5)`` of every request so shard
    functions can read it without parsing variable-length fields.
    """

    name = "kv"

    def encode(self, obj: Any) -> bytes:
        if not isinstance(obj, dict) or "type" not in obj:
            raise ChunnelArgumentError(f"kv codec cannot encode {obj!r}")
        if obj["type"] == "request":
            key = obj["key"]
            value = bytes(obj.get("value") or b"")
            raw_key = key.encode()
            return (
                struct.pack(
                    ">BIBH",
                    _REQUEST_TAG,
                    key_hash(key),
                    _OP_CODES[obj["op"]],
                    len(raw_key),
                )
                + raw_key
                + value
            )
        if obj["type"] == "response":
            value = bytes(obj.get("value") or b"")
            return (
                struct.pack(
                    ">BBI", _RESPONSE_TAG, _STATUS_CODES[obj["status"]], len(value)
                )
                + value
            )
        raise ChunnelArgumentError(f"kv codec cannot encode type {obj['type']!r}")

    def decode(self, data: bytes) -> Any:
        if not data:
            raise ChunnelArgumentError("kv codec: empty input")
        tag = data[0]
        if tag == _REQUEST_TAG:
            if len(data) < 8:
                raise ChunnelArgumentError(
                    f"kv codec: truncated request header ({len(data)} bytes)"
                )
            wire_hash, op_code, key_len = struct.unpack_from(">IBH", data, 1)
            if op_code not in _OP_NAMES:
                raise ChunnelArgumentError(
                    f"kv codec: unknown op code {op_code:#x}"
                )
            key_start = 8
            if len(data) < key_start + key_len:
                # A short buffer would otherwise slice to a shorter key and
                # "succeed" with the wrong key — chaos-corrupted datagrams
                # must fail decode, not become silent wrong-key operations.
                raise ChunnelArgumentError(
                    f"kv codec: truncated key (need {key_len} bytes, "
                    f"have {len(data) - key_start})"
                )
            raw_key = data[key_start : key_start + key_len]
            try:
                key = raw_key.decode()
            except UnicodeDecodeError as error:
                raise ChunnelArgumentError(
                    f"kv codec: undecodable key bytes ({error})"
                ) from None
            if key_hash(key) != wire_hash:
                raise ChunnelArgumentError(
                    f"kv codec: key hash mismatch (wire {wire_hash:#010x}, "
                    f"computed {key_hash(key):#010x})"
                )
            value = data[key_start + key_len :]
            return {
                "type": "request",
                "op": _OP_NAMES[op_code],
                "key": key,
                "value": bytes(value),
            }
        if tag == _RESPONSE_TAG:
            if len(data) < 6:
                raise ChunnelArgumentError(
                    f"kv codec: truncated response header ({len(data)} bytes)"
                )
            status_code, value_len = struct.unpack_from(">BI", data, 1)
            if status_code not in _STATUS_NAMES:
                raise ChunnelArgumentError(
                    f"kv codec: unknown status code {status_code:#x}"
                )
            if len(data) < 6 + value_len:
                raise ChunnelArgumentError(
                    f"kv codec: truncated value (need {value_len} bytes, "
                    f"have {len(data) - 6})"
                )
            value = data[6 : 6 + value_len]
            return {
                "type": "response",
                "status": _STATUS_NAMES[status_code],
                "value": bytes(value),
            }
        raise ChunnelArgumentError(f"kv codec: unknown tag {tag:#x}")


try:
    get_codec("kv")
except ChunnelArgumentError:
    register_codec(KvCodec())


class ShardWorker:
    """One shard: socket + hashmap + per-request service time.

    Requests arrive as raw datagrams (possibly redirected to us by an XDP
    or switch program, or forwarded by the userspace sharder) carrying
    kv-codec bytes.  The reply goes directly to the requesting client —
    either the datagram source or the explicit ``shard_reply_to`` header
    the userspace sharder adds when it re-sends.
    """

    def __init__(
        self,
        entity,
        port: int,
        store: Optional[dict] = None,
        service_time: float = 1.5e-6,
    ):
        self.entity = entity
        self.env = entity.env
        self.socket = UdpSocket(entity, port)
        self.store: dict[str, bytes] = store if store is not None else {}
        self.service_time = service_time
        self.codec = get_codec("kv")
        self.requests_served = 0
        self.errors = 0
        self._proc = self.env.process(self._run(), name=f"kv-worker:{port}")

    @property
    def address(self) -> Address:
        return self.socket.address

    def _run(self):
        while True:
            try:
                dgram: Datagram = yield self.socket.recv()
            except Interrupt:
                return
            yield self.env.timeout(self.service_time)
            response = self._apply(dgram)
            reply_to = dgram.headers.get(REPLY_TO_HEADER)
            dst = Address(reply_to[0], reply_to[1]) if reply_to else dgram.src
            encoded = self.codec.encode(response)
            headers = {"ser_codec": "kv"}
            if "rpc_id" in dgram.headers:
                # Echo the client's correlation id so open-loop load
                # generators can match responses to requests.
                headers["rpc_id"] = dgram.headers["rpc_id"]
            self.socket.send(encoded, dst, size=len(encoded), headers=headers)

    def _apply(self, dgram: Datagram) -> dict:
        try:
            request = self.codec.decode(bytes(dgram.payload))
        except (ChunnelArgumentError, struct.error, UnicodeDecodeError):
            self.errors += 1
            return kv_response("error")
        self.requests_served += 1
        op, key = request["op"], request["key"]
        if op == "get":
            value = self.store.get(key)
            if value is None:
                return kv_response("not_found")
            return kv_response("ok", value)
        if op == "put":
            self.store[key] = request["value"]
            return kv_response("ok")
        if op == "delete":
            existed = self.store.pop(key, None) is not None
            return kv_response("ok" if existed else "not_found")
        if op == "scan":
            # Range scan within this shard: keys are ordered, the scan
            # length rides in the request value (4 bytes, big endian).
            # (A shard sees only its own keys — cross-shard scans are the
            # client's to assemble, as in range-sharded stores.)
            length = int.from_bytes(request["value"][:4] or b"\x00", "big")
            selected = [k for k in sorted(self.store) if k >= key][:length]
            blob = b"\x00".join(k.encode() for k in selected)
            return kv_response("ok", blob)
        if op == "rmw":
            # Read-modify-write (YCSB workload F): append the new value to
            # the existing one atomically within the shard.
            current = self.store.get(key, b"")
            self.store[key] = current + request["value"]
            return kv_response("ok", self.store[key])
        self.errors += 1
        return kv_response("error")

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("worker stopped")
        self.socket.close()


class KvServer:
    """The sharded KV server of Listing 4."""

    def __init__(
        self,
        runtime: Runtime,
        port: int,
        shards: int = 3,
        worker_service_time: float = 1.5e-6,
        worker_base_port: int = 7101,
        service_name: Optional[str] = None,
        shard_server_cost: float = 8.0e-6,
        extra_dag: Optional[ChunnelDag] = None,
        auto_reconfig: bool = False,
    ):
        self.runtime = runtime
        self.workers = [
            ShardWorker(
                runtime.entity,
                worker_base_port + index,
                service_time=worker_service_time,
            )
            for index in range(shards)
        ]
        shard_spec = Shard(
            choices=[worker.address for worker in self.workers],
            shard_fn=KV_SHARD_FN,
            server_cost=shard_server_cost,
        )
        from ..chunnels.serialize import Serialize

        dag = wrap(Serialize(codec="kv") >> shard_spec)
        if extra_dag is not None:
            dag = dag >> extra_dag
        self.endpoint = runtime.new("my-kv-srv", dag)
        self.listener = self.endpoint.listen(
            port=port, service_name=service_name, auto_reconfig=auto_reconfig
        )

    @property
    def address(self) -> Address:
        return self.listener.address

    @property
    def requests_served(self) -> int:
        return sum(worker.requests_served for worker in self.workers)

    def total_keys(self) -> int:
        """Keys stored across all shards."""
        return sum(len(worker.store) for worker in self.workers)

    def close(self) -> None:
        self.listener.close()
        for worker in self.workers:
            worker.stop()


class KvClient:
    """The Listing 5 client: an empty DAG; the server dictates everything."""

    def __init__(self, runtime: Runtime, name: str = "kv-client"):
        self.runtime = runtime
        self.endpoint = runtime.new(name)  # wrap!() — no chunnels
        self.conn = None

    def connect(self, target, **kwargs):
        """Generator: establish the negotiated connection.  ``kwargs`` pass
        through to :meth:`Endpoint.connect` (timeout/retries — lossy-network
        runs need a larger retransmission budget)."""
        conn = yield from self.endpoint.connect(target, **kwargs)
        self.conn = conn
        return conn

    def get(self, key: str):
        """Generator → response dict for a GET."""
        return (yield from self.request(kv_request("get", key)))

    def put(self, key: str, value: bytes):
        """Generator → response dict for a PUT."""
        return (yield from self.request(kv_request("put", key, value)))

    def delete(self, key: str):
        """Generator → response dict for a DELETE."""
        return (yield from self.request(kv_request("delete", key)))

    def scan(self, start_key: str, length: int = 10):
        """Generator → response dict for a SCAN (keys >= start_key, one
        shard's view; YCSB workload E).  ``length`` 0 is a valid empty
        scan; lengths that don't fit the 4-byte wire field are rejected
        here rather than crashing in ``int.to_bytes``."""
        if not isinstance(length, int) or length < 0 or length > 0xFFFFFFFF:
            raise ChunnelArgumentError(
                f"scan length must be a 32-bit unsigned int, got {length!r}"
            )
        return (
            yield from self.request(
                kv_request("scan", start_key, length.to_bytes(4, "big"))
            )
        )

    def rmw(self, key: str, value: bytes):
        """Generator → response dict for a read-modify-write (YCSB F)."""
        return (yield from self.request(kv_request("rmw", key, value)))

    def request(self, request: dict):
        """Generator: send one request, wait for its response."""
        if self.conn is None:
            raise ChunnelArgumentError("connect() first")
        self.conn.send(request)
        reply = yield self.conn.recv()
        return reply.payload

    def close(self) -> None:
        if self.conn is not None:
            self.conn.close()
            self.conn = None
