"""YCSB core workloads (Cooper et al., SoCC '10).

The paper's Figure 5 drives its sharded KV store with "300000 YCSB
requests (workload A, read-heavy) with a uniform distribution of keys".
This module implements the YCSB core workload definitions so the harness
can generate exactly that — and the other core mixes for wider testing:

====  =========================================  =================
 A    50% read / 50% update                      session store
 B    95% read / 5% update                       photo tagging
 C    100% read                                  caches
 D    95% read / 5% insert (latest distribution) status updates
 E    95% scan / 5% insert                       threaded convs
 F    50% read / 50% read-modify-write           user database
====  =========================================  =================

Each generated operation is a dict with ``op`` (read/update/insert/scan/
rmw), ``key``, and — for writes — a deterministic ``value`` of
``value_size`` bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .zipf import KeyChooser, make_chooser

__all__ = ["WorkloadSpec", "YcsbWorkload", "WORKLOAD_MIXES"]

#: (read, update, insert, scan, read-modify-write) fractions per workload.
WORKLOAD_MIXES: dict[str, dict[str, float]] = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}

#: YCSB's default request distribution per workload.
_DEFAULT_DISTRIBUTIONS = {
    "A": "zipfian",
    "B": "zipfian",
    "C": "zipfian",
    "D": "latest",
    "E": "zipfian",
    "F": "zipfian",
}


@dataclass
class WorkloadSpec:
    """Parameters for one YCSB run."""

    workload: str = "A"
    record_count: int = 1000
    operation_count: int = 10_000
    value_size: int = 100
    distribution: Optional[str] = None  # None → the workload's default
    max_scan_length: int = 100
    seed: int = 42

    def __post_init__(self) -> None:
        self.workload = self.workload.upper()
        if self.workload not in WORKLOAD_MIXES:
            raise ValueError(
                f"unknown YCSB workload {self.workload!r} "
                f"(have {sorted(WORKLOAD_MIXES)})"
            )
        if self.record_count <= 0 or self.operation_count < 0:
            raise ValueError("counts must be positive")
        if self.distribution is None:
            self.distribution = _DEFAULT_DISTRIBUTIONS[self.workload]


def _key_name(index: int) -> str:
    """YCSB-style key names ("user" + hashed index keeps keys fixed-width)."""
    return f"user{index:012d}"


def _value_for(key: str, size: int) -> bytes:
    """A deterministic pseudo-random value for ``key``."""
    out = bytearray()
    counter = 0
    while len(out) < size:
        out += hashlib.blake2b(
            f"{key}:{counter}".encode(), digest_size=32
        ).digest()
        counter += 1
    return bytes(out[:size])


class YcsbWorkload:
    """Generates the load phase and the operation stream for one spec."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.mix = WORKLOAD_MIXES[spec.workload]
        self._inserted = spec.record_count
        self.chooser: KeyChooser = make_chooser(
            spec.distribution, spec.record_count, seed=spec.seed
        )
        # Operation-type choice uses its own stream so the key sequence is
        # insensitive to the mix (useful for A/B comparisons).
        import random

        self._op_rng = random.Random(spec.seed ^ 0x5EED)
        self._scan_rng = random.Random(spec.seed ^ 0x5CAB)
        self.counts: dict[str, int] = {}

    # -- load phase ------------------------------------------------------------
    def load_operations(self) -> Iterator[dict]:
        """The insert stream that populates the store before the run."""
        for index in range(self.spec.record_count):
            key = _key_name(index)
            yield {
                "op": "insert",
                "key": key,
                "value": _value_for(key, self.spec.value_size),
            }

    # -- run phase ----------------------------------------------------------------
    def operations(self) -> Iterator[dict]:
        """The timed operation stream (``operation_count`` items)."""
        for _ in range(self.spec.operation_count):
            yield self.next_operation()

    def next_operation(self) -> dict:
        """Generate one operation according to the workload mix."""
        op = self._choose_op()
        self.counts[op] = self.counts.get(op, 0) + 1
        if op == "insert":
            key = _key_name(self._inserted)
            self._inserted += 1
            self.chooser.grow(self._inserted)
            return {
                "op": "insert",
                "key": key,
                "value": _value_for(key, self.spec.value_size),
            }
        key = _key_name(self.chooser.next_index())
        if op == "read":
            return {"op": "read", "key": key}
        if op == "update":
            return {
                "op": "update",
                "key": key,
                "value": _value_for(key + "!", self.spec.value_size),
            }
        if op == "scan":
            return {
                "op": "scan",
                "key": key,
                "length": self._scan_rng.randint(1, self.spec.max_scan_length),
            }
        if op == "rmw":
            return {
                "op": "rmw",
                "key": key,
                "value": _value_for(key + "?", self.spec.value_size),
            }
        raise AssertionError(f"unhandled op {op!r}")

    def _choose_op(self) -> str:
        draw = self._op_rng.random()
        cumulative = 0.0
        for op, fraction in self.mix.items():
            cumulative += fraction
            if draw < cumulative:
                return op
        return next(iter(self.mix))  # float round-off fallback
