"""Key-choice distributions for workload generation.

Implements the request distributions YCSB defines (Cooper et al., SoCC
'10): uniform, Zipfian (the Gray et al. incremental generator, so it works
for large key spaces without materializing probabilities), scrambled
Zipfian (decorrelates popularity from key order), and latest (Zipfian over
recency, for insert-heavy workloads).

All choosers are deterministic given a seed.
"""

from __future__ import annotations

import abc
import hashlib
import math
import random

__all__ = [
    "KeyChooser",
    "UniformChooser",
    "ZipfianChooser",
    "ScrambledZipfianChooser",
    "LatestChooser",
    "make_chooser",
]


class KeyChooser(abc.ABC):
    """Picks key indices in ``[0, item_count)``."""

    def __init__(self, item_count: int, seed: int = 0):
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self.rng = random.Random(seed)

    @abc.abstractmethod
    def next_index(self) -> int:
        """The next key index."""

    def grow(self, new_count: int) -> None:
        """Extend the key space (after inserts)."""
        if new_count < self.item_count:
            raise ValueError("key spaces only grow")
        self.item_count = new_count


class UniformChooser(KeyChooser):
    """Every key equally likely."""

    def next_index(self) -> int:
        return self.rng.randrange(self.item_count)


class ZipfianChooser(KeyChooser):
    """Zipfian over ``[0, item_count)`` with the standard YCSB constant.

    Uses the Gray et al. "Quickly generating billion-record synthetic
    databases" rejection-free method: draw u ∈ [0,1), map through the
    closed-form inverse built from ζ(n, θ).
    """

    def __init__(self, item_count: int, theta: float = 0.99, seed: int = 0):
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        super().__init__(item_count, seed)
        self.theta = theta
        self._recompute_constants()

    def _zeta(self, n: int) -> float:
        return sum(1.0 / (i ** self.theta) for i in range(1, n + 1))

    def _recompute_constants(self) -> None:
        self.zetan = self._zeta(self.item_count)
        self.zeta2 = self._zeta(2)
        self.alpha = 1.0 / (1.0 - self.theta)
        self.eta = (1 - (2.0 / self.item_count) ** (1 - self.theta)) / (
            1 - self.zeta2 / self.zetan
        )

    def grow(self, new_count: int) -> None:
        old = self.item_count
        super().grow(new_count)
        if new_count != old:
            # Incremental zeta extension (avoids O(n) recompute per insert).
            self.zetan += sum(
                1.0 / (i ** self.theta) for i in range(old + 1, new_count + 1)
            )
            self.eta = (1 - (2.0 / self.item_count) ** (1 - self.theta)) / (
                1 - self.zeta2 / self.zetan
            )

    def next_index(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(
            self.item_count * (self.eta * u - self.eta + 1) ** self.alpha
        )


class ScrambledZipfianChooser(ZipfianChooser):
    """Zipfian popularity spread over the key space by hashing.

    Without scrambling, the most popular keys are 0, 1, 2, … — which would
    make them all land on the same shard.  YCSB scrambles; so do we.
    """

    def next_index(self) -> int:
        rank = super().next_index()
        digest = hashlib.blake2b(
            rank.to_bytes(8, "big"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % self.item_count


class LatestChooser(ZipfianChooser):
    """Most-recently-inserted keys are hottest (YCSB workload D)."""

    def next_index(self) -> int:
        offset = super().next_index()
        return max(self.item_count - 1 - offset, 0)


def make_chooser(name: str, item_count: int, seed: int = 0) -> KeyChooser:
    """Factory over distribution names used in workload specs."""
    name = name.lower()
    if name == "uniform":
        return UniformChooser(item_count, seed)
    if name == "zipfian":
        return ScrambledZipfianChooser(item_count, seed=seed)
    if name == "zipfian_clustered":
        return ZipfianChooser(item_count, seed=seed)
    if name == "latest":
        return LatestChooser(item_count, seed=seed)
    raise ValueError(f"unknown distribution {name!r}")


def zipf_pmf(item_count: int, theta: float = 0.99) -> list[float]:
    """The exact Zipfian probability mass function (for tests/analysis)."""
    weights = [1.0 / ((i + 1) ** theta) for i in range(item_count)]
    total = math.fsum(weights)
    return [w / total for w in weights]
