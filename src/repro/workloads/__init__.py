"""Workload generation: YCSB core workloads, key distributions, arrivals."""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    closed_loop_gaps,
)
from .ycsb import WORKLOAD_MIXES, WorkloadSpec, YcsbWorkload
from .zipf import (
    KeyChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
    make_chooser,
    zipf_pmf,
)

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "KeyChooser",
    "LatestChooser",
    "PoissonArrivals",
    "ScrambledZipfianChooser",
    "UniformChooser",
    "WORKLOAD_MIXES",
    "WorkloadSpec",
    "YcsbWorkload",
    "ZipfianChooser",
    "closed_loop_gaps",
    "make_chooser",
    "zipf_pmf",
]
