"""Arrival processes for open- and closed-loop load generation.

Figure 5 sweeps offered load; these processes generate the request
timestamps.  All are deterministic given a seed, so experiment runs are
exactly reproducible.
"""

from __future__ import annotations

import abc
import random
from typing import Iterator

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "closed_loop_gaps",
]


class ArrivalProcess(abc.ABC):
    """Generates inter-arrival gaps (seconds)."""

    def __init__(self, rate: float, seed: int = 0):
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate = rate
        self.rng = random.Random(seed)

    @abc.abstractmethod
    def next_gap(self) -> float:
        """Seconds until the next arrival."""

    def gaps(self, count: int) -> Iterator[float]:
        """``count`` inter-arrival gaps."""
        for _ in range(count):
            yield self.next_gap()

    def arrival_times(self, count: int, start: float = 0.0) -> Iterator[float]:
        """``count`` absolute arrival timestamps."""
        now = start
        for gap in self.gaps(count):
            now += gap
            yield now


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` per second (open loop)."""

    def next_gap(self) -> float:
        return self.rng.expovariate(self.rate)


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals, optionally jittered.

    ``jitter`` is the fraction of the period to perturb uniformly (0 =
    perfectly periodic — beware phase-locking with service times).
    """

    def __init__(self, rate: float, jitter: float = 0.1, seed: int = 0):
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        super().__init__(rate, seed)
        self.jitter = jitter

    def next_gap(self) -> float:
        period = 1.0 / self.rate
        if self.jitter == 0:
            return period
        lo = period * (1 - self.jitter)
        hi = period * (1 + self.jitter)
        return self.rng.uniform(lo, hi)


def closed_loop_gaps(think_time: float) -> Iterator[float]:
    """Constant think time between a response and the next request."""
    if think_time < 0:
        raise ValueError("think time must be non-negative")
    while True:
        yield think_time
