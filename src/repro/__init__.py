"""repro — a Python reproduction of Bertha (HotNets '20).

Bertha is a network API in which applications declare communication
functionality as a DAG of composable *Chunnels*; the runtime discovers,
negotiates, and binds the best available implementation of each Chunnel —
host software, kernel fast path, SmartNIC, or programmable switch — when a
connection is established.

Public surface:

* :mod:`repro.core` — the Bertha API: Chunnel specs, DAGs, endpoints,
  negotiation, policies, the DAG optimizer and the offload scheduler.
* :mod:`repro.chunnels` — the Chunnel library (reliability, serialization,
  sharding, ordered multicast, local fast path, …) with fallback and
  offloaded implementations.
* :mod:`repro.discovery` — the discovery service Chunnel implementations
  register with.
* :mod:`repro.sim` — the deterministic simulated substrate (hosts, NICs,
  switches, links) everything runs on.
* :mod:`repro.apps`, :mod:`repro.workloads`, :mod:`repro.baselines` — the
  applications, workload generators, and non-Bertha baselines used by the
  paper's experiments.
"""

from . import (
    apps,
    baselines,
    chunnels,
    core,
    discovery,
    errors,
    metrics,
    sim,
    workloads,
)
from .version import __version__

__all__ = [
    "apps",
    "baselines",
    "chunnels",
    "core",
    "discovery",
    "errors",
    "metrics",
    "sim",
    "workloads",
    "__version__",
]
