"""Unit tests for the reconfiguration trigger sources."""

from repro.chunnels import SerializeFallback, ShardXdp
from repro.reconfig import (
    DeviceFailureDetector,
    DiscoveryWatcher,
    LoadMonitor,
    PathQualityMonitor,
)
from repro.sim import FaultPlan, Network

from ..conftest import run


class TestDeviceFailureDetector:
    def test_switch_and_nic_events_fan_out(self, two_hosts):
        detector = DeviceFailureDetector(two_hosts.net)
        seen = []
        assert detector.watch("tor", lambda *a: seen.append(("w1",) + a))
        assert detector.watch("tor", lambda *a: seen.append(("w2",) + a))
        assert detector.watch("srv", lambda *a: seen.append(("nic",) + a))

        tor = two_hosts.net.switches["tor"]
        tor.fail("cable pulled")
        tor.recover()
        two_hosts.net.hosts["srv"].nic.fail()

        assert [(e[0], e[1], e[3]) for e in seen] == [
            ("w1", "tor", True),
            ("w2", "tor", True),
            ("w1", "tor", False),
            ("w2", "tor", False),
            ("nic", "srv", True),
        ]
        assert seen[0][4] == "cable pulled"
        assert detector.events == 3  # per device event, not per callback

    def test_unknown_location_is_not_watchable(self, two_hosts):
        detector = DeviceFailureDetector(two_hosts.net)
        assert not detector.watch("atlantis", lambda *a: None)

    def test_failed_switch_still_forwards(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_switch("sw")
        net.add_link("a", "sw", latency=1e-6)
        net.add_link("b", "sw", latency=1e-6)
        from repro.sim import UdpSocket

        sender = UdpSocket(net.entity("a"), 1000)
        receiver = UdpSocket(net.entity("b"), 2000)
        net.switches["sw"].fail()

        def scenario(env):
            sender.send(b"ping", receiver.address, size=4)
            dgram = yield receiver.recv()
            return bytes(dgram.payload)

        assert run(net.env, scenario(net.env)) == b"ping"
        # ...but its programmability is gone while failed.
        assert net.switches["sw"].matching_programs is not None


class TestDiscoveryWatcher:
    def test_revocation_push_reaches_callback(self, two_hosts):
        runtime = two_hosts.runtime("cl")
        record = two_hosts.discovery.register(ShardXdp.meta, location="srv")
        watcher = DiscoveryWatcher(runtime)
        events = []
        watcher.watch_record(
            record.record_id, lambda rid, kind, body: events.append((rid, kind))
        )

        def scenario(env):
            yield env.timeout(1e-3)  # let the watch RPC register
            two_hosts.discovery.revoke(record.record_id)
            yield env.timeout(1e-3)  # push datagram in flight
            return list(events)

        got = run(two_hosts.env, scenario(two_hosts.env))
        assert got == [(record.record_id, "disc.revoked")]
        assert watcher.notifications == 1
        watcher.stop()

    def test_watch_survives_service_crash_restart(self, two_hosts):
        """Regression: a crash() wipes the service's watch table, so pushes
        after the restart must be re-enabled by the watcher's refresh loop."""
        runtime = two_hosts.runtime("cl")
        record = two_hosts.discovery.register(ShardXdp.meta, location="srv")
        watcher = DiscoveryWatcher(runtime, refresh_interval=5e-3)
        events = []
        watcher.watch_record(
            record.record_id, lambda rid, kind, body: events.append(kind)
        )

        def scenario(env):
            yield env.timeout(1e-3)  # initial watch registered
            two_hosts.discovery.crash()  # drops the subscription table
            yield env.timeout(1e-3)
            two_hosts.discovery.restart()
            yield env.timeout(8e-3)  # refresh loop re-registers the watch
            two_hosts.discovery.revoke(record.record_id)
            yield env.timeout(1e-3)
            return list(events)

        got = run(two_hosts.env, scenario(two_hosts.env))
        assert got == ["disc.revoked"]
        assert watcher.rearms >= 1
        assert two_hosts.discovery._watchers.get(record.record_id)
        watcher.stop()

    def test_explicit_rearm_restores_watches(self, two_hosts):
        runtime = two_hosts.runtime("cl")
        record = two_hosts.discovery.register(ShardXdp.meta, location="srv")
        watcher = DiscoveryWatcher(runtime)
        events = []
        watcher.watch_record(
            record.record_id, lambda rid, kind, body: events.append(kind)
        )

        def scenario(env):
            yield env.timeout(1e-3)
            two_hosts.discovery.crash()
            yield env.timeout(1e-3)
            two_hosts.discovery.restart()
            watcher.rearm()
            yield env.timeout(1e-3)
            two_hosts.discovery.revoke(record.record_id)
            yield env.timeout(1e-3)
            return list(events)

        got = run(two_hosts.env, scenario(two_hosts.env))
        assert got == ["disc.revoked"]
        assert watcher.rearms == 1
        watcher.stop()

    def test_unwatched_records_do_not_notify(self, two_hosts):
        runtime = two_hosts.runtime("cl")
        watched = two_hosts.discovery.register(ShardXdp.meta, location="srv")
        other = two_hosts.discovery.register(
            SerializeFallback.meta, location="srv"
        )
        watcher = DiscoveryWatcher(runtime)
        events = []
        watcher.watch_record(
            watched.record_id, lambda rid, kind, body: events.append(kind)
        )

        def scenario(env):
            yield env.timeout(1e-3)
            two_hosts.discovery.revoke(other.record_id)
            yield env.timeout(1e-3)
            return list(events)

        assert run(two_hosts.env, scenario(two_hosts.env)) == []
        watcher.stop()


class _FakeStation:
    def __init__(self, depth=0):
        self.queue_depth = depth


class TestLoadMonitor:
    def test_threshold_alarm_with_hysteresis(self):
        net = Network()
        env = net.env
        station = _FakeStation()
        monitor = LoadMonitor(env, interval=1e-3)
        alarms = []
        monitor.watch_station(
            "st", station, threshold=4, callback=lambda *a: alarms.append(a[2])
        )

        def scenario(env):
            station.queue_depth = 5
            yield env.timeout(2e-3)  # poll fires once
            first = len(alarms)
            yield env.timeout(5e-3)  # still overloaded: no re-fire
            held = len(alarms)
            station.queue_depth = 2  # <= threshold/2: re-arms
            yield env.timeout(2e-3)
            station.queue_depth = 6
            yield env.timeout(2e-3)
            monitor.stop()
            return first, held, len(alarms)

        first, held, final = run(env, scenario(env))
        assert (first, held, final) == (1, 1, 2)
        assert alarms == [5, 6]
        assert monitor.alarms == 2
        assert monitor.samples >= 10

    def test_stop_drains_the_poll_loop(self):
        net = Network()
        monitor = LoadMonitor(net.env, interval=1e-3)
        monitor.watch_station("st", _FakeStation(), 1, lambda *a: None)

        def scenario(env):
            yield env.timeout(5e-3)
            monitor.stop()

        run(net.env, scenario(net.env))
        net.env.run()  # heap must drain — would spin forever otherwise
        assert not monitor._proc.is_alive


class TestPathQualityMonitor:
    def _world(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_switch("sw")
        net.add_link("a", "sw")
        net.add_link("sw", "b")
        plan = FaultPlan(drop_rate=0.0, seed=1)
        net.attach_faults("a", "sw", plan)
        return net, plan

    def test_lossy_window_alarms_once_then_rearms(self):
        net, plan = self._world()
        monitor = PathQualityMonitor(net, interval=1e-3)
        alarms = []
        monitor.watch_path(
            "p",
            ["a", "sw", "b"],
            threshold=0.2,
            callback=lambda name, path, rate: alarms.append(rate),
        )

        def scenario(env):
            plan.evaluated += 20
            plan.dropped += 10  # 50% loss in this window
            yield env.timeout(2e-3)
            first = len(alarms)
            yield env.timeout(3e-3)  # no new traffic: windows skipped
            held = len(alarms)
            plan.evaluated += 40  # clean window: rate 0 <= threshold/2
            yield env.timeout(2e-3)
            plan.evaluated += 20
            plan.corrupted += 10  # corruption counts as loss too
            yield env.timeout(2e-3)
            monitor.stop()
            return first, held, len(alarms)

        first, held, final = run(net.env, scenario(net.env))
        assert (first, held, final) == (1, 1, 2)
        assert alarms == [0.5, 0.5]
        assert monitor.alarms == 2

    def test_down_link_reads_as_total_loss(self):
        net, _plan = self._world()
        monitor = PathQualityMonitor(net, interval=1e-3)
        alarms = []
        monitor.watch_path(
            "p",
            ["a", "sw", "b"],
            threshold=0.5,
            callback=lambda name, path, rate: alarms.append(rate),
        )

        def scenario(env):
            yield env.timeout(2e-3)
            quiet = len(alarms)  # no traffic, link up: nothing fires
            net.link_between("a", "sw").up = False
            yield env.timeout(2e-3)
            monitor.stop()
            return quiet

        quiet = run(net.env, scenario(net.env))
        assert quiet == 0
        assert alarms == [1.0]

    def test_windows_below_min_samples_are_skipped(self):
        net, plan = self._world()
        monitor = PathQualityMonitor(net, interval=1e-3)
        alarms = []
        monitor.watch_path(
            "p",
            ["a", "sw", "b"],
            threshold=0.2,
            callback=lambda name, path, rate: alarms.append(rate),
            min_samples=8,
        )

        def scenario(env):
            plan.evaluated += 4
            plan.dropped += 4  # 100% loss but only 4 samples
            yield env.timeout(2e-3)
            monitor.stop()

        run(net.env, scenario(net.env))
        assert alarms == []

    def test_stop_drains_the_poll_loop(self):
        net, _plan = self._world()
        monitor = PathQualityMonitor(net, interval=1e-3)
        monitor.watch_path("p", ["a", "sw", "b"], 0.5, lambda *a: None)

        def scenario(env):
            yield env.timeout(5e-3)
            monitor.stop()

        run(net.env, scenario(net.env))
        net.env.run()
        assert not monitor._proc.is_alive
