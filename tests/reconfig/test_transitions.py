"""End-to-end live-transition tests: revocation, device failure, rollback.

The acceptance bar for the reconfiguration subsystem: a connection whose
offload is revoked or whose device fails mid-stream completes its workload
with zero lost or duplicated messages, degrading to the host-software
fallback — and upgrades back when the offload returns.
"""

import pytest

from repro.apps import KvClient, KvServer
from repro.chunnels import (
    SerializeFallback,
    ShardServerFallback,
    ShardSwitch,
    ShardXdp,
)
from repro.core.chunnel import ChunnelSpec
from repro.core.dag import wrap
from repro.core.registry import ImplCatalog
from repro.sim import Address

from ..conftest import run


def reconfig_world(world, offload=ShardXdp, location="srv", client_catalog=None):
    """KV server with ``auto_reconfig`` plus one offload shard record."""
    server_rt = world.runtime("srv")
    kwargs = {"catalog": client_catalog} if client_catalog is not None else {}
    client_rt = world.runtime("cl", **kwargs)
    server_rt.register_chunnel(SerializeFallback)
    server_rt.register_chunnel(ShardServerFallback)
    client_rt.register_chunnel(SerializeFallback)
    record = world.discovery.register(offload.meta, location=location)
    server = KvServer(server_rt, port=7100, auto_reconfig=True)
    return server, server_rt, client_rt, record


def shard_impl_name(conn):
    (node_id,) = conn.dag.find("shard")
    return type(conn.impls[node_id]).__name__


class TestRevocationDegrade:
    def test_revocation_degrades_without_loss(self, two_hosts):
        server, server_rt, client_rt, record = reconfig_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(Address("srv", 7100))
            assert shard_impl_name(conn) == "ShardXdp"
            responses = []
            for index in range(20):
                responses.append((yield from client.put(f"k{index}", b"v")))
            two_hosts.discovery.revoke(record.record_id)
            for index in range(20, 40):
                responses.append((yield from client.put(f"k{index}", b"v")))
            yield env.timeout(0.05)  # let the old epoch retire
            return conn, responses

        conn, responses = run(two_hosts.env, scenario(two_hosts.env))

        # Zero loss, zero duplication: every request got exactly one reply.
        assert len(responses) == 40
        assert all(r["status"] == "ok" for r in responses)
        assert server.requests_served == 40
        assert server.total_keys() == 40

        # Both sides swapped to the fallback in a new epoch.
        (server_conn,) = server.listener.connections
        for side in (conn, server_conn):
            assert side.epoch == 1
            assert side.transitions == 1
            assert shard_impl_name(side) == "ShardServerFallback"

        manager = server_rt.reconfig
        assert manager.transitions_committed == 1
        assert manager.transitions_rolled_back == 0
        assert any(r.event == "trigger" for r in manager.log)

        # The XDP program is gone and its lease was released.
        assert two_hosts.net.hosts["srv"].kernel_programs == []
        assert two_hosts.discovery.device_in_use("srv").is_zero

    def test_transition_pause_is_bounded(self, two_hosts):
        server, server_rt, client_rt, record = reconfig_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("a", b"1")
            two_hosts.discovery.revoke(record.record_id)
            yield env.timeout(0.05)
            return (yield from client.get("a"))

        got = run(two_hosts.env, scenario(two_hosts.env))
        assert (got["status"], got["value"]) == ("ok", b"1")
        manager = server_rt.reconfig
        assert len(manager.pause_times) == 1
        # One control round trip over 5us links, no retries needed.
        assert 0 < manager.last_pause < manager.ack_timeout


class TestDeviceFailure:
    def test_switch_failure_degrades_then_recovers(self, two_hosts):
        server, server_rt, client_rt, record = reconfig_world(
            two_hosts, offload=ShardSwitch, location="tor"
        )
        tor = two_hosts.net.switches["tor"]

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(Address("srv", 7100))
            assert shard_impl_name(conn) == "ShardSwitch"
            responses = []
            for index in range(10):
                responses.append((yield from client.put(f"k{index}", b"v")))
            tor.fail("maintenance")
            # The very next request is sent while the replacement is still
            # being negotiated: the failed switch no longer redirects, so
            # the server must hold and re-route it — not drop it.
            for index in range(10, 20):
                responses.append((yield from client.put(f"k{index}", b"v")))
            degraded = shard_impl_name(conn)
            tor.recover()
            yield env.timeout(0.05)  # upgrade transition + retirement
            for index in range(20, 30):
                responses.append((yield from client.put(f"k{index}", b"v")))
            return conn, degraded, responses

        conn, degraded, responses = run(two_hosts.env, scenario(two_hosts.env))

        assert len(responses) == 30
        assert all(r["status"] == "ok" for r in responses)
        assert server.requests_served == 30

        # Degraded to the fallback while the switch was down, then back.
        assert degraded == "ShardServerFallback"
        assert shard_impl_name(conn) == "ShardSwitch"
        (server_conn,) = server.listener.connections
        assert server_conn.epoch == 2
        assert server_conn.transitions == 2
        assert server_rt.reconfig.transitions_committed == 2
        # The re-installed program holds the switch's resources again.
        assert not two_hosts.discovery.device_in_use("tor").is_zero
        assert len(tor.programs) == 1

    def test_failure_while_idle_frees_the_device(self, two_hosts):
        server, server_rt, client_rt, record = reconfig_world(
            two_hosts, offload=ShardSwitch, location="tor"
        )
        tor = two_hosts.net.switches["tor"]

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(Address("srv", 7100))
            tor.fail()
            yield env.timeout(0.05)
            return conn

        conn = run(two_hosts.env, scenario(two_hosts.env))
        assert shard_impl_name(conn) == "ShardServerFallback"
        assert two_hosts.discovery.device_in_use("tor").is_zero
        assert tor.programs == []


class TestRollback:
    def test_client_refusal_rolls_back(self, two_hosts):
        # A client whose catalog lacks the fallback cannot adopt the new
        # epoch: it NACKs, and the server keeps the old stack untouched.
        catalog = ImplCatalog()
        catalog.add(SerializeFallback)
        catalog.add(ShardXdp)
        server, server_rt, client_rt, record = reconfig_world(
            two_hosts, client_catalog=catalog
        )

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(Address("srv", 7100))
            yield from client.put("a", b"1")
            (server_conn,) = server.listener.connections
            outcome = yield server_rt.reconfig.request_transition(
                server_conn,
                reason="test",
                exclude={("xdp", record.record_id)},
            )
            after = yield from client.get("a")
            return conn, server_conn, outcome, after

        conn, server_conn, outcome, after = run(
            two_hosts.env, scenario(two_hosts.env)
        )
        assert outcome == "rolled-back"
        assert (after["status"], after["value"]) == ("ok", b"1")
        manager = server_rt.reconfig
        assert manager.transitions_rolled_back == 1
        assert manager.transitions_committed == 0
        # Nothing moved: old epoch, old impls, program still installed.
        for side in (conn, server_conn):
            assert side.epoch == 0
            assert shard_impl_name(side) == "ShardXdp"
        assert len(two_hosts.net.hosts["srv"].kernel_programs) == 1

    def test_unbindable_target_dag_fails_cleanly(self, two_hosts):
        # Satellite: a transition to a DAG that cannot bind leaves the
        # connection on its old stack.
        class Unbindable(ChunnelSpec):
            type_name = "unbindable"

        server, server_rt, client_rt, record = reconfig_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(Address("srv", 7100))
            yield from client.put("a", b"1")
            (server_conn,) = server.listener.connections
            outcome = yield server_rt.reconfig.request_transition(
                server_conn, target_dag=wrap(Unbindable())
            )
            after = yield from client.get("a")
            return conn, server_conn, outcome, after

        conn, server_conn, outcome, after = run(
            two_hosts.env, scenario(two_hosts.env)
        )
        assert outcome == "failed"
        assert after["status"] == "ok"
        assert server_rt.reconfig.transitions_failed == 1
        assert server_conn.epoch == 0
        assert shard_impl_name(server_conn) == "ShardXdp"
        assert len(server_conn.dag.find("unbindable")) == 0


class TestSerialization:
    def test_concurrent_transitions_serialize(self, two_hosts):
        server, server_rt, client_rt, record = reconfig_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("a", b"1")
            (server_conn,) = server.listener.connections
            manager = server_rt.reconfig
            # Two requests in the same instant: the first degrades away
            # from XDP, the second (queued behind it) upgrades back.
            first = manager.request_transition(
                server_conn, reason="one", exclude={("xdp", record.record_id)}
            )
            second = manager.request_transition(server_conn, reason="two")
            outcome_one = yield first
            outcome_two = yield second
            after = yield from client.get("a")
            return server_conn, outcome_one, outcome_two, after

        server_conn, one, two, after = run(two_hosts.env, scenario(two_hosts.env))
        assert (one, two) == ("committed", "committed")
        assert after["status"] == "ok"
        assert server_conn.epoch == 2
        assert server_conn.transitions == 2
        assert shard_impl_name(server_conn) == "ShardXdp"
        manager = server_rt.reconfig
        assert manager.transitions_committed == 2
        assert len(manager.pause_times) == 2
        # Serialized, not interleaved: each prepare is followed by its own
        # commit before the next prepare starts.
        phases = [r.event for r in manager.log if r.event in ("prepare", "committed")]
        assert phases == ["prepare", "committed", "prepare", "committed"]

    def test_noop_transition_changes_nothing(self, two_hosts):
        server, server_rt, client_rt, record = reconfig_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("a", b"1")
            (server_conn,) = server.listener.connections
            outcome = yield server_rt.reconfig.request_transition(server_conn)
            return server_conn, outcome

        server_conn, outcome = run(two_hosts.env, scenario(two_hosts.env))
        assert outcome == "noop"
        assert server_conn.epoch == 0
        assert server_rt.reconfig.transitions_noop == 1
        # The re-decision's provisional lease was released again.
        assert two_hosts.discovery.device_in_use("srv")["xdp_share"] == 1


class TestClientRequestedTransition:
    def test_client_forwards_request_in_band(self, two_hosts):
        server, server_rt, client_rt, record = reconfig_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(Address("srv", 7100))
            yield from client.put("a", b"1")
            two_hosts.discovery.unregister(record.record_id)
            # The client asks; the server decides and pushes TRANSITION.
            outcome = yield client_rt.reconfig.request_transition(
                conn, reason="client-asks"
            )
            after = yield from client.get("a")
            return conn, outcome, after

        conn, outcome, after = run(two_hosts.env, scenario(two_hosts.env))
        assert outcome == "committed"
        assert after["status"] == "ok"
        assert conn.epoch == 1
        assert shard_impl_name(conn) == "ShardServerFallback"
        assert server_rt.reconfig.transitions_committed == 1
