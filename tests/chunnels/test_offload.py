"""Tests for the in-switch compute offloads (KV cache, RPC fan-in)."""

import pytest

from repro.apps import KvClient, KvServer, kv_request
from repro.chunnels import (
    FanIn,
    FanInHost,
    FanInSwitch,
    KvCache,
    KvCacheHostPath,
    KvCacheSwitch,
    Serialize,
    SerializeFallback,
    ShardClientFallback,
    combine_replies,
    split_combined_value,
)
from repro.apps.kvstore import ShardWorker
from repro.core import wrap
from repro.errors import ChunnelArgumentError
from repro.sim import Address

from ..conftest import run


class TestSpecValidation:
    def test_kvcache_needs_workers(self):
        with pytest.raises(ChunnelArgumentError):
            KvCache(choices=[])

    def test_kvcache_rejects_bad_capacity_and_cost(self):
        workers = [Address("srv", 7101)]
        with pytest.raises(ChunnelArgumentError):
            KvCache(choices=workers, capacity=0)
        with pytest.raises(ChunnelArgumentError):
            KvCache(choices=workers, write_cost=-1.0)

    def test_fanin_needs_members(self):
        with pytest.raises(ChunnelArgumentError):
            FanIn(members=[])


class TestCombineReplies:
    def _reply(self, status, value=b""):
        import struct

        codes = {"ok": 0, "not_found": 1, "error": 2}
        return struct.pack(">BBI", 0x20, codes[status], len(value)) + value

    def test_roundtrip(self):
        parts = [self._reply("ok", b"aa"), self._reply("ok", b"bbbb")]
        combined = combine_replies(parts)
        assert combined[0] == 0x20 and combined[1] == 0
        values = split_combined_value(combined[6:])
        assert values == [b"aa", b"bbbb"]

    def test_not_found_propagates(self):
        combined = combine_replies(
            [self._reply("ok", b"x"), self._reply("not_found")]
        )
        assert combined[1] == 1  # not_found

    def test_error_dominates(self):
        combined = combine_replies(
            [self._reply("not_found"), self._reply("error")]
        )
        assert combined[1] == 2  # error

    def test_empty_values_survive(self):
        combined = combine_replies([self._reply("ok"), self._reply("ok")])
        assert split_combined_value(combined[6:]) == [b"", b""]


def cache_world(world, capacity=1024, shards=3):
    """KvServer with a cache node; switch cache registered at the ToR."""
    server_rt = world.runtime("srv")
    client_rt = world.runtime("cl")
    for rt in (server_rt, client_rt):
        rt.register_chunnel(SerializeFallback)
    client_rt.register_chunnel(ShardClientFallback)
    server_rt.register_chunnel(KvCacheHostPath)
    workers = [Address("srv", 7101 + i) for i in range(shards)]
    world.discovery.register(KvCacheSwitch.meta, location="tor")
    server = KvServer(
        server_rt,
        port=7100,
        shards=shards,
        extra_dag=wrap(KvCache(choices=workers, capacity=capacity)),
    )
    return server, client_rt


def cache_programs(world):
    """(reader, writer) installed on the ToR."""
    switch = world.net.switches["tor"]
    reader = next(p for p in switch.programs if p.name.endswith("/read"))
    writer = next(p for p in switch.programs if p.name.endswith("/write"))
    return reader, writer


class TestSwitchKvCache:
    def test_negotiation_picks_switch_cache_and_installs(self, two_hosts):
        server, client_rt = cache_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(Address("srv", 7100))
            node = conn.dag.find("kvcache")[0]
            return type(conn.impls.get(node)).__name__

        impl = run(two_hosts.env, scenario(two_hosts.env))
        # The cache is a server-side impl: the client's view has no impl
        # for the node, but the switch carries the installed programs.
        switch = two_hosts.net.switches["tor"]
        assert len(switch.programs) == 2
        assert switch.stage_pool.available < switch.stage_pool.capacity

    def test_write_through_then_hit_at_switch(self, two_hosts):
        server, client_rt = cache_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("alpha", b"v1")
            got = yield from client.get("alpha")
            return got

        got = run(two_hosts.env, scenario(two_hosts.env))
        assert (got["status"], got["value"]) == ("ok", b"v1")
        reader, writer = cache_programs(two_hosts)
        assert reader.state.hits == 1  # served at the ToR
        assert writer.state.writes == 1
        # The GET never reached a worker: only the PUT was served there.
        assert server.requests_served == 1

    def test_no_stale_read_after_put(self, two_hosts):
        server, client_rt = cache_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("k", b"old")
            first = yield from client.get("k")
            yield from client.put("k", b"new")
            second = yield from client.get("k")
            deleted = yield from client.delete("k")
            after = yield from client.get("k")
            return first, second, deleted, after

        first, second, deleted, after = run(
            two_hosts.env, scenario(two_hosts.env)
        )
        assert first["value"] == b"old"
        assert second["value"] == b"new"
        assert deleted["status"] == "ok"
        assert after["status"] == "not_found"

    def test_capacity_evicts_fifo(self, two_hosts):
        server, client_rt = cache_world(two_hosts, capacity=2)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            for key in ("a", "b", "c"):
                yield from client.put(key, key.encode())
            got = yield from client.get("a")  # evicted: falls to the store
            return got

        got = run(two_hosts.env, scenario(two_hosts.env))
        assert (got["status"], got["value"]) == ("ok", b"a")
        reader, _writer = cache_programs(two_hosts)
        assert reader.state.evictions == 1
        assert reader.state.misses == 1
        assert len(reader.state.entries) <= 2

    def test_switch_failure_clears_cache_and_store_answers(self, two_hosts):
        server, client_rt = cache_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("k", b"v")
            reader, _writer = cache_programs(two_hosts)
            assert reader.state.entries  # cached
            two_hosts.net.switches["tor"].fail()
            during = yield from client.get("k")  # program skipped: store
            two_hosts.net.switches["tor"].recover()
            assert not reader.state.entries  # SRAM wiped
            after = yield from client.get("k")  # miss, store answers
            return during, after

        during, after = run(two_hosts.env, scenario(two_hosts.env))
        assert during["value"] == b"v"
        assert after["value"] == b"v"

    def test_scan_bypasses_the_cache(self, two_hosts):
        server, client_rt = cache_world(two_hosts, shards=1)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("s1", b"x")
            scanned = yield from client.scan("s0", 5)
            return scanned

        scanned = run(two_hosts.env, scenario(two_hosts.env))
        assert scanned["status"] == "ok"
        reader, _writer = cache_programs(two_hosts)
        assert reader.state.hits == 0 and reader.state.misses == 0


def fanin_world(world, register_switch=False, shards=3, preload=None):
    """A scatter/gather service over raw shard workers.

    The listener ranks by raw priority (not origin) so the network-provided
    switch aggregator can beat the client's host gather when registered —
    the operator-policy knob the paper's §4.3 prototype exposes.
    """
    from repro.core.policy import PriorityFirstPolicy

    server_rt = world.runtime("srv", policy=PriorityFirstPolicy())
    client_rt = world.runtime("cl")
    for rt in (server_rt, client_rt):
        rt.register_chunnel(SerializeFallback)
    client_rt.register_chunnel(FanInHost)
    if register_switch:
        world.discovery.register(FanInSwitch.meta, location="tor")
    workers = []
    addresses = []
    for index in range(shards):
        store = dict(preload[index]) if preload else {}
        worker = ShardWorker(server_rt.entity, 7101 + index, store=store)
        workers.append(worker)
        addresses.append(worker.address)
    dag = wrap(Serialize(codec="kv") >> FanIn(members=addresses))
    listener = server_rt.new("gather-srv", dag).listen(port=7100)
    return workers, addresses, client_rt, listener


PRELOAD = [{"a0": b"v0"}, {"a1": b"v1"}, {"a2": b"v2"}]


def drive_fanin_get(world, client_rt, key="a0"):
    def scenario(env):
        yield env.timeout(1e-4)
        endpoint = client_rt.new("gather-cl")
        conn = yield from endpoint.connect(Address("srv", 7100))
        node = conn.dag.find("fanin")[0]
        impl = type(conn.impls[node]).__name__
        conn.send(kv_request("get", key))
        reply = yield conn.recv()
        return impl, reply.payload

    return run(world.env, scenario(world.env))


class TestFanIn:
    def test_host_gather_combines_all_parts(self, two_hosts):
        _workers, _addrs, client_rt, _l = fanin_world(
            two_hosts, preload=PRELOAD
        )
        impl, reply = drive_fanin_get(two_hosts, client_rt, key="a1")
        assert impl == "FanInHost"
        assert reply["status"] == "not_found"  # 2 of 3 shards miss
        parts = split_combined_value(reply["value"])
        assert len(parts) == 3
        assert b"v1" in parts

    def test_switch_gather_matches_host_gather_bytes(self, two_hosts):
        _workers, _addrs, client_rt, _l = fanin_world(
            two_hosts, register_switch=True, preload=PRELOAD
        )
        impl, reply = drive_fanin_get(two_hosts, client_rt, key="a1")
        assert impl == "FanInSwitch"
        parts = split_combined_value(reply["value"])
        assert len(parts) == 3
        assert b"v1" in parts
        program = two_hosts.net.switches["tor"].programs[0]
        assert program.aggregated == 1
        assert program.absorbed == 2  # N-1 replies absorbed at the ToR

    def test_switch_and_host_gather_equivalent(self):
        """Same world, same traffic: byte-identical combined payloads."""
        from repro.discovery import DiscoveryService
        from repro.sim import Network

        payloads = []
        for register_switch in (False, True):
            net = Network()
            net.add_host("cl")
            net.add_host("srv")
            net.add_host("dsc")
            net.add_switch("tor")
            for name in ("cl", "srv", "dsc"):
                net.add_link(name, "tor", latency=5e-6)
            from ..conftest import World

            world = World(net, DiscoveryService(net.hosts["dsc"]))
            _w, _a, client_rt, _l = fanin_world(
                world, register_switch=register_switch, preload=PRELOAD
            )

            def scenario(env, client_rt=client_rt):
                yield env.timeout(1e-4)
                endpoint = client_rt.new("gather-cl")
                conn = yield from endpoint.connect(Address("srv", 7100))
                conn.send(kv_request("get", "a2"))
                reply = yield conn.recv()
                return bytes_of(reply)

            def bytes_of(reply):
                import struct

                value = reply.payload["value"]
                status = {"ok": 0, "not_found": 1, "error": 2}[
                    reply.payload["status"]
                ]
                return (
                    struct.pack(">BBI", 0x20, status, len(value)) + value
                )

            payloads.append(run(net.env, scenario(net.env)))
        assert payloads[0] == payloads[1]

    def test_switch_failure_degrades_to_host_gather(self, two_hosts):
        _workers, _addrs, client_rt, _l = fanin_world(
            two_hosts, register_switch=True, preload=PRELOAD
        )

        def scenario(env):
            yield env.timeout(1e-4)
            endpoint = client_rt.new("gather-cl")
            conn = yield from endpoint.connect(Address("srv", 7100))
            two_hosts.net.switches["tor"].fail()
            conn.send(kv_request("get", "a0"))
            reply = yield conn.recv()
            return reply.payload

        reply = run(two_hosts.env, scenario(two_hosts.env))
        # The failed switch ran no programs: raw replies reached the
        # client, whose stage gathered them itself.
        parts = split_combined_value(reply["value"])
        assert len(parts) == 3
        assert b"v0" in parts
