"""Tests for sharding, load balancing, local fast path, and anycast."""

import pytest

from repro.chunnels import (
    HashBytes,
    HashKeyField,
    LoadBalance,
    LoadBalanceClient,
    LoadBalanceProxy,
    LocalOrRemote,
    Shard,
    ShardClientFallback,
    ShardServerFallback,
    ShardSwitch,
    ShardXdp,
    nearest_instance,
)
from repro.core import Runtime, wrap
from repro.discovery import DiscoveryService
from repro.errors import ChunnelArgumentError
from repro.sim import Address, Network, UdpSocket

from ..conftest import run
from .helpers import build_pair, connect


class TestShardFunctions:
    def test_hash_bytes_is_deterministic(self):
        fn = HashBytes(offset=0, length=4)
        payload = b"ABCDEF"
        assert fn.bucket(payload, {}, 3) == fn.bucket(payload, {}, 3)

    def test_hash_bytes_uses_window(self):
        fn = HashBytes(offset=2, length=2)
        assert fn.bucket(b"xxAByy", {}, 100) == fn.bucket(b"zzABww", {}, 100)

    def test_hash_bytes_short_payload_falls_back_to_whole(self):
        fn = HashBytes(offset=10, length=4)
        assert 0 <= fn.bucket(b"ab", {}, 3) < 3

    def test_hash_bytes_rejects_objects(self):
        with pytest.raises(ChunnelArgumentError):
            HashBytes().bucket({"key": "x"}, {}, 3)

    def test_hash_key_field(self):
        fn = HashKeyField("key")
        assert fn.bucket({"key": "abc"}, {}, 5) == fn.bucket({"key": "abc"}, {}, 5)
        with pytest.raises(ChunnelArgumentError):
            fn.bucket(b"bytes", {}, 5)

    def test_buckets_cover_range(self):
        fn = HashBytes(0, 4)
        buckets = {fn.bucket(b"%04d" % i, {}, 3) for i in range(200)}
        assert buckets == {0, 1, 2}

    def test_invalid_construction(self):
        with pytest.raises(ChunnelArgumentError):
            HashBytes(offset=-1)
        with pytest.raises(ChunnelArgumentError):
            HashKeyField("")
        with pytest.raises(ChunnelArgumentError):
            Shard(choices=[])


def shard_world(register_client_push=False, register_xdp=False,
                register_switch=False):
    """Server with 3 raw-socket workers; a shard DAG routes to them."""
    net = Network()
    net.add_host("srv")
    net.add_host("cl")
    dsc = net.add_host("dsc")
    net.add_switch("tor")
    for name in ("srv", "cl", "dsc"):
        net.add_link(name, "tor", latency=5e-6)
    discovery = DiscoveryService(dsc)
    if register_xdp:
        discovery.register(ShardXdp.meta, location="srv")
    if register_switch:
        discovery.register(ShardSwitch.meta, location="tor")

    workers = []
    served_by = []

    def worker_loop(env, sock):
        while True:
            dgram = yield sock.recv()
            served_by.append(sock.port)
            reply_to = dgram.headers.get("shard_reply_to")
            dst = Address(reply_to[0], reply_to[1]) if reply_to else dgram.src
            sock.send(b"ok:%d" % sock.port, dst, size=16)

    for port in (7101, 7102, 7103):
        sock = UdpSocket(net.hosts["srv"], port)
        workers.append(sock.address)
        net.env.process(worker_loop(net.env, sock))

    server_rt = Runtime(net.hosts["srv"], discovery=discovery.address)
    client_rt = Runtime(net.hosts["cl"], discovery=discovery.address)
    server_rt.register_chunnel(ShardServerFallback)
    if register_client_push:
        client_rt.register_chunnel(ShardClientFallback)
    # Hash the digits (bytes [4..8)); bytes [0..4) are the constant "key-".
    dag = wrap(Shard(choices=workers, shard_fn=HashBytes(4, 4)))
    listener = server_rt.new("kv", dag).listen(port=7100)
    return net, client_rt, listener, served_by


def drive_shard_requests(net, client_rt, count=12):
    def scenario(env):
        yield env.timeout(1e-4)
        conn = yield from client_rt.new("c").connect(Address("srv", 7100))
        node = conn.dag.find("shard")[0]
        impl_name = type(conn.impls[node]).__name__
        replies = []
        for index in range(count):
            conn.send(b"key-%04d" % index, size=32)
            msg = yield conn.recv()
            replies.append(bytes(msg.payload))
        return impl_name, replies

    return run(net.env, scenario(net.env))


class TestShardingPlacements:
    def test_client_push_routes_directly(self):
        net, client_rt, _listener, served_by = shard_world(
            register_client_push=True
        )
        impl, replies = drive_shard_requests(net, client_rt)
        assert impl == "ShardClientFallback"
        assert len(replies) == 12
        assert len(set(served_by)) == 3  # all shards exercised

    def test_xdp_rewrites_at_server_host(self):
        net, client_rt, _listener, served_by = shard_world(register_xdp=True)
        impl, replies = drive_shard_requests(net, client_rt)
        assert impl == "ShardXdp"
        assert len(replies) == 12
        assert net.hosts["srv"].kernel_programs  # program installed
        assert net.hosts["srv"].kernel_programs[0].redirected == 12

    def test_server_fallback_forwards_in_userspace(self):
        net, client_rt, _listener, served_by = shard_world()
        impl, replies = drive_shard_requests(net, client_rt)
        assert impl == "ShardServerFallback"
        assert len(replies) == 12
        assert len(set(served_by)) == 3

    def test_switch_p4_shard_wins_and_installs(self):
        net, client_rt, _listener, served_by = shard_world(
            register_switch=True, register_xdp=True
        )
        impl, replies = drive_shard_requests(net, client_rt)
        # priority: p4 (90) > xdp (60); both network-origin.
        assert impl == "ShardSwitch"
        assert len(replies) == 12
        switch = net.switches["tor"]
        assert switch.programs
        assert switch.stage_pool.available < switch.stage_pool.capacity

    def test_same_key_lands_on_same_shard(self):
        net, client_rt, _listener, served_by = shard_world(
            register_client_push=True
        )

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7100))
            for _ in range(5):
                conn.send(b"same-key", size=8)
                yield conn.recv()
            return served_by

        served = run(net.env, scenario(net.env))
        assert len(set(served)) == 1

    def test_xdp_program_shared_across_connections(self):
        net, client_rt, _listener, _served = shard_world(register_xdp=True)

        def scenario(env):
            yield env.timeout(1e-4)
            conn1 = yield from client_rt.new("c1").connect(Address("srv", 7100))
            conn2 = yield from client_rt.new("c2").connect(Address("srv", 7100))
            programs = net.hosts["srv"].kernel_programs
            ports = set(programs[0].watched_ports)
            conn1.close()
            conn2.close()
            return len(programs), ports

        count, ports = run(net.env, scenario(net.env))
        assert count == 1  # one program, two watched ports
        assert len(ports) == 2


class TestLoadBalance:
    def make(self, strategy="round_robin", client_side=True):
        backends = [Address("srv", 7201), Address("srv", 7202)]
        impls = [LoadBalanceClient] if client_side else []
        pair = build_pair(
            wrap(LoadBalance(backends=backends, strategy=strategy)),
            client_impls=impls,
            server_impls=[LoadBalanceProxy],
        )
        served = []

        def backend_loop(env, sock):
            while True:
                dgram = yield sock.recv()
                served.append(sock.port)
                reply_to = dgram.headers.get("shard_reply_to")
                dst = (
                    Address(reply_to[0], reply_to[1]) if reply_to else dgram.src
                )
                sock.send(b"done", dst, size=4)

        for port in (7201, 7202):
            sock = UdpSocket(pair.net.hosts["srv"], port)
            pair.env.process(backend_loop(pair.env, sock))
        return pair, served

    def request_n(self, pair, n):
        def scenario(env):
            yield from connect(pair)
            node = pair.client_conn.dag.find("loadbalance")[0]
            impl = type(pair.client_conn.impls[node]).__name__
            for index in range(n):
                pair.client_conn.send(b"req%d" % index, size=8)
                yield pair.client_conn.recv()
            return impl

        return run(pair.env, scenario(pair.env))

    def test_client_side_round_robin(self):
        pair, served = self.make()
        impl = self.request_n(pair, 6)
        assert impl == "LoadBalanceClient"
        assert served.count(7201) == 3
        assert served.count(7202) == 3

    def test_proxy_side_when_client_lacks_impl(self):
        pair, served = self.make(client_side=False)
        impl = self.request_n(pair, 4)
        assert impl == "LoadBalanceProxy"
        assert len(served) == 4

    def test_validation(self):
        with pytest.raises(ChunnelArgumentError):
            LoadBalance(backends=[])
        with pytest.raises(ChunnelArgumentError):
            LoadBalance(backends=[Address("x", 1)], strategy="magic")

    def test_client_side_hash_source_pins_one_backend(self):
        from repro.chunnels.loadbalance import _ClientBalanceStage

        pair, served = self.make(strategy="hash_source")
        impl = self.request_n(pair, 6)
        assert impl == "LoadBalanceClient"
        # Source affinity: every request from this connection lands on the
        # same backend (regression: the hash used to degenerate to
        # round-robin because the source was read before the socket bound).
        assert len(set(served)) == 1
        assert len(served) == 6
        stage = next(
            s
            for s in pair.client_conn.stack.stages
            if isinstance(s, _ClientBalanceStage)
        )
        assert stage.affinity_picks == 6
        assert stage.requests_balanced == 6

    def test_proxy_side_hash_source_pins_one_backend(self):
        from repro.chunnels.loadbalance import _ProxyBalanceStage

        pair, served = self.make(strategy="hash_source", client_side=False)
        impl = self.request_n(pair, 6)
        assert impl == "LoadBalanceProxy"
        assert len(set(served)) == 1
        assert len(served) == 6
        stage = next(
            s
            for s in pair.server_conn.stack.stages
            if isinstance(s, _ProxyBalanceStage)
        )
        # Every proxied request carried a source, so no dead reply paths.
        assert stage.proxied_without_source == 0
        assert stage.requests_proxied == 6

    def test_hash_source_without_source_falls_back_to_round_robin(self):
        from repro.chunnels.loadbalance import _BalanceState

        backends = [Address("srv", 7201), Address("srv", 7202)]
        state = _BalanceState(
            LoadBalance(backends=backends, strategy="hash_source")
        )
        first, affine_first = state.pick(None)
        second, affine_second = state.pick(None)
        assert not affine_first and not affine_second
        assert {first, second} == set(backends)
        # A known source flips it back to affine picks.
        pinned, affine = state.pick(Address("cl", 9000))
        assert affine
        assert state.pick(Address("cl", 9000)) == (pinned, True)


class TestInstanceSelection:
    def test_local_or_remote_prefers_local_instance(self):
        net = Network()
        host_a = net.add_host("ha")
        net.add_host("hb")
        net.add_switch("sw")
        net.add_link("ha", "sw")
        net.add_link("hb", "sw")
        ct = host_a.add_container("ct")
        instances = [Address("hb", 1), Address("ct", 1)]
        chosen = LocalOrRemote.select_instance(instances, host_a, net)
        assert chosen.host == "ct"

    def test_local_or_remote_falls_back_to_first(self):
        net = Network()
        net.add_host("ha")
        net.add_host("hb")
        net.add_switch("sw")
        net.add_link("ha", "sw")
        net.add_link("hb", "sw")
        instances = [Address("hb", 1)]
        chosen = LocalOrRemote.select_instance(
            instances, net.hosts["ha"], net
        )
        assert chosen.host == "hb"

    def test_nearest_instance_uses_path_latency(self):
        net = Network()
        for name in ("origin", "near", "far"):
            net.add_host(name)
        net.add_switch("s1")
        net.add_switch("s2")
        net.add_link("origin", "s1", latency=1e-6)
        net.add_link("near", "s1", latency=1e-6)
        net.add_link("s1", "s2", latency=100e-6)
        net.add_link("far", "s2", latency=1e-6)
        chosen = nearest_instance(
            [Address("far", 1), Address("near", 1)], net.hosts["origin"], net
        )
        assert chosen.host == "near"

    def test_nearest_with_no_instances(self):
        net = Network()
        net.add_host("h")
        assert nearest_instance([], net.hosts["h"], net) is None
