"""Property-based tests (hypothesis) on Chunnel data-path invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunnels import HashBytes, HashKeyField, keystream_cipher
from repro.chunnels.batching import Batch, BatchFallback, _BatchStage
from repro.chunnels.ordering import Ordered, OrderedFallback, _OrderedStage
from repro.core import ChunnelDag, Message, wrap
from repro.core.chunnel import Role
from repro.sim import Address, Environment


class _FakeStack:
    """Just enough stack for driving a stage directly."""

    def __init__(self):
        self.env = Environment()
        self.connection = None
        self.below: list[Message] = []
        self.above: list[Message] = []

    def charge(self, seconds):
        pass

    def send_from(self, index, msg):
        self.below.append(msg)

    def receive_from(self, index, msg):
        self.above.append(msg)


def attach(stage):
    stack = _FakeStack()
    stage._stack = stack
    stage._index = 0
    return stack


class TestShardFunctionProperties:
    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=16))
    def test_hash_bytes_in_range(self, payload, n):
        assert 0 <= HashBytes(0, 4).bucket(payload, {}, n) < n

    @given(st.binary(min_size=1, max_size=64))
    def test_hash_bytes_deterministic(self, payload):
        fn = HashBytes(2, 8)
        assert fn.bucket(payload, {}, 7) == fn.bucket(payload, {}, 7)

    @given(st.text(min_size=1, max_size=32), st.integers(min_value=1, max_value=9))
    def test_hash_key_field_in_range(self, key, n):
        assert 0 <= HashKeyField("k").bucket({"k": key}, {}, n) < n


class TestCipherProperties:
    @given(st.binary(max_size=512), st.integers(min_value=1, max_value=2**32))
    @settings(max_examples=30)
    def test_encrypt_decrypt_roundtrip(self, data, nonce):
        key = b"\x42" * 32
        assert keystream_cipher(key, nonce, keystream_cipher(key, nonce, data)) == data

    @given(st.binary(min_size=16, max_size=256))
    @settings(max_examples=30)
    def test_ciphertext_differs_from_plaintext(self, data):
        key = b"\x42" * 32
        # With overwhelming probability for ≥16 bytes of keystream.
        assert keystream_cipher(key, 1, data) != data


class TestOrderingProperty:
    @given(st.permutations(list(range(1, 9))))
    @settings(max_examples=40)
    def test_any_arrival_order_delivers_in_sequence(self, arrival_order):
        """Feed sequence numbers in an arbitrary order; the stage must
        release exactly 1..n in ascending order (the resequencing
        invariant)."""
        stage = _OrderedStage(
            OrderedFallback(Ordered(flush_after=None)), Role.SERVER
        )
        attach(stage)
        released: list[int] = []
        src = Address("peer", 1)
        for seq in arrival_order:
            msg = Message(payload=b"", headers={"ord_seq": seq}, src=src)
            for out in stage.on_recv(msg):
                released.append(out.headers["ord_seq"])
        assert released == sorted(arrival_order)

    @given(
        st.lists(
            st.integers(min_value=1, max_value=6), min_size=1, max_size=20
        )
    )
    @settings(max_examples=40)
    def test_duplicates_never_delivered_twice(self, seqs):
        stage = _OrderedStage(
            OrderedFallback(Ordered(flush_after=None)), Role.SERVER
        )
        attach(stage)
        released: list[int] = []
        src = Address("peer", 1)
        for seq in seqs:
            msg = Message(payload=b"", headers={"ord_seq": seq}, src=src)
            released.extend(
                out.headers["ord_seq"] for out in stage.on_recv(msg)
            )
        assert len(released) == len(set(released))
        assert released == sorted(released)


class TestBatchingProperty:
    @given(
        st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=8)
    )
    @settings(max_examples=40)
    def test_batch_then_unbatch_is_identity(self, payloads):
        sender = _BatchStage(
            BatchFallback(Batch(max_messages=len(payloads))), Role.CLIENT
        )
        attach(sender)
        receiver = _BatchStage(BatchFallback(Batch()), Role.SERVER)
        attach(receiver)
        dst = Address("x", 1)
        merged = []
        for payload in payloads:
            merged.extend(
                sender.on_send(Message(payload=payload, dst=dst))
            )
        assert len(merged) == 1  # exactly one wire datagram
        out = []
        for wire_msg in merged:
            out.extend(receiver.on_recv(wire_msg))
        assert [bytes(m.payload) for m in out] == payloads


class TestDagProperties:
    chain_strategy = st.lists(
        st.sampled_from(
            ["serialize", "reliable", "ordered", "encrypt", "http2", "tcp"]
        ),
        min_size=0,
        max_size=6,
    )

    @staticmethod
    def build(types):
        from repro.chunnels import (
            Encrypt,
            Http2,
            Ordered,
            Reliable,
            Serialize,
            Tcp,
        )

        factory = {
            "serialize": Serialize,
            "reliable": Reliable,
            "ordered": Ordered,
            "encrypt": Encrypt,
            "http2": Http2,
            "tcp": Tcp,
        }
        return wrap(*[factory[t]() for t in types])

    @given(chain_strategy)
    @settings(max_examples=50)
    def test_wire_roundtrip_preserves_shape(self, types):
        dag = self.build(types)
        decoded = ChunnelDag.from_wire(dag.to_wire())
        assert decoded.canonical_shape() == dag.canonical_shape()

    @given(chain_strategy)
    @settings(max_examples=50)
    def test_chain_topological_order_matches_construction(self, types):
        dag = self.build(types)
        assert [s.type_name for s in dag.specs_in_order()] == types

    @given(chain_strategy, chain_strategy)
    @settings(max_examples=50)
    def test_compatibility_is_symmetric(self, left_types, right_types):
        left = self.build(left_types)
        right = self.build(right_types)
        assert left.compatible_with(right) == right.compatible_with(left)

    @given(chain_strategy)
    @settings(max_examples=30)
    def test_optimizer_output_is_always_a_valid_dag(self, types):
        from repro.core import DagOptimizer

        dag = self.build(types)
        result = DagOptimizer().optimize(
            dag, offloadable={"encrypt", "tcp", "tls"}
        )
        result.dag.validate()
        # Optimization never grows the pipeline.
        assert len(result.dag) <= len(dag)
