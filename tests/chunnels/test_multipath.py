"""Tests for the weighted multipath chunnel (ROADMAP item 3)."""

import pytest

from repro.chunnels import (
    MultipathWeighted,
    Reliable,
    ReliableFallback,
    WeightedMultipath,
)
from repro.chunnels.multipath import _MultipathStage
from repro.chunnels.reliability import _ReliableStage
from repro.core import wrap
from repro.errors import ChunnelArgumentError

from ..conftest import run
from .helpers import build_pair, connect, request_reply

IMPLS = [ReliableFallback, MultipathWeighted]


def mp_dag(**kwargs):
    return wrap(Reliable() >> WeightedMultipath(**kwargs))


def mp_stage(conn) -> _MultipathStage:
    for stage in conn.stack.stages:
        if isinstance(stage, _MultipathStage):
            return stage
    raise AssertionError("no multipath stage on the connection")


def reliable_stage(conn) -> _ReliableStage:
    for stage in conn.stack.stages:
        if isinstance(stage, _ReliableStage):
            return stage
    raise AssertionError("no reliable stage on the connection")


class TestSpecValidation:
    def test_rejects_zero_tunnels(self):
        with pytest.raises(ChunnelArgumentError):
            WeightedMultipath(tunnels=0)

    def test_rejects_weight_count_mismatch(self):
        with pytest.raises(ChunnelArgumentError):
            WeightedMultipath(tunnels=2, weights=[1.0])

    def test_rejects_negative_weight(self):
        with pytest.raises(ChunnelArgumentError):
            WeightedMultipath(tunnels=2, weights=[1.0, -0.5])

    def test_rejects_zero_total_weight(self):
        with pytest.raises(ChunnelArgumentError):
            WeightedMultipath(tunnels=2, weights=[0.0, 0.0])

    def test_defaults_to_equal_weights(self):
        assert WeightedMultipath(tunnels=3).args["weights"] == [1.0, 1.0, 1.0]

    def test_weight_change_keeps_compat_key(self):
        # Weights are args, so a reweight is negotiable mid-connection.
        a = WeightedMultipath(tunnels=2, weights=[1.0, 1.0])
        b = WeightedMultipath(tunnels=2, weights=[0.1, 0.9])
        assert a.compat_key() == b.compat_key()


class TestChooserDeterminism:
    def _connected(self, seed):
        pair = build_pair(
            mp_dag(tunnels=2, seed=seed),
            client_impls=IMPLS,
            server_impls=IMPLS,
        )
        run(pair.env, connect(pair))
        return pair

    def test_same_seed_same_tunnel_sequence(self):
        first = self._connected(seed=11)
        second = self._connected(seed=11)
        draws_a = [mp_stage(first.client_conn).choose_tunnel() for _ in range(64)]
        draws_b = [mp_stage(second.client_conn).choose_tunnel() for _ in range(64)]
        assert draws_a == draws_b
        assert set(draws_a) == {0, 1}

    def test_different_seed_diverges(self):
        first = self._connected(seed=11)
        second = self._connected(seed=12)
        draws_a = [mp_stage(first.client_conn).choose_tunnel() for _ in range(64)]
        draws_b = [mp_stage(second.client_conn).choose_tunnel() for _ in range(64)]
        assert draws_a != draws_b

    def test_roles_draw_independent_streams(self):
        pair = self._connected(seed=11)
        client = [mp_stage(pair.client_conn).choose_tunnel() for _ in range(64)]
        server = [mp_stage(pair.server_conn).choose_tunnel() for _ in range(64)]
        assert client != server

    def test_zero_weight_tunnel_never_chosen(self):
        pair = build_pair(
            mp_dag(tunnels=2, weights=[1.0, 0.0], seed=5),
            client_impls=IMPLS,
            server_impls=IMPLS,
        )
        run(pair.env, connect(pair))
        stage = mp_stage(pair.client_conn)
        assert {stage.choose_tunnel() for _ in range(128)} == {0}


class TestDelivery:
    def _traffic(self, pair, n):
        def driver(env):
            yield from connect(pair)
            for i in range(n):
                yield from request_reply(pair, b"ping-%03d" % i, size=64)

        run(pair.env, driver(pair.env))

    def test_requests_and_replies_spread_and_count(self):
        pair = build_pair(
            mp_dag(tunnels=2, seed=3),
            client_impls=IMPLS,
            server_impls=IMPLS,
        )
        self._traffic(pair, 20)
        client = mp_stage(pair.client_conn)
        server = mp_stage(pair.server_conn)
        # 20 data packets + 20 reliability acks per direction: the ack path
        # runs below Reliable, so acks spread over tunnels too.
        assert sum(client.sent_by_tunnel) == 40
        assert server.received_by_tunnel == client.sent_by_tunnel
        assert sum(server.sent_by_tunnel) == 40
        assert client.received_by_tunnel == server.sent_by_tunnel

    def test_same_seed_runs_are_identical(self):
        counts = []
        for _ in range(2):
            pair = build_pair(
                mp_dag(tunnels=2, weights=[0.3, 0.7], seed=9),
                client_impls=IMPLS,
                server_impls=IMPLS,
            )
            self._traffic(pair, 30)
            counts.append(mp_stage(pair.client_conn).sent_by_tunnel)
        assert counts[0] == counts[1]


class TestWeightRebalance:
    def test_arg_only_transition_shifts_weights_without_loss(self):
        pair = build_pair(
            mp_dag(tunnels=2, weights=[0.5, 0.5], seed=7),
            client_impls=IMPLS,
            server_impls=IMPLS,
        )

        state = {}

        def driver(env):
            yield from connect(pair)
            for i in range(10):
                yield from request_reply(pair, b"pre-%03d" % i, size=64)
            state["reliable_before"] = reliable_stage(pair.client_conn)
            target = pair.server_conn.dag.copy()
            for node_id, spec in target.nodes.items():
                if spec.type_name == "multipath":
                    target.nodes[node_id] = WeightedMultipath(
                        tunnels=2, weights=[1.0, 0.0], seed=7
                    )
            done = pair.server_rt.reconfig.request_transition(
                pair.server_conn, reason="test-reweight", target_dag=target
            )
            yield done
            for i in range(20):
                yield from request_reply(pair, b"post-%03d" % i, size=64)

        run(pair.env, driver(pair.env))

        assert pair.server_rt.reconfig.transitions_committed == 1
        assert pair.server_rt.reconfig.transitions_rolled_back == 0
        for conn in (pair.client_conn, pair.server_conn):
            assert mp_stage(conn).weights == [1.0, 0.0]
        # Arg-only merge: the reliability stage object survives the epoch.
        assert reliable_stage(pair.client_conn) is state["reliable_before"]
        # Post-transition counters start fresh and all traffic (20 data
        # packets + 20 acks) takes the only positive-weight tunnel.
        assert mp_stage(pair.client_conn).sent_by_tunnel == [40, 0]
