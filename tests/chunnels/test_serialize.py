"""Tests for the serialization Chunnel and its codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chunnels import (
    BincodeCodec,
    JsonCodec,
    Serialize,
    SerializeFallback,
    get_codec,
    register_codec,
)
from repro.core import wrap
from repro.errors import ChunnelArgumentError

from ..conftest import run
from .helpers import build_pair, connect, request_reply


# A strategy for everything bincode supports.
json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestBincodeCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            2**100,  # big int path
            -(2**100),
            1.5,
            b"",
            b"\x00\xff" * 10,
            "",
            "héllo wörld",
            [],
            [1, [2, [3]]],
            {},
            {"key": "value", "nested": {"a": [1, 2]}},
        ],
    )
    def test_roundtrip_cases(self, value):
        codec = BincodeCodec()
        assert codec.decode(codec.encode(value)) == value

    @given(json_like)
    def test_roundtrip_property(self, value):
        codec = BincodeCodec()
        assert codec.decode(codec.encode(value)) == value

    @given(json_like)
    def test_encoding_is_deterministic(self, value):
        codec = BincodeCodec()
        assert codec.encode(value) == codec.encode(value)

    def test_tuple_encodes_as_list(self):
        codec = BincodeCodec()
        assert codec.decode(codec.encode((1, 2))) == [1, 2]

    def test_unsupported_type_rejected(self):
        with pytest.raises(ChunnelArgumentError):
            BincodeCodec().encode(object())

    def test_truncated_input_rejected(self):
        codec = BincodeCodec()
        data = codec.encode([1, 2, 3])
        with pytest.raises(ChunnelArgumentError):
            codec.decode(data[:-3])

    def test_trailing_bytes_rejected(self):
        codec = BincodeCodec()
        with pytest.raises(ChunnelArgumentError):
            codec.decode(codec.encode(1) + b"junk")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ChunnelArgumentError):
            BincodeCodec().decode(b"Z")

    def test_more_compact_than_json_for_binary(self):
        codec = BincodeCodec()
        value = {"blob": bytes(500)}
        assert len(codec.encode(value)) < len(
            JsonCodec().encode({"blob": "00" * 500})
        )


class TestCodecRegistry:
    def test_builtin_codecs_registered(self):
        assert get_codec("bincode").name == "bincode"
        assert get_codec("json").name == "json"

    def test_unknown_codec_rejected(self):
        with pytest.raises(ChunnelArgumentError):
            get_codec("protobuf-9000")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ChunnelArgumentError):
            register_codec(BincodeCodec())

    def test_spec_validates_codec_eagerly(self):
        with pytest.raises(ChunnelArgumentError):
            Serialize(codec="nope")


class TestSerializeChunnel:
    def run_roundtrip(self, payload, codec="bincode"):
        pair = build_pair(
            wrap(Serialize(codec=codec)),
            client_impls=[SerializeFallback],
            server_impls=[SerializeFallback],
        )

        def scenario(env):
            yield from connect(pair)
            request, reply = yield from request_reply(pair, payload)
            return request.payload, reply.payload

        return run(pair.env, scenario(pair.env))

    def test_objects_roundtrip_end_to_end(self):
        payload = {"op": "get", "key": "k1", "n": 7}
        server_saw, client_got = self.run_roundtrip(payload)
        assert server_saw == payload
        assert client_got == payload

    def test_json_codec_negotiable(self):
        server_saw, _ = self.run_roundtrip([1, "two", None], codec="json")
        assert server_saw == [1, "two", None]

    def test_wire_size_reflects_encoding(self):
        pair = build_pair(
            wrap(Serialize()),
            client_impls=[SerializeFallback],
            server_impls=[SerializeFallback],
        )

        def scenario(env):
            yield from connect(pair)
            payload = {"blob": bytes(1000)}
            request, _reply = yield from request_reply(pair, payload)
            return request.size

        size = run(pair.env, scenario(pair.env))
        expected = len(BincodeCodec().encode({"blob": bytes(1000)}))
        assert size == expected

    def test_serialization_cost_scales_with_size(self):
        def rtt_for(blob_size):
            pair = build_pair(
                wrap(Serialize()),
                client_impls=[SerializeFallback],
                server_impls=[SerializeFallback],
            )

            def scenario(env):
                yield from connect(pair)
                start = env.now
                yield from request_reply(pair, {"blob": bytes(blob_size)})
                return env.now - start

            return run(pair.env, scenario(pair.env))

        assert rtt_for(100_000) > rtt_for(100) * 2

    def test_stage_counts_bytes(self):
        pair = build_pair(
            wrap(Serialize()),
            client_impls=[SerializeFallback],
            server_impls=[SerializeFallback],
        )

        def scenario(env):
            yield from connect(pair)
            yield from request_reply(pair, {"x": 1})
            stage = pair.client_conn.stack.stages[0]
            return stage.bytes_encoded, stage.bytes_decoded

        encoded, decoded = run(pair.env, scenario(pair.env))
        assert encoded > 0
        assert decoded == encoded  # echo comes back the same size
