"""Tests for the rate-limit Chunnel (token-bucket pacing)."""

import pytest

from repro.chunnels import RateLimit, RateLimitFallback
from repro.core import wrap
from repro.errors import ChunnelArgumentError

from ..conftest import run
from .helpers import build_pair, connect


def make_pair(bytes_per_second, burst_bytes):
    return build_pair(
        wrap(RateLimit(bytes_per_second=bytes_per_second, burst_bytes=burst_bytes)),
        client_impls=[RateLimitFallback],
        server_impls=[RateLimitFallback],
    )


class TestRateLimit:
    def test_spec_validation(self):
        with pytest.raises(ChunnelArgumentError):
            RateLimit(bytes_per_second=0)
        with pytest.raises(ChunnelArgumentError):
            RateLimit(bytes_per_second=100, burst_bytes=0)

    def test_burst_passes_without_delay(self):
        pair = make_pair(bytes_per_second=1e6, burst_bytes=10_000)

        def scenario(env):
            yield from connect(pair)
            start = env.now
            for _ in range(5):  # 5 × 1000 B fits the 10 kB bucket
                pair.client_conn.send(b"x" * 1000, size=1000)
            arrivals = []
            for _ in range(5):
                yield pair.server_conn.recv()
                arrivals.append(env.now)
            stage = pair.client_conn.stack.stages[0]
            return arrivals[-1] - start, stage.messages_delayed

        elapsed, delayed = run(pair.env, scenario(pair.env))
        assert delayed == 0
        assert elapsed < 1e-3  # no pacing delay, just transport latency

    def test_sustained_rate_is_enforced(self):
        pair = make_pair(bytes_per_second=1e6, burst_bytes=1000)

        def scenario(env):
            yield from connect(pair)
            start = env.now
            count = 10
            for _ in range(count):  # 10 kB at 1 MB/s ⇒ ≥ ~9 ms of pacing
                pair.client_conn.send(b"x" * 1000, size=1000)
            for _ in range(count):
                yield pair.server_conn.recv()
            return env.now - start

        elapsed = run(pair.env, scenario(pair.env))
        # First message rides the bucket; 9 more need 1000 B of tokens each.
        assert elapsed >= 9 * 1000 / 1e6

    def test_delivery_order_preserved_under_pacing(self):
        pair = make_pair(bytes_per_second=1e6, burst_bytes=500)

        def scenario(env):
            yield from connect(pair)
            for index in range(6):
                pair.client_conn.send(b"%d" % index, size=400)
            got = []
            for _ in range(6):
                msg = yield pair.server_conn.recv()
                got.append(bytes(msg.payload))
            return got

        assert run(pair.env, scenario(pair.env)) == [
            b"0", b"1", b"2", b"3", b"4", b"5",
        ]

    def test_oversized_message_still_sent(self):
        pair = make_pair(bytes_per_second=1e6, burst_bytes=100)

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"x" * 5000, size=5000)  # 50× the bucket
            msg = yield pair.server_conn.recv()
            return len(msg.payload)

        assert run(pair.env, scenario(pair.env)) == 5000

    def test_idle_refills_bucket(self):
        pair = make_pair(bytes_per_second=1e6, burst_bytes=2000)

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"x" * 2000, size=2000)  # drain bucket
            yield pair.server_conn.recv()
            yield env.timeout(2000 / 1e6 + 1e-4)  # refill fully
            start = env.now
            pair.client_conn.send(b"x" * 2000, size=2000)
            yield pair.server_conn.recv()
            stage = pair.client_conn.stack.stages[0]
            return env.now - start, stage.messages_delayed

        elapsed, delayed = run(pair.env, scenario(pair.env))
        assert delayed == 0  # second burst found a full bucket
        assert elapsed < 1e-3

    def test_receive_path_is_unaffected(self):
        pair = make_pair(bytes_per_second=100, burst_bytes=64)  # brutal limit

        def scenario(env):
            yield from connect(pair)
            # Server→client direction must not be paced by the client stage.
            pair.server_conn.send(
                b"fast" * 100, size=400, dst=None or pair.client_conn.local_address
            )
            start = env.now
            yield pair.client_conn.recv()
            return env.now - start

        assert run(pair.env, scenario(pair.env)) < 1e-3
