"""Tests for encrypt, compress, http2 framing, tcp, tls, and batching."""

import pytest

from repro.chunnels import (
    Batch,
    BatchFallback,
    Compress,
    CompressFallback,
    Encrypt,
    EncryptFallback,
    Http2,
    Http2Fallback,
    Serialize,
    SerializeFallback,
    Tcp,
    TcpFallback,
    Tls,
    TlsFallback,
    keystream_cipher,
)
from repro.core import wrap
from repro.errors import ChunnelArgumentError
from repro.sim import LossProgram

from ..conftest import run
from .helpers import build_pair, connect, request_reply


def echo_once(dag, impls, payload, size=None):
    """Build a pair, send one request, echo it; returns (request, reply)."""
    pair = build_pair(dag, client_impls=impls, server_impls=impls)

    def scenario(env):
        yield from connect(pair)
        request, reply = yield from request_reply(pair, payload, size=size)
        return pair, request, reply

    return run(pair.env, scenario(pair.env))


class TestKeystreamCipher:
    def test_involution(self):
        key, nonce, data = b"k" * 32, 7, b"secret payload" * 10
        once = keystream_cipher(key, nonce, data)
        assert once != data
        assert keystream_cipher(key, nonce, once) == data

    def test_nonce_changes_ciphertext(self):
        key, data = b"k" * 32, b"same plaintext"
        assert keystream_cipher(key, 1, data) != keystream_cipher(key, 2, data)

    def test_key_changes_ciphertext(self):
        data = b"same plaintext"
        assert keystream_cipher(b"a" * 32, 1, data) != keystream_cipher(
            b"b" * 32, 1, data
        )


class TestEncryptChunnel:
    def test_plaintext_restored_end_to_end(self):
        _pair, request, reply = echo_once(
            wrap(Encrypt()), [EncryptFallback], b"attack at dawn"
        )
        assert request.payload == b"attack at dawn"
        assert reply.payload == b"attack at dawn"

    def test_ciphertext_on_the_wire(self):
        pair = build_pair(
            wrap(Encrypt()),
            client_impls=[EncryptFallback],
            server_impls=[EncryptFallback],
        )
        captured = []
        original_transmit = pair.net.transmit

        def spy(dgram, after=0.0):
            captured.append(dgram)
            original_transmit(dgram, after)

        pair.net.transmit = spy

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"plaintext!", size=10)
            msg = yield pair.server_conn.recv()
            return msg.payload

        assert run(pair.env, scenario(pair.env)) == b"plaintext!"
        data_frames = [d for d in captured if d.headers.get("enc")]
        assert data_frames
        assert all(d.payload != b"plaintext!" for d in data_frames)

    def test_wire_size_includes_overhead(self):
        _pair, request, _reply = echo_once(
            wrap(Encrypt()), [EncryptFallback], b"x" * 100
        )
        # Received size is restored after decryption.
        assert request.size == 100

    def test_needs_bytes(self):
        pair = build_pair(
            wrap(Encrypt()),
            client_impls=[EncryptFallback],
            server_impls=[EncryptFallback],
        )

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send({"not": "bytes"})
            yield env.timeout(0)

        with pytest.raises(ChunnelArgumentError):
            run(pair.env, scenario(pair.env))

    def test_serialize_above_encrypt_composes(self):
        _pair, request, _reply = echo_once(
            wrap(Serialize() >> Encrypt()),
            [SerializeFallback, EncryptFallback],
            {"nested": [1, 2, 3]},
        )
        assert request.payload == {"nested": [1, 2, 3]}


class TestCompressChunnel:
    def test_compressible_payload_shrinks_on_wire(self):
        pair = build_pair(
            wrap(Compress()),
            client_impls=[CompressFallback],
            server_impls=[CompressFallback],
        )

        def scenario(env):
            yield from connect(pair)
            payload = b"A" * 10_000
            pair.client_conn.send(payload, size=len(payload))
            msg = yield pair.server_conn.recv()
            stage = pair.client_conn.stack.stages[0]
            return msg.payload, stage.bytes_in, stage.bytes_out

        payload, bytes_in, bytes_out = run(pair.env, scenario(pair.env))
        assert payload == b"A" * 10_000
        assert bytes_out < bytes_in / 10

    def test_incompressible_payload_sent_raw(self):
        import os

        random_blob = bytes(os.urandom(0) or b"")  # placeholder, replaced below
        import hashlib

        random_blob = b"".join(
            hashlib.sha256(bytes([i])).digest() for i in range(32)
        )
        pair = build_pair(
            wrap(Compress()),
            client_impls=[CompressFallback],
            server_impls=[CompressFallback],
        )

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(random_blob, size=len(random_blob))
            msg = yield pair.server_conn.recv()
            stage = pair.client_conn.stack.stages[0]
            return msg.payload, stage.incompressible

        payload, incompressible = run(pair.env, scenario(pair.env))
        assert payload == random_blob
        assert incompressible == 1

    def test_level_validation(self):
        with pytest.raises(ChunnelArgumentError):
            Compress(level=0)


class TestHttp2Framing:
    def test_frame_roundtrip(self):
        _pair, request, _reply = echo_once(
            wrap(Http2()), [Http2Fallback], b"body bytes"
        )
        assert request.payload == b"body bytes"

    def test_frame_overhead_on_wire(self):
        pair = build_pair(
            wrap(Http2()),
            client_impls=[Http2Fallback],
            server_impls=[Http2Fallback],
        )
        sizes = []
        original_transmit = pair.net.transmit

        def spy(dgram, after=0.0):
            sizes.append(dgram.size)
            original_transmit(dgram, after)

        pair.net.transmit = spy

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"x" * 50, size=50)
            msg = yield pair.server_conn.recv()
            return msg.size

        received_size = run(pair.env, scenario(pair.env))
        assert received_size == 50
        data_sizes = [s for s in sizes if s >= 50]
        assert 59 in data_sizes  # 50 + 9-byte frame header

    def test_frame_counters(self):
        pair, _request, _reply = echo_once(
            wrap(Http2()), [Http2Fallback], b"counted"
        )
        client_stage = pair.client_conn.stack.stages[0]
        assert client_stage.frames_sent == 1
        assert client_stage.frames_received == 1


class TestTcpChunnel:
    def test_lossy_path_delivers_in_order(self):
        pair = build_pair(
            wrap(Tcp(timeout=100e-6)),
            client_impls=[TcpFallback],
            server_impls=[TcpFallback],
        )
        pair.net.switches["tor"].install(
            LossProgram(
                "loss",
                predicate=lambda d: d.headers.get("rel_kind") == "data",
                drop_rate=0.25,
                seed=11,
            )
        )

        def scenario(env):
            yield from connect(pair)
            for index in range(15):
                pair.client_conn.send(b"%02d" % index, size=2)
            got = []
            for _ in range(15):
                msg = yield pair.server_conn.recv()
                got.append(bytes(msg.payload))
            return got

        got = run(pair.env, scenario(pair.env))
        assert got == [b"%02d" % i for i in range(15)]


class TestTlsChunnel:
    def test_confidential_reliable_in_order(self):
        pair = build_pair(
            wrap(Tls(timeout=100e-6)),
            client_impls=[TlsFallback],
            server_impls=[TlsFallback],
        )
        pair.net.switches["tor"].install(
            LossProgram(
                "loss",
                predicate=lambda d: d.headers.get("rel_kind") == "data",
                drop_first=1,
            )
        )
        captured = []
        original_transmit = pair.net.transmit

        def spy(dgram, after=0.0):
            captured.append(dgram)
            original_transmit(dgram, after)

        pair.net.transmit = spy

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"secret-1", size=8)
            pair.client_conn.send(b"secret-2", size=8)
            got = []
            for _ in range(2):
                msg = yield pair.server_conn.recv()
                got.append(bytes(msg.payload))
            return got

        got = run(pair.env, scenario(pair.env))
        assert got == [b"secret-1", b"secret-2"]
        wire_payloads = [
            bytes(d.payload) for d in captured if d.headers.get("tls")
        ]
        assert wire_payloads
        assert b"secret-1" not in wire_payloads


class TestBatchChunnel:
    def make(self, max_messages=3, max_delay=1e-3):
        return build_pair(
            wrap(Batch(max_messages=max_messages, max_delay=max_delay)),
            client_impls=[BatchFallback],
            server_impls=[BatchFallback],
        )

    def test_full_batch_flushes_immediately(self):
        pair = self.make(max_messages=3)

        def scenario(env):
            yield from connect(pair)
            for index in range(3):
                pair.client_conn.send(b"m%d" % index, size=2)
            got = []
            for _ in range(3):
                msg = yield pair.server_conn.recv()
                got.append(bytes(msg.payload))
            stage = pair.client_conn.stack.stages[0]
            return got, stage.batches_sent

        got, batches = run(pair.env, scenario(pair.env))
        assert got == [b"m0", b"m1", b"m2"]
        assert batches == 1

    def test_timer_flushes_partial_batch(self):
        pair = self.make(max_messages=100, max_delay=2e-4)

        def scenario(env):
            yield from connect(pair)
            start = env.now
            pair.client_conn.send(b"solo", size=4)
            msg = yield pair.server_conn.recv()
            return bytes(msg.payload), env.now - start

        payload, elapsed = run(pair.env, scenario(pair.env))
        assert payload == b"solo"
        assert elapsed >= 2e-4

    def test_one_wire_datagram_per_batch(self):
        pair = self.make(max_messages=4)
        wire_count = [0]
        original_transmit = pair.net.transmit

        def spy(dgram, after=0.0):
            if dgram.headers.get("batch"):
                wire_count[0] += 1
            original_transmit(dgram, after)

        pair.net.transmit = spy

        def scenario(env):
            yield from connect(pair)
            for index in range(4):
                pair.client_conn.send(b"%d" % index, size=1)
            for _ in range(4):
                yield pair.server_conn.recv()
            return wire_count[0]

        assert run(pair.env, scenario(pair.env)) == 1

    def test_batches_keyed_by_destination(self):
        """Messages to different destinations must not share a batch."""
        from repro.core import Message
        from repro.core.chunnel import Role
        from repro.chunnels.batching import _BatchStage

        from repro.sim import Environment

        class FakeStack:
            def __init__(self):
                self.env = Environment()
                self.sent = []
                self.connection = None

            def charge(self, seconds):
                pass

        stage = _BatchStage(BatchFallback(Batch(max_messages=2)), Role.CLIENT)
        stack = FakeStack()
        stage._stack = stack
        stage._index = 0
        from repro.sim import Address

        a, b = Address("x", 1), Address("y", 1)
        assert list(stage.on_send(Message(payload=b"1", dst=a))) == []
        assert list(stage.on_send(Message(payload=b"2", dst=b))) == []
        flushed = list(stage.on_send(Message(payload=b"3", dst=a)))
        assert len(flushed) == 1
        assert flushed[0].dst == a

    def test_spec_validation(self):
        with pytest.raises(ChunnelArgumentError):
            Batch(max_messages=0)
        with pytest.raises(ChunnelArgumentError):
            Batch(max_delay=0)


class TestTcpWindow:
    """Flow control: the §2-bundled third TCP function."""

    def make(self, window):
        return build_pair(
            wrap(Tcp(timeout=300e-6, window=window)),
            client_impls=[TcpFallback],
            server_impls=[TcpFallback],
        )

    def test_window_bounds_in_flight_messages(self):
        pair = self.make(window=2)
        in_flight_high_water = [0]
        original_transmit = pair.net.transmit

        def spy(dgram, after=0.0):
            stage = pair.client_conn.stack.stages[0]
            in_flight_high_water[0] = max(
                in_flight_high_water[0], len(stage._unacked)
            )
            original_transmit(dgram, after)

        def scenario(env):
            yield from connect(pair)
            pair.net.transmit = spy
            for index in range(10):
                pair.client_conn.send(b"%02d" % index, size=2)
            got = []
            for _ in range(10):
                msg = yield pair.server_conn.recv()
                got.append(bytes(msg.payload))
            stage = pair.client_conn.stack.stages[0]
            return got, stage.window_stalls

        got, stalls = run(pair.env, scenario(pair.env))
        assert got == [b"%02d" % i for i in range(10)]
        assert stalls == 8  # everything beyond the first window queued
        assert in_flight_high_water[0] <= 2

    def test_acks_reopen_the_window(self):
        pair = self.make(window=1)

        def scenario(env):
            yield from connect(pair)
            for index in range(5):
                pair.client_conn.send(b"%d" % index, size=1)
            got = []
            for _ in range(5):
                msg = yield pair.server_conn.recv()
                got.append(bytes(msg.payload))
            stage = pair.client_conn.stack.stages[0]
            return got, len(stage._send_queue)

        got, leftover = run(pair.env, scenario(pair.env))
        assert got == [b"0", b"1", b"2", b"3", b"4"]
        assert leftover == 0  # queue fully drained by acks

    def test_window_preserves_order_under_loss(self):
        pair = self.make(window=3)
        pair.net.switches["tor"].install(
            LossProgram(
                "loss",
                predicate=lambda d: d.headers.get("rel_kind") == "data",
                drop_rate=0.2,
                seed=5,
            )
        )

        def scenario(env):
            yield from connect(pair)
            for index in range(12):
                pair.client_conn.send(b"%02d" % index, size=2)
            got = []
            for _ in range(12):
                msg = yield pair.server_conn.recv()
                got.append(bytes(msg.payload))
            return got

        got = run(pair.env, scenario(pair.env))
        assert got == [b"%02d" % i for i in range(12)]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Tcp(window=0)
