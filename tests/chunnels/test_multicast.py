"""Tests for ordered multicast: sequencers, global order, gap handling."""

import pytest

from repro.chunnels import (
    GAP_HEADER,
    McastSequencerFallback,
    McastSwitchSequencer,
    OrderedMcast,
    SEQ_HEADER,
    Serialize,
    SerializeFallback,
    sequencer_service_name,
)
from repro.core import Runtime, wrap
from repro.discovery import DiscoveryService
from repro.sim import Address, LossProgram, Network

from ..conftest import run


def mcast_world(replicas=3, use_switch=False, clients=1):
    """Replica hosts + client hosts behind one ToR."""
    net = Network()
    members = []
    for index in range(replicas):
        net.add_host(f"r{index}")
        members.append(f"r{index}")
    for index in range(clients):
        net.add_host(f"c{index}")
    dsc = net.add_host("dsc")
    net.add_switch("tor")
    for name in members + [f"c{i}" for i in range(clients)] + ["dsc"]:
        net.add_link(name, "tor", latency=5e-6)
    discovery = DiscoveryService(dsc)
    if use_switch:
        discovery.register(McastSwitchSequencer.meta, location="tor")

    replica_runtimes = []
    for name in members:
        runtime = Runtime(net.hosts[name], discovery=discovery.address)
        runtime.register_chunnel(SerializeFallback)
        runtime.register_chunnel(McastSequencerFallback)
        replica_runtimes.append(runtime)
    client_runtimes = []
    for index in range(clients):
        runtime = Runtime(net.hosts[f"c{index}"], discovery=discovery.address)
        runtime.register_chunnel(SerializeFallback)
        if not use_switch:
            # With thin clients (no fallback registered), the endpoints-BOTH
            # host sequencer is infeasible and the switch sequencer wins.
            runtime.register_chunnel(McastSequencerFallback)
        client_runtimes.append(runtime)
    return net, members, replica_runtimes, client_runtimes


def start_replicas(net, members, replica_runtimes, group="g", port=7300):
    """Each replica listens and records delivered (payload, seq) pairs."""
    delivered = {name: [] for name in members}
    listeners = []
    for name, runtime in zip(members, replica_runtimes):
        dag = wrap(Serialize() >> OrderedMcast(group=group, members=members))
        listener = runtime.new(f"rsm-{name}", dag).listen(port=port)
        listeners.append(listener)

        def serve(env, listener=listener, name=name):
            while True:
                conn = yield listener.accept()

                def handle(env, conn=conn, name=name):
                    while True:
                        msg = yield conn.recv()
                        delivered[name].append(
                            (
                                msg.payload,
                                msg.headers.get(SEQ_HEADER),
                                bool(msg.headers.get(GAP_HEADER)),
                            )
                        )

                env.process(handle(env))

        net.env.process(serve(net.env))
    return delivered, listeners


class TestHostSequencer:
    def test_all_replicas_receive_every_message(self):
        net, members, replica_rts, client_rts = mcast_world()
        delivered, _ = start_replicas(net, members, replica_rts)

        def client(env):
            yield env.timeout(1e-3)
            ep = client_rts[0].new("c", wrap(Serialize() >> OrderedMcast(group="g")))
            conn = yield from ep.connect([Address(m, 7300) for m in members])
            for index in range(5):
                conn.send({"op": index})
            yield env.timeout(5e-3)

        run(net.env, client(net.env))
        for name in members:
            payloads = [p["op"] for p, _seq, _gap in delivered[name]]
            assert payloads == [0, 1, 2, 3, 4]

    def test_sequence_numbers_are_global_and_contiguous(self):
        net, members, replica_rts, client_rts = mcast_world()
        delivered, _ = start_replicas(net, members, replica_rts)

        def client(env):
            yield env.timeout(1e-3)
            ep = client_rts[0].new("c", wrap(Serialize() >> OrderedMcast(group="g")))
            conn = yield from ep.connect([Address(m, 7300) for m in members])
            for index in range(4):
                conn.send({"op": index})
            yield env.timeout(5e-3)

        run(net.env, client(net.env))
        for name in members:
            seqs = [seq for _p, seq, _gap in delivered[name]]
            assert seqs == [1, 2, 3, 4]

    def test_sequencer_registered_on_lowest_member(self):
        net, members, replica_rts, client_rts = mcast_world()
        delivered, _ = start_replicas(net, members, replica_rts)

        def client(env):
            yield env.timeout(1e-3)
            ep = client_rts[0].new("c", wrap(Serialize() >> OrderedMcast(group="g")))
            conn = yield from ep.connect([Address(m, 7300) for m in members])
            conn.send({"op": 0})
            yield env.timeout(2e-3)
            records = net.names.resolve(sequencer_service_name("g"))
            return [r.address.host for r in records]

        hosts = run(net.env, client(net.env))
        assert hosts == ["r0"]  # min(members)

    def test_two_clients_interleave_in_one_order(self):
        net, members, replica_rts, client_rts = mcast_world(clients=2)
        delivered, _ = start_replicas(net, members, replica_rts)

        def client(env, index, runtime):
            yield env.timeout(1e-3)
            ep = runtime.new(
                f"c{index}", wrap(Serialize() >> OrderedMcast(group="g"))
            )
            conn = yield from ep.connect([Address(m, 7300) for m in members])
            for op in range(3):
                conn.send({"client": index, "op": op})
                yield env.timeout(50e-6)

        procs = [
            net.env.process(client(net.env, i, rt))
            for i, rt in enumerate(client_rts)
        ]
        net.env.run(until=0.1)
        orders = {
            name: [(p["client"], p["op"]) for p, _s, _g in delivered[name]]
            for name in members
        }
        reference = orders[members[0]]
        assert len(reference) == 6
        for name in members[1:]:
            assert orders[name] == reference  # identical global order

    def test_members_argument_required_for_election(self, two_hosts):
        from repro.errors import NegotiationError

        server_rt = two_hosts.runtime("srv")
        server_rt.register_chunnel(SerializeFallback)
        server_rt.register_chunnel(McastSequencerFallback)
        client_rt = two_hosts.runtime("cl")
        client_rt.register_chunnel(SerializeFallback)
        client_rt.register_chunnel(McastSequencerFallback)
        dag = wrap(Serialize() >> OrderedMcast(group="bad"))  # no members
        listener = server_rt.new("r", dag).listen(port=7300)

        def client(env):
            yield env.timeout(1e-4)
            ep = client_rt.new("c", wrap(Serialize() >> OrderedMcast(group="bad")))
            yield from ep.connect([Address("srv", 7300)])

        with pytest.raises(NegotiationError):
            run(two_hosts.env, client(two_hosts.env))


class TestSwitchSequencer:
    def test_switch_program_orders_and_clones(self):
        net, members, replica_rts, client_rts = mcast_world(use_switch=True)
        delivered, _ = start_replicas(net, members, replica_rts)

        def client(env):
            yield env.timeout(1e-3)
            ep = client_rts[0].new("c", wrap(Serialize() >> OrderedMcast(group="g")))
            conn = yield from ep.connect([Address(m, 7300) for m in members])
            node = conn.dag.find("ordered_mcast")[0]
            impl = type(conn.impls[node]).__name__
            for index in range(4):
                conn.send({"op": index})
            yield env.timeout(5e-3)
            return impl

        impl = run(net.env, client(net.env))
        assert impl == "McastSwitchSequencer"
        program = net.switches["tor"].programs[0]
        assert program.messages_sequenced == 4
        for name in members:
            assert [p["op"] for p, _s, _g in delivered[name]] == [0, 1, 2, 3]

    def test_switch_resources_consumed_once(self):
        net, members, replica_rts, client_rts = mcast_world(use_switch=True)
        delivered, _ = start_replicas(net, members, replica_rts)

        def client(env):
            yield env.timeout(1e-3)
            ep = client_rts[0].new("c", wrap(Serialize() >> OrderedMcast(group="g")))
            conn = yield from ep.connect([Address(m, 7300) for m in members])
            conn.send({"op": 0})
            yield env.timeout(2e-3)

        run(net.env, client(net.env))
        switch = net.switches["tor"]
        assert len(switch.programs) == 1
        assert switch.stage_pool.capacity - switch.stage_pool.available == 1

    def test_lost_multicast_surfaces_as_gap(self):
        net, members, replica_rts, client_rts = mcast_world(use_switch=True)
        delivered, _ = start_replicas(net, members, replica_rts)
        # Drop the first sequenced copy as it arrives at r1 (cloned copies
        # leave the switch outward, so the drop happens at the host edge).
        net.hosts["r1"].install_kernel_program(
            LossProgram(
                "loss",
                predicate=lambda d: d.headers.get(SEQ_HEADER) == 1,
                drop_first=1,
            )
        )

        def client(env):
            yield env.timeout(1e-3)
            ep = client_rts[0].new("c", wrap(Serialize() >> OrderedMcast(group="g")))
            conn = yield from ep.connect([Address(m, 7300) for m in members])
            conn.send({"op": 0})
            conn.send({"op": 1})
            yield env.timeout(10e-3)  # beyond the gap flush timeout

        run(net.env, client(net.env))
        # r0/r2 got both in order; r1 missed seq 1 and flagged a gap on 2.
        assert [s for _p, s, _g in delivered["r0"]] == [1, 2]
        r1 = delivered["r1"]
        assert len(r1) == 1
        assert r1[0][1] == 2
        assert r1[0][2] is True  # GAP flag set
