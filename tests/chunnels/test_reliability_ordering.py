"""Tests for reliable delivery and in-order delivery under loss/reorder."""

import pytest

from repro.chunnels import Ordered, OrderedFallback, Reliable, ReliableFallback
from repro.core import wrap
from repro.sim import LossProgram

from ..conftest import run
from .helpers import build_pair, connect


def data_loss(predicate=None, drop_first=0, drop_rate=0.0, seed=0):
    """A loss program scoped to reliability data frames (not acks)."""
    default = predicate or (
        lambda d: d.headers.get("rel_kind") == "data"
    )
    return LossProgram(
        "loss", predicate=default, drop_first=drop_first, drop_rate=drop_rate,
        seed=seed,
    )


class TestReliableDelivery:
    def make(self, timeout=150e-6, max_retries=5):
        return build_pair(
            wrap(Reliable(timeout=timeout, max_retries=max_retries)),
            client_impls=[ReliableFallback],
            server_impls=[ReliableFallback],
        )

    def test_lossless_delivery(self):
        pair = self.make()

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"payload", size=7)
            msg = yield pair.server_conn.recv()
            return msg.payload

        assert run(pair.env, scenario(pair.env)) == b"payload"

    def test_loss_is_recovered_by_retransmission(self):
        pair = self.make()
        pair.net.switches["tor"].install(data_loss(drop_first=1))

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"precious", size=8)
            msg = yield pair.server_conn.recv()
            stage = pair.client_conn.stack.stages[0]
            return msg.payload, stage.retransmissions

        payload, retransmissions = run(pair.env, scenario(pair.env))
        assert payload == b"precious"
        assert retransmissions >= 1

    def test_random_loss_still_delivers_everything(self):
        pair = self.make()
        pair.net.switches["tor"].install(data_loss(drop_rate=0.3, seed=3))

        def scenario(env):
            yield from connect(pair)
            for index in range(20):
                pair.client_conn.send(b"m%02d" % index, size=16)
            seen = set()
            for _ in range(20):
                msg = yield pair.server_conn.recv()
                seen.add(bytes(msg.payload))
            return seen

        seen = run(pair.env, scenario(pair.env))
        assert len(seen) == 20

    def test_duplicates_are_suppressed(self):
        """Dropping the *ack* forces a retransmission the receiver must
        de-duplicate."""
        pair = self.make()
        pair.net.switches["tor"].install(
            LossProgram(
                "ack-loss",
                predicate=lambda d: d.headers.get("rel_kind") == "ack",
                drop_first=1,
            )
        )

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"once", size=4)
            msg = yield pair.server_conn.recv()
            # Wait out the retransmission; no second delivery may appear.
            yield env.timeout(1e-3)
            ok, extra = pair.server_conn.try_recv()
            stage = pair.server_conn.stack.stages[0]
            return msg.payload, ok, stage.duplicates_suppressed

        payload, extra_delivery, suppressed = run(pair.env, scenario(pair.env))
        assert payload == b"once"
        assert not extra_delivery
        assert suppressed >= 1

    def test_gives_up_after_max_retries(self):
        pair = self.make(timeout=50e-6, max_retries=2)
        pair.net.switches["tor"].install(data_loss(drop_first=100))

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"doomed", size=6)
            yield env.timeout(5e-3)
            stage = pair.client_conn.stack.stages[0]
            return stage.abandoned, stage.retransmissions

        abandoned, retransmissions = run(pair.env, scenario(pair.env))
        assert abandoned == 1
        assert retransmissions == 2

    def test_ack_does_not_reach_application(self):
        pair = self.make()

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"x", size=1)
            yield pair.server_conn.recv()
            yield env.timeout(1e-3)
            ok, _ = pair.client_conn.try_recv()
            return ok

        assert run(pair.env, scenario(pair.env)) is False

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            Reliable(timeout=0)
        with pytest.raises(ValueError):
            Reliable(max_retries=-1)


class _Delayer(LossProgram):
    """Not a dropper: reorders by bouncing the first datagram around."""


class TestOrderedDelivery:
    def make(self, flush_after=2e-3):
        return build_pair(
            wrap(Ordered(flush_after=flush_after)),
            client_impls=[OrderedFallback],
            server_impls=[OrderedFallback],
        )

    def test_in_order_stream_passes_through(self):
        pair = self.make()

        def scenario(env):
            yield from connect(pair)
            for index in range(5):
                pair.client_conn.send(b"%d" % index, size=1)
            got = []
            for _ in range(5):
                msg = yield pair.server_conn.recv()
                got.append(bytes(msg.payload))
            return got

        assert run(pair.env, scenario(pair.env)) == [b"0", b"1", b"2", b"3", b"4"]

    def test_reordered_arrivals_are_resequenced(self):
        """Drop message 1 at the switch once; with a reliability layer it
        would be retransmitted, but here we emulate late arrival by sending
        it again manually — the receiver must still deliver in order."""
        pair = self.make()
        dropped = LossProgram(
            "drop-seq-1",
            predicate=lambda d: d.headers.get("ord_seq") == 1,
            drop_first=1,
        )
        pair.net.switches["tor"].install(dropped)

        def scenario(env):
            yield from connect(pair)
            stage = pair.client_conn.stack.stages[0]
            pair.client_conn.send(b"first", size=5)  # dropped en route
            pair.client_conn.send(b"second", size=6)  # buffered at receiver
            yield env.timeout(5e-4)
            # "Late" copy of seq 1 (e.g. a retransmission), injected below
            # the ordering stage so it keeps its original sequence number.
            from repro.core import Message

            pair.client_conn.stack.send_from(
                1, Message(payload=b"first", size=5, headers={"ord_seq": 1})
            )
            got = []
            for _ in range(2):
                msg = yield pair.server_conn.recv()
                got.append(bytes(msg.payload))
            server_stage = pair.server_conn.stack.stages[0]
            return got, server_stage.out_of_order

        got, out_of_order = run(pair.env, scenario(pair.env))
        assert got == [b"first", b"second"]
        assert out_of_order == 1

    def test_gap_flush_releases_buffer(self):
        pair = self.make(flush_after=3e-4)
        pair.net.switches["tor"].install(
            LossProgram(
                "drop-seq-1",
                predicate=lambda d: d.headers.get("ord_seq") == 1,
                drop_first=1,
            )
        )

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"lost", size=4)
            pair.client_conn.send(b"held", size=4)
            msg = yield pair.server_conn.recv()
            server_stage = pair.server_conn.stack.stages[0]
            return bytes(msg.payload), server_stage.forced_flushes, env.now

        payload, flushes, when = run(pair.env, scenario(pair.env))
        assert payload == b"held"
        assert flushes == 1
        assert when >= 3e-4  # only after the flush timer

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            Ordered(flush_after=0)

    def test_flush_after_none_holds_forever(self):
        pair = self.make(flush_after=None)
        pair.net.switches["tor"].install(
            LossProgram(
                "drop-seq-1",
                predicate=lambda d: d.headers.get("ord_seq") == 1,
                drop_first=1,
            )
        )

        def scenario(env):
            yield from connect(pair)
            pair.client_conn.send(b"lost", size=4)
            pair.client_conn.send(b"held", size=4)
            yield env.timeout(5e-3)
            ok, _ = pair.server_conn.try_recv()
            return ok

        assert run(pair.env, scenario(pair.env)) is False
