"""Helpers for chunnel integration tests: build worlds, connect pairs."""

from __future__ import annotations

from repro.core import Runtime, wrap
from repro.discovery import DiscoveryService
from repro.sim import Address, Network


class Pair:
    """A connected client/server pair plus the world around it."""

    def __init__(self, net, discovery, client_rt, server_rt, listener):
        self.net = net
        self.env = net.env
        self.discovery = discovery
        self.client_rt = client_rt
        self.server_rt = server_rt
        self.listener = listener
        self.client_conn = None
        self.server_conn = None


def build_pair(
    dag,
    client_impls=(),
    server_impls=(),
    client_dag=None,
    discovery_registrations=(),
    same_host=False,
    smartnic=False,
    port=7000,
):
    """Create a world and start a listener; returns an unconnected Pair.

    ``discovery_registrations`` is a list of ``(meta, location)`` pairs for
    network-provided implementations.
    """
    net = Network()
    if same_host:
        host = net.add_host("box")
        host.add_container("cl")
        host.add_container("srv")
        discovery = DiscoveryService(host)
    else:
        if smartnic:
            from repro.sim import SmartNic

            net.add_host("cl")
            net.add_host(
                "srv", nic=SmartNic(net.env, name="srv.nic", offload_slots=4)
            )
        else:
            net.add_host("cl")
            net.add_host("srv")
        dsc = net.add_host("dsc")
        net.add_switch("tor")
        for name in ("cl", "srv", "dsc"):
            net.add_link(name, "tor", latency=5e-6)
        discovery = DiscoveryService(dsc)
    for meta, location in discovery_registrations:
        discovery.register(meta, location)
    server_rt = Runtime(net.entity("srv"), discovery=discovery.address)
    client_rt = Runtime(net.entity("cl"), discovery=discovery.address)
    for impl in server_impls:
        server_rt.register_chunnel(impl)
    for impl in client_impls:
        client_rt.register_chunnel(impl)
    listener = server_rt.new("pair-server", dag).listen(port=port)
    pair = Pair(net, discovery, client_rt, server_rt, listener)
    pair._client_dag = client_dag
    pair._port = port
    return pair


def connect(pair: Pair):
    """Generator: establish the pair's connection (drive inside a process)."""
    yield pair.env.timeout(1e-4)
    accept = pair.listener.accept()
    endpoint = pair.client_rt.new("pair-client", pair._client_dag)
    conn = yield from endpoint.connect(Address("srv", pair._port))
    pair.client_conn = conn
    pair.server_conn = yield accept
    return pair


def request_reply(pair: Pair, payload, size=None, headers=None):
    """Generator: one app-level request/reply over the pair."""
    pair.client_conn.send(payload, size=size, headers=headers)
    request = yield pair.server_conn.recv()
    pair.server_conn.send(request.payload, size=request.size, dst=request.src)
    reply = yield pair.client_conn.recv()
    return request, reply
