"""Tests for the anycast Chunnel (§3.2): best-instance selection."""

import pytest

from repro.apps import EchoServer, ping_session
from repro.chunnels import Anycast, AnycastDns, AnycastIp
from repro.core import Runtime, wrap
from repro.discovery import DiscoveryService
from repro.sim import Network

from ..conftest import run


def geo_world():
    """Two 'regions': near (1 µs links) and far (200 µs links)."""
    net = Network()
    net.add_host("client-host")
    net.add_host("near-host")
    net.add_host("far-host")
    dsc = net.add_host("dsc")
    net.add_switch("local-sw")
    net.add_switch("wan-sw")
    net.add_link("client-host", "local-sw", latency=1e-6)
    net.add_link("near-host", "local-sw", latency=1e-6)
    net.add_link("dsc", "local-sw", latency=1e-6)
    net.add_link("local-sw", "wan-sw", latency=200e-6)
    net.add_link("far-host", "wan-sw", latency=1e-6)
    return net, DiscoveryService(dsc)


class TestAnycastSpec:
    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            Anycast(strategy="nearest-but-wrong")

    def test_nearest_strategy_picks_close_instance(self):
        net, _discovery = geo_world()
        from repro.sim import Address

        instances = [Address("far-host", 1), Address("near-host", 1)]
        chosen = Anycast().select_instance(
            instances, net.hosts["client-host"], net
        )
        assert chosen.host == "near-host"

    def test_rotate_strategy_cycles(self):
        net, _discovery = geo_world()
        from repro.sim import Address

        instances = [Address("far-host", 1), Address("near-host", 1)]
        spec = Anycast(strategy="rotate")
        picks = {
            spec.select_instance(
                instances, net.hosts["client-host"], net
            ).host
            for _ in range(6)
        }
        assert picks == {"far-host", "near-host"}

    def test_empty_instances(self):
        net, _discovery = geo_world()
        assert (
            Anycast().select_instance([], net.hosts["client-host"], net)
            is None
        )


class TestAnycastEndToEnd:
    def test_connects_to_nearest_instance(self):
        net, discovery = geo_world()
        near_rt = Runtime(net.hosts["near-host"], discovery=discovery.address)
        far_rt = Runtime(net.hosts["far-host"], discovery=discovery.address)
        client_rt = Runtime(
            net.hosts["client-host"], discovery=discovery.address
        )
        for runtime in (near_rt, far_rt, client_rt):
            runtime.register_chunnel(AnycastIp)
            runtime.register_chunnel(AnycastDns)
        # Register the far instance FIRST: naive first-record resolution
        # would pick it; anycast must not.
        EchoServer(far_rt, port=7000, dag=wrap(Anycast()), service_name="geo")
        EchoServer(near_rt, port=7000, dag=wrap(Anycast()), service_name="geo")

        def scenario(env):
            yield env.timeout(1e-3)
            result = yield from ping_session(
                client_rt, "geo", dag=wrap(Anycast()), size=64, count=3
            )
            return result.server_entity, sum(result.rtts) / len(result.rtts)

        server, mean_rtt = run(net.env, scenario(net.env))
        assert server == "near-host"
        assert mean_rtt < 100e-6  # never crossed the WAN link

    def test_negotiation_prefers_ip_anycast_impl(self):
        net, discovery = geo_world()
        near_rt = Runtime(net.hosts["near-host"], discovery=discovery.address)
        client_rt = Runtime(
            net.hosts["client-host"], discovery=discovery.address
        )
        for runtime in (near_rt, client_rt):
            runtime.register_chunnel(AnycastIp)
            runtime.register_chunnel(AnycastDns)
        EchoServer(near_rt, port=7000, dag=wrap(Anycast()), service_name="geo")

        def scenario(env):
            yield env.timeout(1e-3)
            endpoint = client_rt.new("c", wrap(Anycast()))
            conn = yield from endpoint.connect("geo")
            node = conn.dag.find("anycast")[0]
            return type(conn.impls[node]).__name__

        # AnycastIp has higher priority than AnycastDns.
        assert run(net.env, scenario(net.env)) == "AnycastIp"
