"""Tests for the tracing utilities (taps and path summaries)."""

import pytest

from repro.sim import (
    Address,
    Datagram,
    Network,
    TapProgram,
    UdpSocket,
    summarize_paths,
)


def star():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_switch("sw")
    net.add_link("a", "sw", latency=5e-6)
    net.add_link("b", "sw", latency=5e-6)
    return net


def send_n(net, n, size=64, headers=None):
    received = []

    def server(env):
        sock = UdpSocket(net.hosts["b"], 7000)
        for _ in range(n):
            dgram = yield sock.recv()
            received.append(dgram)

    def client(env):
        sock = UdpSocket(net.hosts["a"])
        for index in range(n):
            sock.send(
                b"x" * size,
                Address("b", 7000),
                size=size,
                headers=dict(headers or {}, seq=index),
            )
            yield env.timeout(10e-6)

    net.env.process(server(net.env))
    net.env.process(client(net.env))
    net.env.run(until=1.0)
    return received


class TestTapProgram:
    def test_tap_records_without_altering(self):
        net = star()
        tap = TapProgram("probe", net.env, header_keys=("seq",))
        net.switches["sw"].install(tap)
        received = send_n(net, 3)
        assert len(received) == 3  # traffic unaffected
        assert tap.observed == 3
        assert [dict(r.headers)["seq"] for r in tap.records] == [0, 1, 2]

    def test_tap_predicate_scopes_capture(self):
        net = star()
        tap = TapProgram(
            "probe", net.env, predicate=lambda d: d.headers.get("seq") == 1
        )
        net.switches["sw"].install(tap)
        send_n(net, 3)
        assert tap.observed == 1

    def test_max_records_caps_memory(self):
        net = star()
        tap = TapProgram("probe", net.env, max_records=2)
        net.switches["sw"].install(tap)
        send_n(net, 5)
        assert tap.observed == 5
        assert len(tap.records) == 2

    def test_bytes_observed(self):
        net = star()
        tap = TapProgram("probe", net.env)
        net.switches["sw"].install(tap)
        send_n(net, 4, size=100)
        assert tap.bytes_observed() == 400

    def test_records_carry_addresses_and_time(self):
        net = star()
        tap = TapProgram("probe", net.env)
        net.switches["sw"].install(tap)
        send_n(net, 1)
        record = tap.records[0]
        assert record.dst == "b:7000"
        assert record.time > 0


class TestPathSummary:
    def test_summarize_counts_elements(self):
        net = star()
        received = send_n(net, 4)
        summary = summarize_paths(received)
        assert summary.datagrams == 4
        assert summary.hits("switch:sw") == 4
        assert summary.hits("nic:b") == 4
        assert summary.used_element("socket:")

    def test_program_hits_extracted(self):
        dgram = Datagram(
            src=Address("a", 1),
            dst=Address("b", 2),
            size=1,
            hops=["program:xdp-shard:[x]@srv", "socket:b:2"],
        )
        summary = summarize_paths([dgram])
        assert summary.program_hits["xdp-shard:[x]"] == 1

    def test_dominant_path(self):
        net = star()
        received = send_n(net, 3)
        summary = summarize_paths(received)
        dominant = summary.dominant_path()
        assert dominant is not None
        assert summary.path_signatures[dominant] == 3

    def test_empty_summary(self):
        summary = summarize_paths([])
        assert summary.datagrams == 0
        assert summary.dominant_path() is None
        assert not summary.used_element("switch:")
