"""Kernel fast-path contracts.

The fast-path refactor (process-free delivery walk, synchronous pump,
direct-scheduled retransmit timers) leans on three kernel guarantees that
were previously implicit:

- events scheduled for the same virtual instant fire in scheduling order
  (the ``_sequence`` tiebreak) — every fused delivery slot relies on it;
- ``Process.interrupt`` is O(1) regardless of how many co-waiters share
  the abandoned wait target's callback storage;
- ``_push_at`` lands pre-built entries on bit-identical absolute clock
  readings, interleaving correctly with relative pushes.

These tests pin each guarantee down so a future kernel change that breaks
one fails here, not as a byte-diff in a chaos baseline.
"""

from repro.sim import Environment, Interrupt
from repro.sim.eventloop import _OneShot


class TestSameTimestampOrder:
    def test_call_in_is_fifo_at_one_instant(self):
        env = Environment()
        order = []
        for i in range(8):
            env.call_in(1.0, lambda i=i: order.append(i))
        env.run()
        assert order == list(range(8))

    def test_mixed_primitives_fire_in_scheduling_order(self):
        # A callback, a timeout, and another callback all booked for t=2.0
        # fire strictly in booking order; the process resumes last because
        # its own timeout is only scheduled once the bootstrap has run.
        env = Environment()
        order = []
        env.call_at(2.0, lambda: order.append("cb-first"))
        timeout = env.timeout(2.0)
        timeout.add_callback(lambda _e: order.append("timeout"))

        def proc():
            yield env.timeout(2.0)
            order.append("process")

        env.process(proc())
        env.call_at(2.0, lambda: order.append("cb-last"))
        env.run()
        assert order == ["cb-first", "timeout", "cb-last", "process"]

    def test_push_at_interleaves_with_relative_pushes(self):
        env = Environment()
        order = []
        env._push(1.0, _OneShot(lambda: order.append("rel")))
        env._push_at(1.0, _OneShot(lambda: order.append("abs-same")))
        env._push_at(0.5, _OneShot(lambda: order.append("abs-early")))
        env.run()
        assert order == ["abs-early", "rel", "abs-same"]

    def test_push_at_uses_the_exact_timestamp(self):
        # No now + (at - now) round trip: the heap key IS the caller's
        # float, which is what lets the delivery walk precompute fused-hop
        # instants with bit-identical arithmetic.
        env = Environment()
        seen = []
        at = 0.1 + 0.2  # != 0.3 exactly; the kernel must not "repair" it
        env._push_at(at, _OneShot(lambda: seen.append(env.now)))
        env.run()
        assert seen == [at]


class TestInterruptAmongCoWaiters:
    def _spawn_waiters(self, env, shared, results, names):
        def waiter(name):
            try:
                value = yield shared
                results[name] = ("value", value)
            except Interrupt as exc:
                results[name] = ("interrupted", exc.cause)
                yield env.timeout(1.0)
                results[name + "-after"] = env.now

        return {name: env.process(waiter(name), name=name) for name in names}

    def test_interrupt_one_of_many_co_waiters(self):
        env = Environment()
        shared = env.event()
        results = {}
        procs = self._spawn_waiters(env, shared, results, "abcdefgh")
        env.call_in(1.0, lambda: procs["d"].interrupt("migration"))
        env.call_in(2.0, lambda: shared.succeed("payload"))
        env.run()
        # The interrupted process got the cause and kept running...
        assert results["d"] == ("interrupted", "migration")
        assert results["d-after"] == 2.0
        # ...and every other co-waiter received the value undisturbed.
        for name in "abcefgh":
            assert results[name] == ("value", "payload")

    def test_interrupt_leaves_shared_callback_storage_untouched(self):
        # The O(1) contract: interrupting abandons the old wait target
        # without scanning or mutating its callback storage — the stale
        # waiter is dropped by an identity check when the event fires.
        env = Environment()
        shared = env.event()
        results = {}
        procs = self._spawn_waiters(env, shared, results, "xyz")
        env.run(until=0.5)  # bootstraps done; all three are registered
        first_cb = shared._cb
        others = list(shared._cbs or [])
        procs["y"].interrupt("gone")
        assert shared._cb is first_cb
        assert list(shared._cbs or []) == others
        shared.succeed(7)
        env.run()
        assert results["y"] == ("interrupted", "gone")
        assert results["x"] == ("value", 7)
        assert results["z"] == ("value", 7)

    def test_interrupted_waiter_ignores_the_stale_event(self):
        # After the interrupt is delivered the process moves on to a new
        # wait target; the shared event firing later must not resume it a
        # second time.
        env = Environment()
        shared = env.event()
        log = []

        def waiter():
            try:
                yield shared
                log.append("value")
            except Interrupt:
                log.append("interrupted")
                yield env.timeout(5.0)
                log.append("timer")

        proc = env.process(waiter())
        env.call_in(1.0, lambda: proc.interrupt())
        env.call_in(2.0, lambda: shared.succeed(None))
        env.run()
        assert log == ["interrupted", "timer"]


class TestDispatchCounter:
    def test_dispatched_total_accumulates_across_runs(self):
        before = Environment.dispatched_total
        env = Environment()
        for i in range(10):
            env.call_in(float(i), lambda: None)
        env.run()
        fired = Environment.dispatched_total - before
        assert fired >= 10
        assert env.dispatched >= 10
