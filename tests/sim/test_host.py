"""Tests for hosts, containers, ports, and kernel-program management."""

import pytest

from repro.errors import AddressError, TransportError
from repro.sim import CostModel, LossProgram, Network, SmartNic, UdpSocket


class TestHostAndContainers:
    def test_container_creation_and_lookup(self):
        net = Network()
        host = net.add_host("box")
        ct = host.add_container("ct")
        assert net.entity("ct") is ct
        assert ct.host is host
        assert ct in host.entities_on_host()

    def test_container_name_collision_rejected(self):
        net = Network()
        host = net.add_host("box")
        host.add_container("ct")
        with pytest.raises(AddressError):
            host.add_container("ct")
        with pytest.raises(AddressError):
            host.add_container("box")

    def test_host_is_its_own_host(self):
        net = Network()
        host = net.add_host("box")
        assert host.host is host

    def test_smartnic_property(self):
        net = Network()
        plain = net.add_host("plain")
        smart = net.add_host("smart", nic=SmartNic(net.env, name="smart.nic"))
        assert plain.smartnic is None
        assert smart.smartnic is smart.nic

    def test_unknown_entity_lookup_raises(self):
        net = Network()
        with pytest.raises(AddressError):
            net.entity("ghost")


class TestPorts:
    def test_ephemeral_ports_are_distinct_and_high(self):
        net = Network()
        host = net.add_host("box")
        ports = {UdpSocket(host).port for _ in range(10)}
        assert len(ports) == 10
        assert all(port >= 40000 for port in ports)

    def test_explicit_bind_then_release_then_rebind(self):
        net = Network()
        host = net.add_host("box")
        sock = UdpSocket(host, 5000)
        sock.close()
        UdpSocket(host, 5000)

    def test_ephemeral_allocation_skips_taken_ports(self):
        net = Network()
        host = net.add_host("box")
        UdpSocket(host, 40000)
        UdpSocket(host, 40001)
        sock = UdpSocket(host)
        assert sock.port not in (40000, 40001)

    def test_ephemeral_allocation_wraps_at_port_space_end(self):
        # A long-lived entity that mints one socket per RPC walks through
        # the ephemeral range; after ~25k allocations the allocator must
        # wrap back to the base instead of minting port 65536.
        net = Network()
        host = net.add_host("box")
        pinned = UdpSocket(host, 40000)
        host._next_ephemeral = 65535
        last = UdpSocket(host)
        wrapped = UdpSocket(host)
        assert last.port == 65535
        assert wrapped.port == 40001  # skips the still-bound base port
        assert pinned.port == 40000

    def test_ephemeral_exhaustion_raises_address_error(self):
        net = Network()
        host = net.add_host("box")
        for port in range(40000, 65536):
            host.ports[port] = object()
        with pytest.raises(AddressError):
            host.alloc_port()


class TestKernelPrograms:
    def test_install_and_remove(self):
        net = Network()
        host = net.add_host("box")
        program = LossProgram("p")
        host.install_kernel_program(program)
        assert program in host.kernel_programs
        assert program.station is host.xdp_station
        host.remove_kernel_program(program)
        assert program not in host.kernel_programs

    def test_remove_unknown_program_raises(self):
        net = Network()
        host = net.add_host("box")
        with pytest.raises(TransportError):
            host.remove_kernel_program(LossProgram("ghost"))

    def test_xdp_cores_configurable(self):
        net = Network()
        host = net.add_host("box", xdp_cores=4)
        assert host.xdp_station.servers == 4


class TestCostModelExtras:
    def test_custom_cost_model_applies(self):
        fast = CostModel(udp_per_msg=1e-6, udp_per_byte=0)
        net = Network()
        net.add_host("a", cost=fast)
        net.add_host("b", cost=fast)
        net.add_link("a", "b", latency=1e-6, bandwidth=None)
        env = net.env
        arrived = {}

        def server(env):
            sock = UdpSocket(net.hosts["b"], 5000)
            yield sock.recv()
            arrived["t"] = env.now

        def client(env):
            sock = UdpSocket(net.hosts["a"])
            from repro.sim import Address

            sock.send(b"x", Address("b", 5000), size=1)
            yield env.timeout(0)

        env.process(server(env))
        env.process(client(env))
        env.run(until=1.0)
        # tx stack 1us + link 1us + NIC 0.5us + rx stack 1us = 3.5us
        assert arrived["t"] == pytest.approx(3.5e-6, rel=1e-6)

    def test_per_host_cost_models_are_independent(self):
        net = Network()
        cheap = net.add_host("cheap", cost=CostModel(udp_per_msg=1e-6))
        default = net.add_host("default")
        assert cheap.cost.stack_cost(0) < default.cost.stack_cost(0)
