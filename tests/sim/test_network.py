"""Tests for topology, routing, delivery, programs-in-path, and naming."""

import pytest

from repro.errors import AddressError
from repro.sim import (
    Address,
    CostModel,
    Datagram,
    LossProgram,
    Network,
    PacketAction,
    PacketProgram,
    ProgramResult,
    SmartNic,
    UdpSocket,
)


def star(n_hosts=2, latency=5e-6):
    """n hosts behind one switch."""
    net = Network()
    for index in range(n_hosts):
        net.add_host(f"h{index}")
    net.add_switch("sw")
    for index in range(n_hosts):
        net.add_link(f"h{index}", "sw", latency=latency)
    return net


class TestTopology:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(AddressError):
            net.add_host("a")
        with pytest.raises(AddressError):
            net.add_switch("a")

    def test_link_to_unknown_node_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(AddressError):
            net.add_link("a", "ghost")

    def test_route_is_shortest_by_latency(self):
        net = Network()
        for name in ("a", "b"):
            net.add_host(name)
        net.add_switch("fast")
        net.add_switch("slow")
        net.add_link("a", "fast", latency=1e-6)
        net.add_link("fast", "b", latency=1e-6)
        net.add_link("a", "slow", latency=50e-6)
        net.add_link("slow", "b", latency=50e-6)
        assert net.route("a", "b") == ["a", "fast", "b"]

    def test_no_route_raises(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(AddressError):
            net.route("a", "b")

    def test_route_cache_invalidated_by_new_link(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_switch("s1")
        net.add_link("a", "s1", latency=10e-6)
        net.add_link("s1", "b", latency=10e-6)
        assert net.route("a", "b") == ["a", "s1", "b"]
        net.add_switch("s2")
        net.add_link("a", "s2", latency=1e-6)
        net.add_link("s2", "b", latency=1e-6)
        assert net.route("a", "b") == ["a", "s2", "b"]

    def test_container_shares_host_links(self):
        net = star(2)
        ct = net.hosts["h0"].add_container("ct")
        assert net.entity("ct").host is net.hosts["h0"]


def two_path_net():
    """a and b joined by a cheap path (via ``fast``) and a dear one
    (via ``slow``)."""
    net = Network()
    for name in ("a", "b"):
        net.add_host(name)
    net.add_switch("fast")
    net.add_switch("slow")
    net.add_link("a", "fast", latency=1e-6)
    net.add_link("fast", "b", latency=1e-6)
    net.add_link("a", "slow", latency=50e-6)
    net.add_link("slow", "b", latency=50e-6)
    return net


class TestRoutingUnderLinkFailure:
    """Regression: only ``add_link`` used to clear the route cache — a
    link failing *after* a path was cached kept attracting traffic
    (dropped as ``link_down``) even when an up alternate existed."""

    def test_link_failure_invalidates_cached_route(self):
        net = two_path_net()
        assert net.route("a", "b") == ["a", "fast", "b"]  # cached now
        net.link_between("a", "fast").up = False
        assert net.route("a", "b") == ["a", "slow", "b"]

    def test_link_recovery_restores_preferred_route(self):
        net = two_path_net()
        link = net.link_between("a", "fast")
        link.up = False
        assert net.route("a", "b") == ["a", "slow", "b"]
        link.up = True
        assert net.route("a", "b") == ["a", "fast", "b"]

    def test_severed_network_keeps_link_down_semantics(self):
        # With *no* up path left, route() must still return the full-
        # topology path so the walk drops at the dead link and counts
        # link_down — routing does not mask a genuinely severed network.
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_switch("s1")
        net.add_link("a", "s1", latency=1e-6)
        net.add_link("s1", "b", latency=1e-6)
        net.link_between("a", "s1").up = False
        assert net.route("a", "b") == ["a", "s1", "b"]

    def test_partition_set_and_clear_invalidate_route_cache(self):
        net = two_path_net()
        net.route("a", "b")
        assert net._route_cache
        net._partition = {"a": 0, "b": 1}
        assert not net._route_cache
        net.route("a", "b")
        assert net._route_cache
        net._partition = None
        assert not net._route_cache

    def test_redundant_state_write_does_not_thrash_cache(self):
        net = two_path_net()
        net.route("a", "b")
        net.link_between("a", "fast").up = True  # already up: no change
        assert net._route_cache


class TestDelivery:
    def ping(self, net, src_entity, dst_entity, dst_port=5000, size=64):
        """Send one datagram; returns (delivered dgram or None, rtt)."""
        env = net.env
        result = {}

        def server(env):
            sock = UdpSocket(net.entity(dst_entity), dst_port)
            dgram = yield sock.recv()
            result["dgram"] = dgram
            result["at"] = env.now

        def client(env):
            sock = UdpSocket(net.entity(src_entity))
            sock.send(b"x" * size, Address(dst_entity, dst_port), size=size)
            yield env.timeout(0)

        env.process(server(env))
        env.process(client(env))
        env.run(until=1.0)
        return result

    def test_cross_host_delivery(self):
        net = star(2)
        result = self.ping(net, "h0", "h1")
        assert result["dgram"].payload == b"x" * 64
        assert net.delivered == 1

    def test_delivery_reroutes_around_failed_link(self):
        # End-to-end shape of the route-cache fix: traffic that cached the
        # cheap path keeps flowing over the alternate after a failure
        # instead of being dropped as link_down.
        net = two_path_net()
        env = net.env
        received = []

        def server(env):
            sock = UdpSocket(net.entity("b"), 5000)
            while True:
                dgram = yield sock.recv()
                received.append(dgram)

        def client(env):
            sock = UdpSocket(net.entity("a"))
            sock.send(b"x" * 64, Address("b", 5000), size=64)  # caches fast path
            yield env.timeout(1e-3)
            net.link_between("a", "fast").up = False
            sock.send(b"y" * 64, Address("b", 5000), size=64)

        env.process(server(env))
        env.process(client(env))
        env.run(until=1.0)
        assert [d.payload for d in received] == [b"x" * 64, b"y" * 64]
        assert net.dropped_link_down == 0

    def test_hop_trace_records_path(self):
        net = star(2)
        result = self.ping(net, "h0", "h1")
        hops = result["dgram"].hops
        assert any(h.startswith("switch:sw") for h in hops)
        assert any(h.startswith("nic:h1") for h in hops)
        assert hops[-1].startswith("socket:")

    def test_same_host_skips_nic(self):
        net = Network()
        host = net.add_host("box")
        host.add_container("ca")
        host.add_container("cb")
        result = self.ping(net, "ca", "cb")
        assert not any(h.startswith("nic:") for h in result["dgram"].hops)

    def test_unbound_port_counts_drop(self):
        net = star(2)
        env = net.env
        sock = UdpSocket(net.hosts["h0"])
        sock.send(b"x", Address("h1", 9999), size=10)
        env.run(until=1.0)
        assert net.dropped_unbound == 1
        assert net.delivered == 0

    def test_unknown_entity_counts_drop(self):
        net = star(2)
        sock = UdpSocket(net.hosts["h0"])
        sock.send(b"x", Address("nowhere", 1), size=10)
        net.env.run(until=1.0)
        assert net.dropped_no_entity == 1

    def test_transmit_from_unknown_entity_raises(self):
        net = star(2)
        with pytest.raises(AddressError):
            net.transmit(
                Datagram(src=Address("ghost", 1), dst=Address("h1", 1), size=1)
            )

    def test_latency_components_add_up(self):
        net = star(2, latency=5e-6)
        result = self.ping(net, "h0", "h1", size=64)
        # tx stack + 2 links + switch + NIC + rx stack; all defaults known.
        cost = CostModel()
        expected = (
            cost.stack_cost(64)
            + 2 * (5e-6 + 64 / (10 * 125_000_000.0))
            + net.switches["sw"].forward_latency
            + 0.5e-6  # NIC rx per packet
            + cost.stack_cost(64)
        )
        assert result["at"] == pytest.approx(expected, rel=1e-6)

    def test_delivery_to_closed_socket_is_dropped_silently(self):
        net = star(2)
        env = net.env
        sock_rx = UdpSocket(net.hosts["h1"], 5000)
        sock_rx.close()
        sock_tx = UdpSocket(net.hosts["h0"])
        sock_tx.send(b"x", Address("h1", 5000), size=1)
        env.run(until=1.0)
        assert net.delivered == 0


class _RewriteProgram(PacketProgram):
    """Redirects port 7000 to port 7001."""

    def __init__(self):
        super().__init__("rewrite")

    def match(self, dgram):
        return dgram.dst.port == 7000

    def handle(self, dgram):
        dgram.dst = Address(dgram.dst.host, 7001)
        return ProgramResult(action=PacketAction.REDIRECT)


class TestProgramsInPath:
    def test_switch_program_redirects(self):
        net = star(2)
        net.switches["sw"].install(_RewriteProgram())
        env = net.env
        received = []

        def server(env):
            sock = UdpSocket(net.hosts["h1"], 7001)
            dgram = yield sock.recv()
            received.append(dgram)

        def client(env):
            sock = UdpSocket(net.hosts["h0"])
            sock.send(b"x", Address("h1", 7000), size=8)
            yield env.timeout(0)

        env.process(server(env))
        env.process(client(env))
        env.run(until=1.0)
        assert len(received) == 1
        assert received[0].dst.port == 7001

    def test_switch_loss_program_drops(self):
        net = star(2)
        net.switches["sw"].install(LossProgram("loss", drop_first=1))
        env = net.env
        sock_rx = UdpSocket(net.hosts["h1"], 7000)
        sock_tx = UdpSocket(net.hosts["h0"])
        sock_tx.send(b"1", Address("h1", 7000), size=1)
        sock_tx.send(b"2", Address("h1", 7000), size=1)
        env.run(until=1.0)
        assert net.dropped_by_program == 1
        assert sock_rx.received == 1

    def test_kernel_program_runs_only_for_wire_traffic(self):
        net = Network()
        host = net.add_host("box")
        host.add_container("ca")
        host.add_container("cb")
        counted = LossProgram("count", drop_rate=0.0)
        host.install_kernel_program(counted)
        env = net.env
        UdpSocket(net.entity("cb"), 5000)
        sock = UdpSocket(net.entity("ca"))
        sock.send(b"x", Address("cb", 5000), size=1)
        env.run(until=1.0)
        assert counted.matched == 0  # loopback traffic bypasses XDP

    def test_smartnic_program_runs_before_kernel_program(self):
        net = Network()
        net.add_host("h0")
        host = net.add_host(
            "h1", nic=SmartNic(net.env, name="h1.nic")
        )
        net.add_switch("sw")
        net.add_link("h0", "sw")
        net.add_link("h1", "sw")
        order = []

        class Tap(PacketProgram):
            def __init__(self, name):
                super().__init__(name)

            def match(self, dgram):
                return True

            def handle(self, dgram):
                order.append(self.name)
                return ProgramResult(action=PacketAction.PASS)

        host.smartnic.install(Tap("nic"))
        host.install_kernel_program(Tap("xdp"))
        UdpSocket(host, 5000)
        sock = UdpSocket(net.hosts["h0"])
        sock.send(b"x", Address("h1", 5000), size=1)
        net.env.run(until=1.0)
        assert order == ["nic", "xdp"]

    def test_forwarding_loop_detected(self):
        # hA — s1 — s2 — hB, with programs on the two switches bouncing the
        # datagram's destination back and forth between the hosts forever.
        net = Network()
        net.add_host("hA")
        net.add_host("hB")
        net.add_switch("s1")
        net.add_switch("s2")
        net.add_link("hA", "s1")
        net.add_link("s1", "s2")
        net.add_link("s2", "hB")

        class Flip(PacketProgram):
            def __init__(self, name, target):
                super().__init__(name)
                self.target = target

            def match(self, dgram):
                return True

            def handle(self, dgram):
                dgram.dst = Address(self.target, 7000)
                return ProgramResult(action=PacketAction.REDIRECT)

        net.switches["s1"].install(Flip("to-b", "hB"))
        net.switches["s2"].install(Flip("to-a", "hA"))
        sock = UdpSocket(net.hosts["hA"])
        sock.send(b"x", Address("hB", 7000), size=1)
        with pytest.raises(AddressError, match="loop"):
            net.env.run(until=1.0)


class TestNameService:
    def test_register_resolve_unregister(self):
        net = star(2)
        addr = Address("h1", 7000)
        net.names.register("svc", addr)
        assert [r.address for r in net.names.resolve("svc")] == [addr]
        net.names.unregister("svc", addr)
        assert net.names.resolve("svc") == []

    def test_resolution_order_is_registration_order(self):
        net = star(3)
        net.names.register("svc", Address("h1", 1))
        net.names.register("svc", Address("h2", 1))
        addresses = [r.address.host for r in net.names.resolve("svc")]
        assert addresses == ["h1", "h2"]

    def test_resolve_local_finds_same_host_instance(self):
        net = star(2)
        ct = net.hosts["h0"].add_container("ct")
        net.names.register("svc", Address("h1", 1))
        net.names.register("svc", Address("ct", 1))
        local = net.names.resolve_local("svc", "h0")
        assert local is not None
        assert local.address.host == "ct"

    def test_resolve_unknown_name_is_empty(self):
        net = star(1)
        assert net.names.resolve("ghost") == []


class TestKRoutes:
    """Edge-disjoint path queries and their cache discipline."""

    def test_edge_disjoint_paths_in_cost_order(self):
        net = two_path_net()
        assert net.k_routes("a", "b", 2) == [
            ["a", "fast", "b"],
            ["a", "slow", "b"],
        ]

    def test_k_beyond_diversity_returns_what_exists(self):
        net = two_path_net()
        assert len(net.k_routes("a", "b", 4)) == 2

    def test_result_is_cached(self):
        net = two_path_net()
        assert net.k_routes("a", "b", 2) is net.k_routes("a", "b", 2)

    def test_invalid_k_rejected(self):
        net = two_path_net()
        with pytest.raises(ValueError):
            net.k_routes("a", "b", 0)

    def test_unknown_destination_raises_address_error(self):
        net = two_path_net()
        with pytest.raises(AddressError):
            net.k_routes("a", "ghost", 2)

    def test_link_state_change_invalidates(self):
        net = two_path_net()
        assert net.k_routes("a", "b", 2)[0] == ["a", "fast", "b"]
        link = net.link_between("a", "fast")
        link.up = False
        assert net.k_routes("a", "b", 2) == [["a", "slow", "b"]]
        link.up = True
        assert net.k_routes("a", "b", 2)[0] == ["a", "fast", "b"]

    def test_partition_set_and_clear_invalidate(self):
        net = two_path_net()
        net.k_routes("a", "b", 2)
        assert net._k_route_cache
        net._partition = {"a": 0, "b": 1}
        assert not net._k_route_cache
        net.k_routes("a", "b", 2)
        assert net._k_route_cache
        net._partition = None
        assert not net._k_route_cache

    def test_new_link_invalidates(self):
        net = two_path_net()
        assert len(net.k_routes("a", "b", 3)) == 2
        net.add_switch("mid")
        net.add_link("a", "mid", latency=10e-6)
        net.add_link("mid", "b", latency=10e-6)
        assert len(net.k_routes("a", "b", 3)) == 3

    def test_severed_network_degenerates_to_route(self):
        # No up path at all: fall back to the full-topology route so the
        # walk keeps its link_down drop semantics (mirrors route()).
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_switch("s1")
        net.add_link("a", "s1", latency=1e-6)
        net.add_link("s1", "b", latency=1e-6)
        net.link_between("a", "s1").up = False
        assert net.k_routes("a", "b", 2) == [["a", "s1", "b"]]


class TestSourceRoutePin:
    """Datagrams carrying a pinned path override the routing tables."""

    def _one_way(self, net, headers):
        from repro.sim import SRCROUTE_HEADER  # noqa: F401  (doc pointer)

        env = net.env
        result = {}

        def server(env):
            sock = UdpSocket(net.entity("b"), 5000)
            result["dgram"] = yield sock.recv()

        def client(env):
            sock = UdpSocket(net.entity("a"))
            sock.send(b"x", Address("b", 5000), size=8, headers=headers)
            yield env.timeout(0)

        env.process(server(env))
        env.process(client(env))
        env.run(until=1e-2)
        return result.get("dgram")

    def test_pin_steers_off_the_preferred_path(self):
        from repro.sim import SRCROUTE_HEADER

        net = two_path_net()
        dgram = self._one_way(
            net, {SRCROUTE_HEADER: ("a", "slow", "b")}
        )
        assert dgram is not None
        assert "switch:slow" in dgram.hops
        assert net.srcroute_fallbacks == 0

    def test_stale_pin_falls_back_to_routing(self):
        from repro.sim import SRCROUTE_HEADER

        net = two_path_net()
        dgram = self._one_way(
            net, {SRCROUTE_HEADER: ("a", "ghost", "b")}
        )
        assert dgram is not None  # rerouted, not dropped
        assert "switch:fast" in dgram.hops
        assert net.srcroute_fallbacks > 0
