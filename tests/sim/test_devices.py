"""Tests for links, PCIe, NICs, switches, and packet programs."""

import pytest

from repro.errors import ResourceExhaustedError
from repro.sim import (
    Datagram,
    Address,
    Environment,
    Link,
    LossProgram,
    Nic,
    PacketAction,
    PacketProgram,
    PcieBus,
    ProgramResult,
    ProgrammableSwitch,
    SmartNic,
    SwitchProgramFootprint,
)


def make_dgram(**kwargs):
    defaults = dict(src=Address("a", 1000), dst=Address("b", 2000), size=100)
    defaults.update(kwargs)
    return Datagram(**defaults)


class TestLink:
    def test_delay_combines_latency_and_serialization(self):
        link = Link("a", "b", latency=10e-6, bandwidth=1e6)
        assert link.delay_for(1000) == pytest.approx(10e-6 + 1e-3)

    def test_infinite_bandwidth(self):
        link = Link("a", "b", latency=1e-6, bandwidth=None)
        assert link.delay_for(10**9) == pytest.approx(1e-6)

    def test_other_end(self):
        link = Link("a", "b")
        assert link.other_end("a") == "b"
        assert link.other_end("b") == "a"
        with pytest.raises(ValueError):
            link.other_end("c")

    def test_byte_accounting(self):
        link = Link("a", "b")
        link.record(100)
        link.record(200)
        assert link.bytes_carried == 300
        assert link.datagrams_carried == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Link("a", "b", latency=-1)
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth=0)


class TestPcieBus:
    def test_transfer_accounts_and_delays(self):
        env = Environment()
        bus = PcieBus(env, crossing_latency=1e-6, bandwidth=1e9)
        delay = bus.transfer(1000)
        assert delay == pytest.approx(1e-6 + 1e-6)
        assert bus.crossings == 1
        assert bus.bytes_moved == 1000

    def test_delay_for_does_not_account(self):
        env = Environment()
        bus = PcieBus(env)
        bus.delay_for(500)
        assert bus.crossings == 0

    def test_reset_counters(self):
        env = Environment()
        bus = PcieBus(env)
        bus.transfer(10)
        bus.reset_counters()
        assert bus.crossings == 0
        assert bus.bytes_moved == 0

    def test_negative_size_rejected(self):
        env = Environment()
        bus = PcieBus(env)
        with pytest.raises(ValueError):
            bus.transfer(-1)


class TestNic:
    def test_rx_station_charges_per_packet(self):
        env = Environment()
        nic = Nic(env, "n", rx_per_packet=1e-6)
        done = nic.rx_station.submit(make_dgram())
        env.run(until=done)
        assert env.now == pytest.approx(1e-6)
        assert nic.packets_received == 1

    def test_per_byte_component(self):
        env = Environment()
        nic = Nic(env, "n", rx_per_packet=0, rx_per_byte=1e-9)
        done = nic.rx_station.submit(make_dgram(size=1000))
        env.run(until=done)
        assert env.now == pytest.approx(1e-6)


class _MarkProgram(PacketProgram):
    def __init__(self, name="mark"):
        super().__init__(name)

    def match(self, dgram):
        return dgram.dst.port == 2000

    def handle(self, dgram):
        dgram.headers["marked"] = True
        return ProgramResult(action=PacketAction.PASS)


class TestSmartNic:
    def test_install_consumes_slots(self):
        env = Environment()
        nic = SmartNic(env, "sn", offload_slots=2)
        nic.install(_MarkProgram("p1"))
        nic.install(_MarkProgram("p2"))
        with pytest.raises(ResourceExhaustedError):
            nic.install(_MarkProgram("p3"))

    def test_uninstall_returns_slots(self):
        env = Environment()
        nic = SmartNic(env, "sn", offload_slots=1)
        program = _MarkProgram()
        nic.install(program)
        nic.uninstall(program)
        nic.install(_MarkProgram("again"))  # fits again

    def test_program_gets_compute_station(self):
        env = Environment()
        nic = SmartNic(env, "sn")
        program = _MarkProgram()
        nic.install(program)
        assert program.station is nic.compute

    def test_matching_programs_in_install_order(self):
        env = Environment()
        nic = SmartNic(env, "sn")
        p1, p2 = _MarkProgram("p1"), _MarkProgram("p2")
        nic.install(p1)
        nic.install(p2)
        assert nic.matching_programs(make_dgram()) == [p1, p2]
        assert nic.matching_programs(make_dgram(dst=Address("b", 1))) == []


class TestProgrammableSwitch:
    def test_install_within_footprint(self):
        env = Environment()
        switch = ProgrammableSwitch(env, "sw", stages=4, sram_kb=256)
        switch.install(_MarkProgram(), SwitchProgramFootprint(stages=2, sram_kb=128))
        assert switch.stage_pool.available == 2
        assert switch.sram_pool.available == 128

    def test_install_beyond_capacity_raises(self):
        env = Environment()
        switch = ProgrammableSwitch(env, "sw", stages=2, sram_kb=64)
        with pytest.raises(ResourceExhaustedError):
            switch.install(
                _MarkProgram(), SwitchProgramFootprint(stages=3, sram_kb=1)
            )

    def test_uninstall_returns_resources(self):
        env = Environment()
        switch = ProgrammableSwitch(env, "sw", stages=2, sram_kb=64)
        program = _MarkProgram()
        footprint = SwitchProgramFootprint(stages=2, sram_kb=64)
        switch.install(program, footprint)
        switch.uninstall(program)
        assert switch.can_fit(footprint)

    def test_forward_accounting(self):
        env = Environment()
        switch = ProgrammableSwitch(env, "sw")
        dgram = make_dgram()
        switch.record_forward(dgram)
        assert switch.datagrams_forwarded == 1
        assert "switch:sw" in dgram.hops

    def test_negative_footprint_rejected(self):
        with pytest.raises(ValueError):
            SwitchProgramFootprint(stages=-1)


class TestLossProgram:
    def test_drop_first_n(self):
        program = LossProgram("loss", drop_first=2)
        results = [program.run(make_dgram()) for _ in range(4)]
        actions = [r.action for r in results]
        assert actions == [
            PacketAction.DROP,
            PacketAction.DROP,
            PacketAction.PASS,
            PacketAction.PASS,
        ]
        assert program.dropped == 2

    def test_predicate_scopes_matching(self):
        program = LossProgram(
            "loss", predicate=lambda d: d.dst.port == 7, drop_first=1
        )
        assert not program.match(make_dgram())
        assert program.match(make_dgram(dst=Address("b", 7)))

    def test_random_loss_is_seeded(self):
        def drops(seed):
            program = LossProgram("loss", drop_rate=0.5, seed=seed)
            return [
                program.run(make_dgram()).action is PacketAction.DROP
                for _ in range(50)
            ]

        assert drops(1) == drops(1)
        assert drops(1) != drops(2)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            LossProgram("loss", drop_rate=1.5)


class TestDatagram:
    def test_size_defaults_to_payload_length(self):
        dgram = make_dgram(payload=b"12345", size=0)
        assert dgram.size == 5

    def test_uids_are_unique(self):
        assert make_dgram().uid != make_dgram().uid

    def test_reply_to_prefers_header(self):
        dgram = make_dgram(headers={"reply_to": Address("c", 9)})
        assert dgram.reply_to() == Address("c", 9)
        assert make_dgram().reply_to() == Address("a", 1000)

    def test_address_validation(self):
        with pytest.raises(ValueError):
            Address("", 80)
        with pytest.raises(ValueError):
            Address("h", 0)
        with pytest.raises(ValueError):
            Address("h", 70000)

    def test_address_string_form(self):
        assert str(Address("host", 8080)) == "host:8080"


class TestSwitchInstallGuards:
    """Regression: double-install used to overwrite the footprint entry,
    leaking the first footprint's tokens forever after uninstall."""

    def test_double_install_rejected(self):
        from repro.errors import ChunnelArgumentError

        env = Environment()
        switch = ProgrammableSwitch(env, "sw", stages=8, sram_kb=512)
        program = _MarkProgram()
        switch.install(program, SwitchProgramFootprint(stages=2, sram_kb=128))
        with pytest.raises(ChunnelArgumentError):
            switch.install(
                program, SwitchProgramFootprint(stages=1, sram_kb=64)
            )
        # The failed re-install consumed nothing; uninstall returns all.
        switch.uninstall(program)
        assert switch.stage_pool.available == 8
        assert switch.sram_pool.available == 512

    def test_uninstall_unknown_program_raises_clear_error(self):
        from repro.errors import ChunnelArgumentError

        env = Environment()
        switch = ProgrammableSwitch(env, "sw")
        with pytest.raises(ChunnelArgumentError, match="not installed"):
            switch.uninstall(_MarkProgram())


class TestSwitchFailRecoverMidTraffic:
    def test_programs_skipped_while_failed_and_resume_after(self):
        env = Environment()
        switch = ProgrammableSwitch(env, "sw", stages=4, sram_kb=256)
        program = _MarkProgram()
        switch.install(program, SwitchProgramFootprint(stages=1, sram_kb=64))
        dgram = make_dgram()
        assert switch.matching_programs(dgram) == [program]
        switch.fail("test")
        assert switch.matching_programs(dgram) == []
        assert switch.programs == [program]  # stays installed for teardown
        switch.recover("test")
        assert switch.matching_programs(dgram) == [program]
        assert switch.failures == 1

    def test_state_watchers_fire_on_both_edges(self):
        env = Environment()
        switch = ProgrammableSwitch(env, "sw")
        events = []
        switch.on_state_change(
            lambda device, failed, reason: events.append((failed, reason))
        )
        switch.fail("injected")
        switch.fail("injected-again")  # idempotent: no second event
        switch.recover("fixed")
        assert events == [(True, "injected"), (False, "fixed")]
