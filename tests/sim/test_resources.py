"""Tests for Station, TokenResource, and Store."""

import pytest

from repro.sim import Environment, Station, Store, TokenResource


class TestStation:
    def test_single_job_takes_service_time(self):
        env = Environment()
        station = Station(env, service_time=2.0)
        done = station.submit("job")
        env.run()
        assert done.processed
        assert env.now == 2.0

    def test_fifo_queueing_on_one_server(self):
        env = Environment()
        station = Station(env, service_time=1.0)
        completions = []
        for name in ("a", "b", "c"):
            station.submit(name).add_callback(
                lambda e: completions.append((e.value, env.now))
            )
        env.run()
        assert completions == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_parallel_servers(self):
        env = Environment()
        station = Station(env, service_time=1.0, servers=2)
        times = []
        for _ in range(4):
            station.submit().add_callback(lambda e: times.append(env.now))
        env.run()
        assert times == [1.0, 1.0, 2.0, 2.0]

    def test_callable_service_time(self):
        env = Environment()
        station = Station(env, service_time=lambda size: size * 0.5)
        done = station.submit(4)
        env.run(until=done)
        assert env.now == 2.0

    def test_later_arrival_after_idle_starts_immediately(self):
        env = Environment()
        station = Station(env, service_time=1.0)

        def proc(env):
            yield station.submit()
            yield env.timeout(5)  # station idles
            start = env.now
            yield station.submit()
            return env.now - start

        p = env.process(proc(env))
        env.run()
        assert p.value == pytest.approx(1.0)

    def test_statistics(self):
        env = Environment()
        station = Station(env, service_time=2.0)
        station.submit()
        station.submit()
        env.run()
        assert station.jobs_served == 2
        assert station.total_service == pytest.approx(4.0)
        assert station.mean_wait == pytest.approx(1.0)  # (0 + 2) / 2

    def test_delay_for_does_not_enqueue(self):
        env = Environment()
        station = Station(env, service_time=1.0)
        station.submit()
        assert station.delay_for() == pytest.approx(2.0)
        assert station.jobs_served == 1  # unchanged by delay_for

    def test_zero_servers_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Station(env, service_time=1.0, servers=0)

    def test_negative_service_time_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Station(env, service_time=-1.0)

    def test_utilization_determines_latency_growth(self):
        """The queueing property Figure 5 relies on: latency explodes past
        the service rate."""
        env = Environment()
        station = Station(env, service_time=1.0)
        last_completion = {}
        # Offered load 2x service rate: arrivals every 0.5, service 1.0.
        def arrivals(env):
            for index in range(20):
                station.submit(index).add_callback(
                    lambda e: last_completion.update(done=env.now)
                )
                yield env.timeout(0.5)

        env.process(arrivals(env))
        env.run()
        # 20 jobs at 1s each: finishes at t=20, far beyond last arrival ~10.
        assert last_completion["done"] == pytest.approx(20.0)


class TestTokenResource:
    def test_grant_within_capacity_is_immediate(self):
        env = Environment()
        resource = TokenResource(env, capacity=3)
        grant = resource.request(2)
        assert grant.triggered
        assert resource.available == 1

    def test_fifo_granting(self):
        env = Environment()
        resource = TokenResource(env, capacity=2)
        order = []
        resource.request(2).add_callback(lambda e: order.append("first"))
        resource.request(1).add_callback(lambda e: order.append("second"))
        resource.request(1).add_callback(lambda e: order.append("third"))
        env.run()
        assert order == ["first"]
        resource.release(2)
        env.run()
        assert order == ["first", "second", "third"]

    def test_small_request_waits_behind_large_head(self):
        """Strict FIFO: a fitting request does not jump a blocked one."""
        env = Environment()
        resource = TokenResource(env, capacity=2)
        resource.request(1)
        blocked = resource.request(2)
        small = resource.request(1)
        env.run()
        assert not blocked.triggered
        assert not small.triggered  # would fit, but FIFO holds it back

    def test_try_request(self):
        env = Environment()
        resource = TokenResource(env, capacity=1)
        assert resource.try_request(1)
        assert not resource.try_request(1)
        resource.release(1)
        assert resource.try_request(1)

    def test_over_capacity_request_rejected(self):
        env = Environment()
        resource = TokenResource(env, capacity=2)
        with pytest.raises(ValueError):
            resource.request(3)

    def test_over_release_detected(self):
        env = Environment()
        resource = TokenResource(env, capacity=1)
        from repro.sim import SimulationError

        with pytest.raises(SimulationError):
            resource.release(1)

    def test_queued_count(self):
        env = Environment()
        resource = TokenResource(env, capacity=1)
        resource.request(1)
        resource.request(1)
        assert resource.queued == 1


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("item")
        got = store.get()
        assert got.triggered
        env.run()
        assert got.value == "item"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def getter(env):
            item = yield store.get()
            return (item, env.now)

        def putter(env):
            yield env.timeout(3)
            store.put("late")

        p = env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert p.value == ("late", 3)

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for index in range(3):
            store.put(index)
        values = []
        for _ in range(3):
            event = store.get()
            event.add_callback(lambda e: values.append(e.value))
        env.run()
        assert values == [0, 1, 2]

    def test_getters_served_in_request_order(self):
        env = Environment()
        store = Store(env)
        order = []
        store.get().add_callback(lambda e: order.append(("g1", e.value)))
        store.get().add_callback(lambda e: order.append(("g2", e.value)))
        store.put("a")
        store.put("b")
        env.run()
        assert order == [("g1", "a"), ("g2", "b")]

    def test_cancelled_getter_does_not_swallow_items(self):
        env = Environment()
        store = Store(env)
        abandoned = store.get()
        abandoned.succeed(None)  # cancelled (the timeout-wait pattern)
        live = store.get()
        store.put("x")
        env.run()
        assert live.value == "x"

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() == (False, None)
        store.put(9)
        assert store.try_get() == (True, 9)

    def test_len_counts_buffered(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestSubmitWalk:
    """``submit_walk`` is ``submit`` for the delivery walk: identical
    bookkeeping and completion instants, but the caller gets the absolute
    completion time instead of an Event."""

    def test_matches_submit_completion_times_and_stats(self):
        env = Environment()
        eventful = Station(env, service_time=2.0, name="eventful")
        walked = Station(env, service_time=2.0, name="walked")
        completions = []
        walk_times = []
        for job in range(5):
            done = eventful.submit(job)
            done.add_callback(lambda _e: completions.append(env.now))
            walk_times.append(walked.submit_walk(job))
        env.run()
        assert walk_times == completions == [2.0, 4.0, 6.0, 8.0, 10.0]
        assert walked.jobs_served == eventful.jobs_served == 5
        assert walked.total_wait == eventful.total_wait
        assert walked.total_service == eventful.total_service
        # The completion slot still fires on the heap, so queue-depth
        # accounting drains exactly as with submit().
        assert walked.jobs_in_system == eventful.jobs_in_system == 0

    def test_multi_server_assignment_matches(self):
        env = Environment()
        eventful = Station(env, service_time=3.0, servers=2)
        walked = Station(env, service_time=3.0, servers=2)
        completions = []
        walk_times = []
        for job in range(4):
            done = eventful.submit(job)
            done.add_callback(lambda _e: completions.append(env.now))
            walk_times.append(walked.submit_walk(job))
        env.run()
        assert walk_times == completions == [3.0, 3.0, 6.0, 6.0]
