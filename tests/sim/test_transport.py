"""Tests for the UDP / loopback-TCP / pipe transports and cost models."""

import pytest

from repro.errors import AddressError, ConnectionClosedError, TransportError
from repro.sim import (
    Address,
    CostModel,
    Network,
    PipeSocket,
    TcpLoopbackSocket,
    UdpSocket,
)


def one_host_world():
    net = Network()
    host = net.add_host("box")
    host.add_container("ca")
    host.add_container("cb")
    return net


def rtt(net, client_sock, server_sock, size=64):
    """Echo once; return the measured round trip."""
    env = net.env
    result = {}

    def server(env):
        dgram = yield server_sock.recv()
        server_sock.send(dgram.payload, dgram.src, size=dgram.size)

    def client(env):
        start = env.now
        client_sock.send(b"x" * size, server_sock.address, size=size)
        yield client_sock.recv()
        result["rtt"] = env.now - start

    env.process(server(env))
    env.process(client(env))
    env.run(until=1.0)
    return result["rtt"]


class TestCostModel:
    def test_stack_cost_components(self):
        cost = CostModel(udp_per_msg=5e-6, udp_per_byte=1e-9)
        assert cost.stack_cost(1000) == pytest.approx(6e-6)

    def test_tcp_adds_extra(self):
        cost = CostModel()
        assert cost.tcp_loopback_cost(0) > cost.stack_cost(0)

    def test_jitter_zero_is_exact(self):
        cost = CostModel(jitter=0)
        assert cost.stack_cost(100) == cost.stack_cost(100)

    def test_jitter_is_seeded_and_bounded(self):
        cost_a = CostModel(jitter=0.1, jitter_seed=1)
        cost_b = CostModel(jitter=0.1, jitter_seed=1)
        draws_a = [cost_a.stack_cost(100) for _ in range(20)]
        draws_b = [cost_b.stack_cost(100) for _ in range(20)]
        assert draws_a == draws_b
        base = CostModel().stack_cost(100)
        assert all(0.9 * base <= d <= 1.1 * base for d in draws_a)
        assert len(set(draws_a)) > 1

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            CostModel(jitter=1.5)


class TestUdpSocket:
    def test_ephemeral_port_allocation(self):
        net = one_host_world()
        s1 = UdpSocket(net.entity("ca"))
        s2 = UdpSocket(net.entity("ca"))
        assert s1.port != s2.port

    def test_bind_conflict(self):
        net = one_host_world()
        UdpSocket(net.entity("ca"), 5000)
        with pytest.raises(AddressError):
            UdpSocket(net.entity("ca"), 5000)

    def test_containers_have_separate_port_spaces(self):
        net = one_host_world()
        UdpSocket(net.entity("ca"), 5000)
        UdpSocket(net.entity("cb"), 5000)  # no conflict

    def test_loopback_udp_rtt(self):
        net = one_host_world()
        server = UdpSocket(net.entity("cb"), 5000)
        client = UdpSocket(net.entity("ca"))
        cost = CostModel()
        expected = 2 * (2 * cost.stack_cost(64) + cost.loopback_latency)
        assert rtt(net, client, server) == pytest.approx(expected, rel=1e-6)

    def test_send_after_close_raises(self):
        net = one_host_world()
        sock = UdpSocket(net.entity("ca"))
        sock.close()
        with pytest.raises(ConnectionClosedError):
            sock.send(b"x", Address("cb", 1), size=1)

    def test_recv_after_close_raises(self):
        net = one_host_world()
        sock = UdpSocket(net.entity("ca"))
        sock.close()
        with pytest.raises(ConnectionClosedError):
            sock.recv()

    def test_close_releases_port(self):
        net = one_host_world()
        sock = UdpSocket(net.entity("ca"), 5000)
        sock.close()
        UdpSocket(net.entity("ca"), 5000)  # rebindable

    def test_extra_delay_is_charged(self):
        net = one_host_world()
        server = UdpSocket(net.entity("cb"), 5000)
        env = net.env
        times = {}

        def srv(env):
            yield server.recv()
            times["arrived"] = env.now

        env.process(srv(env))
        client = UdpSocket(net.entity("ca"))
        client.send(b"x", server.address, size=1)
        env.run(until=1.0)
        baseline = times["arrived"]

        net2 = one_host_world()
        server2 = UdpSocket(net2.entity("cb"), 5000)
        times2 = {}

        def srv2(env):
            yield server2.recv()
            times2["arrived"] = env.now

        net2.env.process(srv2(net2.env))
        client2 = UdpSocket(net2.entity("ca"))
        client2.send(b"x", server2.address, size=1, extra_delay=10e-6)
        net2.env.run(until=1.0)
        assert times2["arrived"] == pytest.approx(baseline + 10e-6)


class TestPipeSocket:
    def test_pipe_rtt_is_ipc_cost(self):
        net = one_host_world()
        server = PipeSocket(net.entity("cb"), 5000)
        client = PipeSocket(net.entity("ca"))
        cost = CostModel()
        assert rtt(net, client, server) == pytest.approx(
            2 * cost.ipc_cost(64), rel=1e-6
        )

    def test_pipe_faster_than_loopback_udp(self):
        net = one_host_world()
        pipe_server = PipeSocket(net.entity("cb"), 5000)
        pipe_client = PipeSocket(net.entity("ca"))
        pipe_rtt = rtt(net, pipe_client, pipe_server)

        net2 = one_host_world()
        udp_server = UdpSocket(net2.entity("cb"), 5000)
        udp_client = UdpSocket(net2.entity("ca"))
        udp_rtt = rtt(net2, udp_client, udp_server)
        assert pipe_rtt < udp_rtt / 2

    def test_cross_host_pipe_rejected(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b")
        PipeSocket(net.hosts["b"], 5000)
        sock = PipeSocket(net.hosts["a"])
        with pytest.raises(TransportError):
            sock.send(b"x", Address("b", 5000), size=1)

    def test_unbound_pipe_destination_raises(self):
        net = one_host_world()
        sock = PipeSocket(net.entity("ca"))
        with pytest.raises(AddressError):
            sock.send(b"x", Address("cb", 9999), size=1)

    def test_pipe_records_hop(self):
        net = one_host_world()
        server = PipeSocket(net.entity("cb"), 5000)
        client = PipeSocket(net.entity("ca"))
        env = net.env
        got = {}

        def srv(env):
            dgram = yield server.recv()
            got["hops"] = dgram.hops

        env.process(srv(env))
        client.send(b"x", server.address, size=1)
        env.run(until=1.0)
        assert got["hops"] == ["pipe:box"]


class TestTcpLoopbackSocket:
    def test_handshake_then_data(self):
        net = one_host_world()
        server = TcpLoopbackSocket(net.entity("cb"), 5000, listening=True)
        client = TcpLoopbackSocket(net.entity("ca"))
        env = net.env
        result = {}

        def srv(env):
            dgram = yield server.recv()
            server.send(dgram.payload, dgram.src, size=dgram.size)

        def cli(env):
            yield from client.handshake(server.address)
            result["handshake_done"] = env.now
            start = env.now
            client.send(b"x" * 64, server.address, size=64)
            yield client.recv()
            result["rtt"] = env.now - start

        env.process(srv(env))
        env.process(cli(env))
        env.run(until=1.0)
        assert result["handshake_done"] > 0
        assert server.handshakes_answered == 1
        cost = CostModel()
        expected = 2 * (2 * cost.tcp_loopback_cost(64) + cost.loopback_latency)
        assert result["rtt"] == pytest.approx(expected, rel=1e-6)

    def test_syn_never_reaches_application(self):
        net = one_host_world()
        server = TcpLoopbackSocket(net.entity("cb"), 5000, listening=True)
        client = TcpLoopbackSocket(net.entity("ca"))
        env = net.env

        def cli(env):
            yield from client.handshake(server.address)

        env.process(cli(env))
        env.run(until=1.0)
        assert len(server.store) == 0

    def test_non_listening_socket_ignores_syn(self):
        net = one_host_world()
        server = TcpLoopbackSocket(net.entity("cb"), 5000, listening=False)
        client = TcpLoopbackSocket(net.entity("ca"))
        env = net.env

        def cli(env):
            client._send_raw(b"", server.address, 0, {"tcp_ctl": "syn"})
            yield env.timeout(1e-3)

        env.process(cli(env))
        env.run(until=1.0)
        assert server.handshakes_answered == 0

    def test_tcp_slower_than_udp(self):
        net = one_host_world()
        tcp_server = TcpLoopbackSocket(net.entity("cb"), 5000, listening=True)
        tcp_client = TcpLoopbackSocket(net.entity("ca"))
        tcp = rtt(net, tcp_client, tcp_server)

        net2 = one_host_world()
        udp_server = UdpSocket(net2.entity("cb"), 5000)
        udp_client = UdpSocket(net2.entity("ca"))
        udp = rtt(net2, udp_client, udp_server)
        assert tcp > udp
