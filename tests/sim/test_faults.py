"""Tests for the fault-injection layer: plans, counters, and chaos."""

import pytest

from repro.errors import AddressError
from repro.sim import (
    Address,
    ChaosController,
    Datagram,
    FaultPlan,
    Network,
    UdpSocket,
)
from repro.sim.faults import CORRUPT_HEADER, clone_datagram


def pair(latency=5e-6):
    """Two hosts joined by one link, with sockets and a receive log."""
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", latency=latency)
    tx = UdpSocket(net.hosts["a"], 100)
    rx = UdpSocket(net.hosts["b"], 200)
    received = []

    def sink(env):
        while True:
            dgram = yield rx.recv()
            received.append((env.now, dgram.payload))

    net.env.process(sink(net.env), name="sink")
    return net, tx, rx, received


def blast(net, tx, count, gap=50e-6, payload="m"):
    def source(env):
        for index in range(count):
            tx.send(f"{payload}{index}", Address("b", 200), size=64)
            yield env.timeout(gap)

    net.env.process(source(net.env), name="source")


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(reorder_max_delay=-1e-6)

    def test_is_benign(self):
        assert FaultPlan().is_benign
        assert not FaultPlan(drop_rate=0.01).is_benign

    def test_with_seed_copies_parameters(self):
        plan = FaultPlan(drop_rate=0.2, duplicate_rate=0.1, seed=3)
        copy = plan.with_seed(99)
        assert (copy.drop_rate, copy.duplicate_rate, copy.seed) == (0.2, 0.1, 99)
        assert copy.evaluated == 0

    def test_decision_stream_is_deterministic(self):
        def stream(seed):
            plan = FaultPlan(
                drop_rate=0.3, duplicate_rate=0.2, reorder_rate=0.2,
                corrupt_rate=0.1, seed=seed,
            )
            dgram = Datagram(
                src=Address("a", 1), dst=Address("b", 2), payload=b"", size=64
            )
            return [
                (d.drop, d.duplicate, d.corrupt, d.extra_delay)
                for d in (plan.decide(dgram) for _ in range(500))
            ]

        assert stream(7) == stream(7)
        assert stream(7) != stream(8)

    def test_clone_datagram_is_independent(self):
        dgram = Datagram(
            src=Address("a", 1), dst=Address("b", 2), payload=b"x",
            size=64, headers={"k": 1},
        )
        copy = clone_datagram(dgram)
        assert copy.uid != dgram.uid
        copy.headers["k"] = 2
        assert dgram.headers["k"] == 1


class TestFaultsOnTheWire:
    def test_certain_drop_loses_everything(self):
        net, tx, rx, received = pair()
        net.attach_faults("a", "b", FaultPlan(drop_rate=1.0, seed=1))
        blast(net, tx, 10)
        net.env.run(until=0.01)
        assert received == []
        assert net.dropped_by_fault == 10
        assert net.fault_drops == 10

    def test_corruption_dropped_by_nic_checksum(self):
        net, tx, rx, received = pair()
        net.attach_faults("a", "b", FaultPlan(corrupt_rate=1.0, seed=1))
        blast(net, tx, 10)
        net.env.run(until=0.01)
        assert received == []
        assert net.dropped_corrupt == 10
        assert net.dropped_by_fault == 0  # counters distinguish the cause

    def test_corrupt_header_never_reaches_the_application(self):
        net, tx, rx, received = pair()
        net.attach_faults("a", "b", FaultPlan(corrupt_rate=0.5, seed=2))
        blast(net, tx, 40)
        net.env.run(until=0.01)
        assert received  # some got through
        assert net.dropped_corrupt > 0
        assert len(received) + net.dropped_corrupt == 40

    def test_duplicates_arrive_twice(self):
        net, tx, rx, received = pair()
        net.attach_faults("a", "b", FaultPlan(duplicate_rate=1.0, seed=1))
        blast(net, tx, 10)
        net.env.run(until=0.01)
        assert len(received) == 20
        # Copies are real deliveries of the same payload, not re-sends.
        payloads = sorted(p for _, p in received)
        assert payloads == sorted([f"m{i}" for i in range(10)] * 2)

    def test_reordering_is_bounded(self):
        net, tx, rx, received = pair(latency=5e-6)
        plan = FaultPlan(reorder_rate=1.0, reorder_max_delay=200e-6, seed=1)
        net.attach_faults("a", "b", plan)
        blast(net, tx, 20, gap=10e-6)
        net.env.run(until=0.01)
        assert len(received) == 20  # reordering never loses anything
        assert plan.reordered == 20
        arrival_order = [p for _, p in received]
        assert arrival_order != [f"m{i}" for i in range(20)]

    def test_identical_seeds_identical_traces(self):
        def trace(seed):
            net, tx, rx, received = pair()
            net.attach_faults(
                "a", "b",
                FaultPlan(drop_rate=0.2, duplicate_rate=0.1,
                          reorder_rate=0.3, seed=seed),
            )
            blast(net, tx, 50)
            net.env.run(until=0.05)
            return received

        assert trace(5) == trace(5)
        assert trace(5) != trace(6)

    def test_attach_faults_everywhere_gives_each_link_its_own_stream(self):
        net = Network()
        for name in ("a", "b"):
            net.add_host(name)
        net.add_switch("sw")
        net.add_link("a", "sw", latency=5e-6)
        net.add_link("b", "sw", latency=5e-6)
        plans = net.attach_faults_everywhere(FaultPlan(drop_rate=0.5, seed=9))
        assert len(plans) == 2
        seeds = {plan.seed for plan in plans.values()}
        assert len(seeds) == 2  # derived, not shared


class TestChaosController:
    def test_link_down_blocks_and_up_restores(self):
        net, tx, rx, received = pair()
        chaos = ChaosController(net)
        chaos.set_link("a", "b", up=False)
        blast(net, tx, 5)
        net.env.run(until=0.001)
        assert received == [] and net.dropped_link_down == 5
        chaos.set_link("a", "b", up=True)
        blast(net, tx, 5)
        net.env.run(until=0.002)
        assert len(received) == 5

    def test_scheduled_action_fires_at_virtual_time(self):
        net, tx, rx, received = pair()
        chaos = ChaosController(net)
        chaos.set_link("a", "b", up=False, at=2e-4)
        blast(net, tx, 10, gap=50e-6)  # sends at 0, 50us, ... 450us
        net.env.run(until=0.01)
        assert len(received) == 4  # those sent before the cut
        assert [e.action for e in chaos.events] == ["set_link"]
        assert chaos.events[0].time == pytest.approx(2e-4)

    def test_cannot_schedule_in_the_past(self):
        net, *_ = pair()
        net.env.run(until=1e-3)
        chaos = ChaosController(net)
        with pytest.raises(ValueError):
            chaos.set_link("a", "b", up=False, at=1e-4)

    def test_flap_link_cycles(self):
        net, tx, rx, received = pair()
        chaos = ChaosController(net)
        chaos.flap_link("a", "b", down_for=1e-4, up_for=1e-4, cycles=2)
        blast(net, tx, 8, gap=50e-6)
        net.env.run(until=0.01)
        actions = [e.action for e in chaos.events]
        assert actions == ["link_down", "link_up", "link_down", "link_up"]
        assert 0 < len(received) < 8
        assert net.dropped_link_down == 8 - len(received)

    def test_host_crash_and_restart(self):
        net, tx, rx, received = pair()
        chaos = ChaosController(net)
        chaos.crash_host("b")
        blast(net, tx, 3)
        net.env.run(until=0.001)
        assert received == [] and net.dropped_host_down == 3
        chaos.restart_host("b")
        blast(net, tx, 3)
        net.env.run(until=0.002)
        assert len(received) == 3

    def test_crashed_host_cannot_send_either(self):
        net, tx, rx, received = pair()
        chaos = ChaosController(net)
        chaos.crash_host("a")
        blast(net, tx, 3)
        net.env.run(until=0.001)
        assert received == []
        assert net.dropped_host_down == 3

    def test_partition_blocks_cross_group_traffic(self):
        net, tx, rx, received = pair()
        chaos = ChaosController(net)
        chaos.partition(["a"], ["b"])
        blast(net, tx, 4)
        net.env.run(until=0.001)
        assert received == [] and net.dropped_partition == 4
        chaos.heal_partition()
        blast(net, tx, 4)
        net.env.run(until=0.002)
        assert len(received) == 4

    def test_partition_validates_nodes(self):
        net, *_ = pair()
        chaos = ChaosController(net)
        with pytest.raises(AddressError):
            chaos.partition(["a"], ["ghost"])

    def test_unknown_host_rejected(self):
        net, *_ = pair()
        chaos = ChaosController(net)
        with pytest.raises(AddressError):
            chaos.crash_host("ghost")
