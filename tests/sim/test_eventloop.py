"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEvent:
    def test_fresh_event_is_pending(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        assert not event.processed
        assert event.ok is None

    def test_succeed_sets_value(self):
        env = Environment()
        event = env.event()
        event.succeed(42)
        assert event.triggered
        env.run()
        assert event.processed
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self):
        env = Environment()
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callback_after_processed_runs_immediately(self):
        env = Environment()
        event = env.event()
        event.succeed("x")
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_unwaited_failure_surfaces(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            env.run()

    def test_succeed_with_delay(self):
        env = Environment()
        event = env.event()
        event.succeed("later", delay=3.5)
        env.run()
        assert env.now == 3.5


class TestTimeout:
    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(2.5)
        env.run()
        assert env.now == 2.5

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_carries_value(self):
        env = Environment()

        def proc(env):
            value = yield env.timeout(1, value="tick")
            return value

        p = env.process(proc(env))
        env.run()
        assert p.value == "tick"


class TestProcess:
    def test_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert p.value == "done"
        assert not p.is_alive

    def test_processes_interleave_in_time_order(self):
        env = Environment()
        order = []

        def proc(env, name, delay):
            yield env.timeout(delay)
            order.append((name, env.now))

        env.process(proc(env, "b", 2))
        env.process(proc(env, "a", 1))
        env.run()
        assert order == [("a", 1), ("b", 2)]

    def test_process_waits_on_process(self):
        env = Environment()

        def inner(env):
            yield env.timeout(3)
            return 7

        def outer(env):
            value = yield env.process(inner(env))
            return value * 2

        p = env.process(outer(env))
        env.run()
        assert p.value == 14
        assert env.now == 3

    def test_exception_propagates_to_waiter(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise ValueError("inner boom")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except ValueError as exc:
                return f"caught {exc}"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "caught inner boom"

    def test_uncaught_process_exception_raises_at_run(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise KeyError("unhandled")

        env.process(failing(env))
        with pytest.raises(KeyError):
            env.run()

    def test_yielding_non_event_is_an_error(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_interrupt_mid_wait(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def interrupter(env, target):
            yield env.timeout(5)
            target.interrupt("wake up")

        target = env.process(sleeper(env))
        env.process(interrupter(env, target))
        env.run()
        assert target.value == ("interrupted", "wake up", 5)

    def test_interrupt_finished_process_is_noop(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        p.interrupt("too late")  # must not raise
        assert not p.is_alive

    def test_interrupted_process_does_not_resume_twice(self):
        env = Environment()
        resumed = []

        def sleeper(env):
            try:
                yield env.timeout(10)
            except Interrupt:
                pass
            resumed.append(env.now)
            yield env.timeout(50)

        target = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(1)
            target.interrupt()

        env.process(interrupter(env))
        env.run()
        # Resumed exactly once (at the interrupt), not again at t=10.
        assert resumed == [1]


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(2, value="b")
            results = yield env.all_of([t1, t2])
            return sorted(results.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == ["a", "b"]
        assert env.now == 2

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, value="fast")
            t2 = env.timeout(10, value="slow")
            results = yield env.any_of([t1, t2])
            return list(results.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == ["fast"]

    def test_empty_all_of_succeeds_immediately(self):
        env = Environment()

        def proc(env):
            yield env.all_of([])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0

    def test_all_of_fails_on_sub_failure(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise RuntimeError("sub failed")

        def proc(env):
            try:
                yield env.all_of([env.process(failing(env)), env.timeout(5)])
            except RuntimeError:
                return "failed fast"

        p = env.process(proc(env))
        env.run()
        assert p.value == "failed fast"


class TestEnvironmentRun:
    def test_run_until_time_stops_early(self):
        env = Environment()
        fired = []
        env.timeout(1).add_callback(lambda e: fired.append(1))
        env.timeout(10).add_callback(lambda e: fired.append(10))
        env.run(until=5)
        assert fired == [1]
        assert env.now == 5

    def test_run_until_event_returns_its_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            return "answer"

        p = env.process(proc(env))
        assert env.run(until=p) == "answer"

    def test_run_until_untriggerable_event_deadlocks(self):
        env = Environment()
        orphan = env.event()
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=orphan)

    def test_same_time_events_fire_in_schedule_order(self):
        env = Environment()
        order = []
        for index in range(5):
            env.timeout(1).add_callback(
                lambda e, index=index: order.append(index)
            )
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_determinism_across_runs(self):
        def build():
            env = Environment()
            trace = []

            def proc(env, name, delays):
                for delay in delays:
                    yield env.timeout(delay)
                    trace.append((name, env.now))

            env.process(proc(env, "x", [1, 1, 1]))
            env.process(proc(env, "y", [0.5, 2]))
            env.run()
            return trace

        assert build() == build()

    def test_step_on_empty_heap_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_peek(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(4)
        assert env.peek() == 4
