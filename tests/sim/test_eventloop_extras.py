"""Additional event-loop semantics: clocks, naming, condition edge cases."""

import pytest

from repro.sim import Environment, SimulationError


class TestClockSemantics:
    def test_initial_time(self):
        env = Environment(initial_time=100.0)
        assert env.now == 100.0
        env.timeout(5)
        env.run()
        assert env.now == 105.0

    def test_run_until_time_advances_clock_even_without_events(self):
        env = Environment()
        env.run(until=7.5)
        assert env.now == 7.5

    def test_run_returns_none_when_draining(self):
        env = Environment()
        env.timeout(1)
        assert env.run() is None

    def test_zero_delay_timeout_fires_at_now(self):
        env = Environment()
        fired = []
        env.timeout(0).add_callback(lambda e: fired.append(env.now))
        env.run()
        assert fired == [0.0]


class TestProcessNaming:
    def test_explicit_name(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)

        p = env.process(proc(env), name="my-worker")
        assert p.name == "my-worker"
        env.run()

    def test_default_name_from_generator(self):
        env = Environment()

        def interesting_name(env):
            yield env.timeout(1)

        p = env.process(interesting_name(env))
        assert "process" in p.name or "interesting" in p.name
        env.run()

    def test_active_process_visible_during_resume(self):
        env = Environment()
        seen = []

        def proc(env):
            yield env.timeout(1)
            seen.append(env.active_process)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestConditionEdgeCases:
    def test_any_of_with_already_processed_event(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        env.run()

        def proc(env):
            result = yield env.any_of([done, env.timeout(100)])
            return list(result.values())

        p = env.process(proc(env))
        env.run(until=p)
        assert p.value == ["early"]
        assert env.now < 100

    def test_all_of_mixed_processed_and_pending(self):
        env = Environment()
        first = env.event()
        first.succeed(1)
        env.run()

        def proc(env):
            second = env.timeout(3, value=2)
            results = yield env.all_of([first, second])
            return sorted(results.values())

        p = env.process(proc(env))
        env.run(until=p)
        assert p.value == [1, 2]
        assert env.now == 3

    def test_cross_environment_events_rejected(self):
        env_a = Environment()
        env_b = Environment()
        with pytest.raises(SimulationError):
            env_a.all_of([env_b.timeout(1)])

    def test_cross_environment_yield_rejected(self):
        env_a = Environment()
        env_b = Environment()

        def proc(env):
            yield env_b.timeout(1)

        env_a.process(proc(env_a))
        with pytest.raises(SimulationError):
            env_a.run()
