"""Tests for percentiles, boxplot summaries, and time series."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    BoxplotSummary,
    LatencyRecorder,
    TimeSeries,
    format_table,
    percentile,
)


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_extremes(self):
        values = list(range(100))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 99

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1))
    def test_bounded_by_min_max(self, values):
        for p in (5, 50, 95):
            result = percentile(values, p)
            assert min(values) <= result <= max(values)


class TestBoxplotSummary:
    def test_ordering_invariant(self):
        summary = BoxplotSummary.from_values([5, 1, 9, 3, 7, 2, 8])
        assert (
            summary.p5 <= summary.p25 <= summary.p50 <= summary.p75 <= summary.p95
        )

    def test_count_and_mean(self):
        summary = BoxplotSummary.from_values([2, 4, 6])
        assert summary.count == 3
        assert summary.mean == pytest.approx(4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxplotSummary.from_values([])

    def test_scaled(self):
        summary = BoxplotSummary.from_values([1, 2, 3]).scaled(1e6)
        assert summary.p50 == pytest.approx(2e6)
        assert summary.count == 3

    def test_as_row(self):
        row = BoxplotSummary.from_values([1.0]).as_row()
        assert row["p50"] == 1.0
        assert row["n"] == 1

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=2))
    def test_five_numbers_monotone(self, values):
        summary = BoxplotSummary.from_values(values)
        quintet = [summary.p5, summary.p25, summary.p50, summary.p75, summary.p95]
        assert quintet == sorted(quintet)


class TestLatencyRecorder:
    def test_record_and_summarize(self):
        recorder = LatencyRecorder()
        for value in (1, 2, 3):
            recorder.record("a", value)
        assert recorder.count("a") == 3
        assert recorder.summary("a").p50 == 2

    def test_extend(self):
        recorder = LatencyRecorder()
        recorder.extend("x", [1, 2])
        assert recorder.values("x") == [1, 2]

    def test_labels_in_insertion_order(self):
        recorder = LatencyRecorder()
        recorder.record("z", 1)
        recorder.record("a", 1)
        assert recorder.labels() == ["z", "a"]

    def test_summaries_covers_all_labels(self):
        recorder = LatencyRecorder()
        recorder.record("a", 1)
        recorder.record("b", 2)
        assert set(recorder.summaries()) == {"a", "b"}


class TestTimeSeries:
    def test_binning(self):
        series = TimeSeries()
        for t in (0.1, 0.2, 1.1, 1.9, 3.5):
            series.record(t, t * 10)
        bins = series.bins(width=1.0)
        assert [b[0] for b in bins] == [0.1, 1.1, 3.1]
        assert bins[0][1].count == 2

    def test_empty_bins(self):
        assert TimeSeries().bins(1.0) == []

    def test_invalid_width(self):
        series = TimeSeries()
        series.record(0, 1)
        with pytest.raises(ValueError):
            series.bins(0)

    def test_split_at(self):
        series = TimeSeries()
        series.record(1, 10)
        series.record(2, 20)
        series.record(3, 30)
        before, after = series.split_at(2)
        assert before == [10]
        assert after == [20, 30]

    def test_len(self):
        series = TimeSeries()
        series.record(0, 0)
        assert len(series) == 1


class TestFormatTable:
    def test_renders_columns(self):
        text = format_table([{"a": 1, "b": 2.5}], columns=["a", "b"])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.50" in lines[2]

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_missing_cell_is_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text
