"""Tests for percentiles, boxplot summaries, and time series."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    BoxplotSummary,
    LatencyRecorder,
    TimeSeries,
    format_table,
    percentile,
)


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_extremes(self):
        values = list(range(100))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 99

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1))
    def test_bounded_by_min_max(self, values):
        for p in (5, 50, 95):
            result = percentile(values, p)
            assert min(values) <= result <= max(values)


class TestBoxplotSummary:
    def test_ordering_invariant(self):
        summary = BoxplotSummary.from_values([5, 1, 9, 3, 7, 2, 8])
        assert (
            summary.p5 <= summary.p25 <= summary.p50 <= summary.p75 <= summary.p95
        )

    def test_count_and_mean(self):
        summary = BoxplotSummary.from_values([2, 4, 6])
        assert summary.count == 3
        assert summary.mean == pytest.approx(4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxplotSummary.from_values([])

    def test_scaled(self):
        summary = BoxplotSummary.from_values([1, 2, 3]).scaled(1e6)
        assert summary.p50 == pytest.approx(2e6)
        assert summary.count == 3

    def test_scaled_multiplies_every_statistic_except_count(self):
        base = BoxplotSummary.from_values([5, 1, 9, 3, 7, 2, 8])
        scaled = base.scaled(1e-3)
        for field in ("p5", "p25", "p50", "p75", "p95", "mean"):
            assert getattr(scaled, field) == pytest.approx(
                getattr(base, field) * 1e-3
            ), field
        assert scaled.count == base.count

    def test_scaled_identity_and_roundtrip(self):
        base = BoxplotSummary.from_values([1.5, 2.5, 4.0])
        assert base.scaled(1.0) == base
        assert base.scaled(1e6).scaled(1e-6).p95 == pytest.approx(base.p95)

    def test_as_row(self):
        row = BoxplotSummary.from_values([1.0]).as_row()
        assert row["p50"] == 1.0
        assert row["n"] == 1

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=2))
    def test_five_numbers_monotone(self, values):
        summary = BoxplotSummary.from_values(values)
        quintet = [summary.p5, summary.p25, summary.p50, summary.p75, summary.p95]
        assert quintet == sorted(quintet)


class TestLatencyRecorder:
    def test_record_and_summarize(self):
        recorder = LatencyRecorder()
        for value in (1, 2, 3):
            recorder.record("a", value)
        assert recorder.count("a") == 3
        assert recorder.summary("a").p50 == 2

    def test_extend(self):
        recorder = LatencyRecorder()
        recorder.extend("x", [1, 2])
        assert recorder.values("x") == [1, 2]

    def test_labels_in_insertion_order(self):
        recorder = LatencyRecorder()
        recorder.record("z", 1)
        recorder.record("a", 1)
        assert recorder.labels() == ["z", "a"]

    def test_summaries_covers_all_labels(self):
        recorder = LatencyRecorder()
        recorder.record("a", 1)
        recorder.record("b", 2)
        assert set(recorder.summaries()) == {"a", "b"}


class TestLatencyRecorderUnknownLabel:
    def test_summary_raises_keyerror_naming_label(self):
        recorder = LatencyRecorder()
        recorder.record("warm", 1)
        recorder.record("cold", 2)
        with pytest.raises(KeyError, match=r"'ghost'.*cold, warm"):
            recorder.summary("ghost")

    def test_percentile_raises_keyerror_naming_label(self):
        recorder = LatencyRecorder()
        recorder.record("warm", 1)
        with pytest.raises(KeyError, match=r"'ghost'.*available labels: warm"):
            recorder.percentile("ghost", 50)

    def test_empty_recorder_says_none(self):
        with pytest.raises(KeyError, match="available labels: none"):
            LatencyRecorder().summary("anything")

    def test_known_empty_label_still_valueerror(self):
        # A label that exists but holds no samples is an empty-sample
        # problem, not a lookup problem.
        recorder = LatencyRecorder()
        recorder.extend("empty", [])
        with pytest.raises(ValueError, match="empty sample"):
            recorder.summary("empty")


class TestTimeSeries:
    def test_binning(self):
        series = TimeSeries()
        for t in (0.1, 0.2, 1.1, 1.9, 3.5):
            series.record(t, t * 10)
        bins = series.bins(width=1.0)
        assert [b[0] for b in bins] == [0.1, 1.1, 3.1]
        assert bins[0][1].count == 2

    def test_empty_bins(self):
        assert TimeSeries().bins(1.0) == []

    def test_invalid_width(self):
        series = TimeSeries()
        series.record(0, 1)
        with pytest.raises(ValueError):
            series.bins(0)

    def test_boundary_sample_lands_in_final_bin(self):
        """Fig-4 regression: a sample exactly on the explicit ``end`` must
        not open a spurious zero-width bin past the window (start=0,
        end=10, width=0.5 used to put t=10 into bin 20)."""
        series = TimeSeries()
        for t in (0.25, 5.0, 9.75, 10.0):
            series.record(t, 1.0)
        bins = series.bins(width=0.5, start=0.0, end=10.0)
        starts = [b[0] for b in bins]
        assert starts == [0.0, 5.0, 9.5]
        # The final bin absorbs both 9.75 and the boundary sample.
        assert bins[-1][1].count == 2
        assert max(starts) < 10.0

    def test_boundary_clamp_with_implicit_end(self):
        series = TimeSeries()
        for t in (0.0, 1.0, 2.0):
            series.record(t, t)
        bins = series.bins(width=1.0)
        assert [b[0] for b in bins] == [0.0, 1.0]
        assert bins[-1][1].count == 2

    def test_single_sample_at_start_keeps_bin_zero(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        bins = series.bins(width=0.5, start=0.0, end=10.0)
        assert [b[0] for b in bins] == [0.0]

    def test_partial_bins_skip_empty_windows(self):
        series = TimeSeries()
        series.record(0.1, 1.0)
        series.record(7.3, 2.0)
        bins = series.bins(width=1.0, start=0.0, end=10.0)
        assert [b[0] for b in bins] == [0.0, 7.0]

    def test_window_excluding_all_samples(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        assert series.bins(width=1.0, start=10.0, end=20.0) == []

    def test_split_at(self):
        series = TimeSeries()
        series.record(1, 10)
        series.record(2, 20)
        series.record(3, 30)
        before, after = series.split_at(2)
        assert before == [10]
        assert after == [20, 30]

    def test_split_at_boundary_sample_goes_after(self):
        # The boundary is half-open: strictly-before vs at-or-after, so a
        # sample exactly at the split time counts as "after" and no sample
        # is dropped or double-counted.
        series = TimeSeries()
        for t in (1.0, 2.0, 3.0):
            series.record(t, t)
        before, after = series.split_at(2.0)
        assert before == [1.0]
        assert after == [2.0, 3.0]
        assert len(before) + len(after) == len(series)

    def test_split_at_extremes(self):
        series = TimeSeries()
        series.record(1.0, 10.0)
        assert series.split_at(0.5) == ([], [10.0])
        assert series.split_at(1.5) == ([10.0], [])

    def test_len(self):
        series = TimeSeries()
        series.record(0, 0)
        assert len(series) == 1


class TestFormatTable:
    def test_renders_columns(self):
        text = format_table([{"a": 1, "b": 2.5}], columns=["a", "b"])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.50" in lines[2]

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_missing_cell_is_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text

    def test_mixed_int_float_column_renders_uniformly(self):
        # One float anywhere in a column float-formats the whole column:
        # no more `0` in one row next to `0.25` in the next.
        text = format_table(
            [{"drops": 0, "rate": 0}, {"drops": 3, "rate": 0.25}],
            columns=["drops", "rate"],
        )
        rows = text.splitlines()[2:]
        assert "0.00" in rows[0] and "0.25" in rows[1]
        # The all-int column stays integer-formatted.
        assert "3.00" not in rows[1]

    def test_union_of_row_keys_when_columns_omitted(self):
        # Keys missing from the first row must still become columns, in
        # first-appearance order, rendered blank where absent.
        text = format_table(
            [{"a": 1}, {"a": 2, "b": 9}, {"c": 3, "a": 4}]
        )
        header = text.splitlines()[0].split()
        assert header == ["a", "b", "c"]
        assert "9" in text and "3" in text

    def test_explicit_columns_unchanged_by_union(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        header = text.splitlines()[0].split()
        assert header == ["b"]

    def test_bools_render_as_text_not_numbers(self):
        text = format_table(
            [{"ok": True, "ratio": 0.5}, {"ok": False, "ratio": 1.0}],
            columns=["ok", "ratio"],
        )
        assert "True" in text and "False" in text
        assert "1.00" in text
