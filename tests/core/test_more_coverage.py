"""Additional behaviour coverage: runtime conveniences, multicast stats,
workload defaults, experiment result rendering, negotiation edge cases."""

import pytest

from repro.chunnels import (
    McastSequencerFallback,
    Reliable,
    ReliableFallback,
    Serialize,
    SerializeFallback,
)
from repro.core import (
    ChunnelDag,
    ImplMeta,
    Offer,
    PolicyContext,
    ResourceVector,
    Runtime,
    Scope,
    feasible_offers,
    wrap,
)
from repro.core.scope import Endpoints, Placement
from repro.sim import Address

from ..conftest import run


class TestRuntimeConveniences:
    def test_new_accepts_a_bare_spec(self, two_hosts):
        runtime = two_hosts.runtime("cl")
        endpoint = runtime.new("e", Reliable())  # no wrap() needed
        assert endpoint.dag.chunnel_types() == ["reliable"]

    def test_new_accepts_none(self, two_hosts):
        runtime = two_hosts.runtime("cl")
        assert runtime.new("e").dag.is_empty

    def test_runtime_without_discovery_uses_null_client(self):
        from repro.discovery import NullDiscoveryClient
        from repro.sim import Network

        net = Network()
        host = net.add_host("solo")
        runtime = Runtime(host)
        assert isinstance(runtime.discovery, NullDiscoveryClient)

    def test_bad_discovery_argument_rejected(self):
        from repro.sim import Network

        net = Network()
        host = net.add_host("solo")
        with pytest.raises(TypeError):
            Runtime(host, discovery=12345)

    def test_connect_without_discovery_service(self, two_hosts):
        """Two processes with only local fallbacks and no discovery
        infrastructure can still negotiate (NullDiscoveryClient)."""
        server_rt = two_hosts.runtime("srv", discovery=None)
        client_rt = two_hosts.runtime("cl", discovery=None)
        for rt in (server_rt, client_rt):
            rt.register_chunnel(ReliableFallback)
        listener = server_rt.new("s", wrap(Reliable())).listen(port=7000)

        def serve(env):
            conn = yield listener.accept()
            msg = yield conn.recv()
            conn.send(msg.payload, size=msg.size, dst=msg.src)

        two_hosts.env.process(serve(two_hosts.env))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.send(b"no-infra", size=8)
            reply = yield conn.recv()
            return reply.payload

        assert run(two_hosts.env, client(two_hosts.env)) == b"no-infra"


class TestMulticastInternals:
    def test_group_sequencer_counts_and_stops(self):
        from repro.chunnels import GroupSequencer
        from repro.sim import Network, UdpSocket

        net = Network()
        host = net.add_host("seq-host")
        other = net.add_host("member")
        net.add_link("seq-host", "member", latency=5e-6)
        sequencer = GroupSequencer(host, "g")
        member_sock = UdpSocket(other, 7000)
        sender = UdpSocket(host)

        def scenario(env):
            sender.send(
                b"op",
                sequencer.address,
                size=16,
                headers={
                    "mcast_group": "g",
                    "mcast_members": [["member", 7000]],
                },
            )
            dgram = yield member_sock.recv()
            return dgram.headers["mcast_seq"], dgram.headers["mcast_origin"]

        seq, origin = run(net.env, scenario(net.env))
        assert seq == 1
        assert origin == [sender.address.host, sender.address.port]
        assert sequencer.messages_sequenced == 1
        sequencer.stop()  # must not raise; socket released

    def test_sequencer_service_name_is_stable(self):
        from repro.chunnels import sequencer_service_name

        assert sequencer_service_name("g1") == "_mcastseq.g1"

    def test_two_groups_are_isolated(self):
        """Two RSM groups on overlapping hosts keep separate sequence
        spaces and separate sequencers."""
        from repro.apps import RsmClient, RsmReplica
        from repro.discovery import DiscoveryService
        from repro.sim import Network

        net = Network()
        members = ["ra", "rb"]
        for name in members:
            net.add_host(name)
        net.add_host("cli")
        dsc = net.add_host("dsc")
        net.add_switch("tor")
        for name in members + ["cli", "dsc"]:
            net.add_link(name, "tor", latency=5e-6)
        discovery = DiscoveryService(dsc)
        replicas = {}
        for group, port in (("g1", 7301), ("g2", 7302)):
            replicas[group] = []
            for name in members:
                runtime = Runtime(net.hosts[name], discovery=discovery.address)
                runtime.register_chunnel(SerializeFallback)
                runtime.register_chunnel(McastSequencerFallback)
                replicas[group].append(
                    RsmReplica(runtime, port=port, group=group, members=members)
                )
        results = {}

        def client(env, group):
            yield env.timeout(1e-3)
            runtime = Runtime(net.hosts["cli"], discovery=discovery.address)
            runtime.register_chunnel(SerializeFallback)
            runtime.register_chunnel(McastSequencerFallback)
            rsm = RsmClient(runtime, group=group, name=f"c-{group}")
            yield from rsm.connect([r.address for r in replicas[group]])
            for index in range(3):
                yield from rsm.submit({"op": "put", "key": group, "value": index})
            results[group] = [r.state for r in replicas[group]]

        net.env.process(client(net.env, "g1"))
        net.env.process(client(net.env, "g2"))
        net.env.run(until=1.0)
        assert results["g1"] == [{"g1": 2}, {"g1": 2}]
        assert results["g2"] == [{"g2": 2}, {"g2": 2}]
        seq_names = [
            r.name for r in net.names.resolve("_mcastseq.g1")
        ] + [r.name for r in net.names.resolve("_mcastseq.g2")]
        assert len(seq_names) == 2  # one sequencer per group


class TestWorkloadDefaults:
    def test_default_distributions_follow_ycsb(self):
        from repro.workloads import WorkloadSpec

        assert WorkloadSpec(workload="A").distribution == "zipfian"
        assert WorkloadSpec(workload="D").distribution == "latest"

    def test_lowercase_workload_names_accepted(self):
        from repro.workloads import WorkloadSpec

        assert WorkloadSpec(workload="b").workload == "B"

    def test_workload_f_emits_rmw(self):
        from repro.workloads import WorkloadSpec, YcsbWorkload

        spec = WorkloadSpec(workload="F", record_count=20, operation_count=400)
        ops = list(YcsbWorkload(spec).operations())
        assert any(op["op"] == "rmw" for op in ops)
        rmws = [op for op in ops if op["op"] == "rmw"]
        assert all(op["value"] for op in rmws)


class TestResultRendering:
    def test_fig3_rows_have_expected_columns(self):
        from repro.experiments import Fig3Config, run_fig3

        result = run_fig3(Fig3Config(connections=5, sizes=[64]))
        rows = result.rows()
        assert rows
        assert {"system", "size", "p50", "setup_p50"} <= set(rows[0])

    def test_fig4_render_mentions_transports(self):
        from repro.experiments import Fig4Config, run_fig4

        result = run_fig4(Fig4Config(duration=2.0, connect_interval=0.5,
                                     local_start_time=1.0))
        text = result.render()
        assert "transport" in text


class TestNegotiationEdgeCases:
    def test_both_endpoints_network_device_requires_same_host(self):
        """An endpoints-BOTH network offload can only serve a connection
        whose two ends share the device's host."""
        spec = Reliable()
        device_offer = Offer(
            meta=ImplMeta(
                chunnel_type="reliable",
                name="host-engine",
                scope=Scope.HOST,
                endpoints=Endpoints.BOTH,
                placement=Placement.SMARTNIC,
                resources=ResourceVector(),
            ),
            origin="network",
            location="box",
        )
        same_host = PolicyContext(
            client_entity="ca",
            server_entity="cb",
            client_host="box",
            server_host="box",
            same_host=True,
        )
        cross_host = PolicyContext(
            client_entity="cl",
            server_entity="srv",
            client_host="cl",
            server_host="srv",
            same_host=False,
        )
        assert feasible_offers(spec, [device_offer], same_host)
        assert not feasible_offers(spec, [device_offer], cross_host)

    def test_unify_two_empty_dags(self):
        unified = ChunnelDag.unify(ChunnelDag.empty(), ChunnelDag.empty())
        assert unified.is_empty
