"""Tests for Connection behaviour: peers, routing, lifecycle, stats."""

import pytest

from repro.chunnels import Serialize, SerializeFallback
from repro.core import Runtime, wrap
from repro.errors import ConnectionClosedError, TransportError
from repro.sim import Address

from ..conftest import run


def listener_with_accept_log(world, runtime, dag=None, port=7000):
    listener = runtime.new("srv", dag).listen(port=port)
    return listener


class TestConnectionBasics:
    def test_stats_count_messages(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = listener_with_accept_log(two_hosts, server_rt)

        def scenario(env):
            accept = listener.accept()
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            server_conn = yield accept
            for _ in range(3):
                conn.send(b"x", size=1)
            for _ in range(3):
                yield server_conn.recv()
            return conn.messages_sent, server_conn.messages_received

        sent, received = run(two_hosts.env, scenario(two_hosts.env))
        assert sent == 3
        assert received == 3

    def test_server_connection_has_no_default_peer(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = listener_with_accept_log(two_hosts, server_rt)

        def scenario(env):
            accept = listener.accept()
            yield env.timeout(1e-4)
            yield from client_rt.new("c").connect(Address("srv", 7000))
            server_conn = yield accept
            assert server_conn.peer is None
            with pytest.raises(TransportError):
                server_conn.send(b"no destination", size=2)
            return True

        assert run(two_hosts.env, scenario(two_hosts.env))

    def test_explicit_dst_overrides_peer(self, two_hosts):
        """A client can address a specific endpoint (e.g. replying to a
        third party) even on a connected socket."""
        from repro.sim import UdpSocket

        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = listener_with_accept_log(two_hosts, server_rt)
        bystander = UdpSocket(two_hosts.net.hosts["srv"], 7777)

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.send(b"aside", size=5, dst=Address("srv", 7777))
            dgram = yield bystander.recv()
            return dgram.payload

        assert run(two_hosts.env, scenario(two_hosts.env)) == b"aside"

    def test_try_recv(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = listener_with_accept_log(two_hosts, server_rt)

        def scenario(env):
            accept = listener.accept()
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            server_conn = yield accept
            empty = server_conn.try_recv()
            conn.send(b"now", size=3)
            yield env.timeout(1e-3)
            full = server_conn.try_recv()
            return empty, full[0], full[1].payload

        empty, ok, payload = run(two_hosts.env, scenario(two_hosts.env))
        assert empty == (False, None)
        assert ok and payload == b"now"

    def test_received_message_carries_source(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = listener_with_accept_log(two_hosts, server_rt)

        def scenario(env):
            accept = listener.accept()
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            server_conn = yield accept
            conn.send(b"whoami", size=6)
            msg = yield server_conn.recv()
            return msg.src, conn.local_address

        src, client_addr = run(two_hosts.env, scenario(two_hosts.env))
        assert src == client_addr

    def test_close_is_idempotent(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener_with_accept_log(two_hosts, server_rt)

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.close()
            conn.close()  # second close must be a no-op
            with pytest.raises(ConnectionClosedError):
                conn.recv()
            return True

        assert run(two_hosts.env, scenario(two_hosts.env))

    def test_headers_travel_with_messages(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = listener_with_accept_log(two_hosts, server_rt)

        def scenario(env):
            accept = listener.accept()
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            server_conn = yield accept
            conn.send(b"tagged", size=6, headers={"rpc_id": 42})
            msg = yield server_conn.recv()
            return msg.headers.get("rpc_id")

        assert run(two_hosts.env, scenario(two_hosts.env)) == 42

    def test_object_interface_with_serialize(self, two_hosts):
        """§3.2: 'applications send and receive objects rather than
        bytes' once a serialization Chunnel is in the DAG."""
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(SerializeFallback)
        listener = listener_with_accept_log(
            two_hosts, server_rt, dag=wrap(Serialize())
        )

        def scenario(env):
            accept = listener.accept()
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            server_conn = yield accept
            conn.send({"op": "get", "nested": [1, {"a": b"\x01"}]})
            msg = yield server_conn.recv()
            return msg.payload

        payload = run(two_hosts.env, scenario(two_hosts.env))
        assert payload == {"op": "get", "nested": [1, {"a": b"\x01"}]}
