"""Mid-connection failover (PROTOCOL.md §9): liveness, migration, parking.

These tests pin the tentpole's correctness bar end to end on small worlds:

* a crashed serving host is *suspected* (adaptive heartbeat timeout), its
  cached negotiation results are evicted, and the connection migrates to
  a standby with the reliability chunnel's unacked window replayed —
  every in-flight and buffered message delivered exactly once, in order;
* with no standby the connection parks degraded and resumes in place
  when the host comes back, again without loss or duplication;
* at 20% link loss with *no* crashes the suspicion logic never fires —
  steady inbound traffic and the Jacobson-style retransmission timeout
  keep false positives at zero;
* the unacked-window adoption that a changed reliability node performs
  during migration advances the sequence counter past the inherited
  window (a reused sequence number would be swallowed by the receiver's
  dedup).
"""

import itertools
import warnings

import pytest

from repro.chunnels import Reliable, ReliableFallback, Serialize, SerializeFallback
from repro.chunnels.reliability import _ReliableStage
from repro.core import Runtime
from repro.core.dag import wrap
from repro.core.failover import FailoverConfig
from repro.core.negcache import NegotiationCache
from repro.errors import (
    ConnectionTimeoutError,
    DeadlineExceeded,
    DegradedEstablishmentWarning,
)
from repro.experiments._plane import DiscoveryPlane
from repro.sim import ChaosController, FaultPlan, Network

#: Liveness tuning sized to the test worlds' ~20us RTT: single-digit-ms
#: crash detection, parked probes every millisecond.
LIVENESS = FailoverConfig(
    heartbeat_interval=250e-6,
    miss_threshold=5,
    min_rto=250e-6,
    max_rto=1.5e-3,
    migrate_timeout=1e-3,
    migrate_retries=8,
    connect_timeout=2e-3,
    connect_retries=8,
    migration_deadline=15e-3,
    park_retry_interval=1e-3,
)


def dag():
    # The retransmit budget must span the longest blackout a test stages
    # (suspicion + migration, or a parked outage) so the reliability
    # stage never abandons a message mid-failover.
    return wrap(Serialize() >> Reliable(timeout=400e-6, max_retries=200))


class RecordingServer:
    """An echo server that records every request id it delivers, in
    arrival order — the tests' exactly-once / in-order ground truth."""

    def __init__(self, runtime, port=7400):
        self.runtime = runtime
        self.endpoint = runtime.new("flow", dag())
        self.listener = self.endpoint.listen(port=port, service_name="flow")
        self.arrived: list[bytes] = []
        self.seen: dict[bytes, int] = {}
        runtime.env.process(
            self._accept(), name=f"{runtime.entity.name}.accept"
        )

    def _accept(self):
        while True:
            conn = yield self.listener.accept()
            self.runtime.env.process(
                self._serve(conn), name=f"{self.runtime.entity.name}.serve"
            )

    def _serve(self, conn):
        while not conn.closed:
            msg = yield conn.recv()
            key = bytes(msg.payload)
            self.arrived.append(key)
            self.seen[key] = self.seen.get(key, 0) + 1
            conn.send(msg.payload, size=msg.size, dst=msg.src)


def build_world(servers=2, loss=0.0, seed=7, liveness=LIVENESS):
    """``servers`` recording echo servers named "flow" plus one failover-
    enabled client runtime; returns (net, [servers], client_rt)."""
    net = Network()
    for index in range(servers):
        net.add_host(f"srv{index}")
    net.add_host("cl")
    plane = DiscoveryPlane(1, 1)
    plane.add_hosts(net)
    net.add_switch("tor")
    for index in range(servers):
        net.add_link(f"srv{index}", "tor", latency=5e-6)
    net.add_link("cl", "tor", latency=5e-6)
    plane.add_links(net, "tor", 5e-6)
    if loss:
        net.attach_faults_everywhere(FaultPlan(drop_rate=loss, seed=seed))
    plane.build(net)

    def _runtime(host, **kwargs):
        runtime = Runtime(
            host,
            discovery=plane.client(host),
            negotiation_cache_size=8,
            **kwargs,
        )
        runtime.register_chunnel(SerializeFallback)
        runtime.register_chunnel(ReliableFallback)
        return runtime

    recorders = [
        RecordingServer(_runtime(net.hosts[f"srv{index}"]))
        for index in range(servers)
    ]
    client_rt = _runtime(net.hosts["cl"], failover=liveness)
    return net, recorders, client_rt


def union_counts(recorders):
    union: set = set()
    duplicates = 0
    for recorder in recorders:
        union |= set(recorder.seen)
        duplicates += sum(count - 1 for count in recorder.seen.values())
    return union, duplicates


def drive(net, generator, until):
    done = {}

    def _main():
        done["value"] = yield from generator

    net.env.process(_main(), name="test.main")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstablishmentWarning)
        net.env.run(until=until)
    assert "value" in done, "driver did not finish"
    return done["value"]


class TestMigration:
    def test_crash_migrates_with_exactly_once_in_order_delivery(self):
        net, recorders, client_rt = build_world(servers=2)
        env = net.env
        chaos = ChaosController(net, seed=7)
        sent: list[bytes] = []

        def driver():
            yield env.timeout(1e-3)
            endpoint = client_rt.new("mig", dag())
            conn = yield from endpoint.connect("flow", deadline=10e-3)
            # Steady sends straddle the crash: some land pre-crash, some
            # sit unacked in the window, some buffer during the paused
            # migration — all must come out exactly once, in order.
            for index in range(120):
                payload = f"id-{index:04d}".encode()
                sent.append(payload)
                conn.send(payload, size=64)
                yield env.timeout(200e-6)
            return conn

        chaos.crash_host("srv0", at=5e-3)
        conn = drive(net, driver(), until=80e-3)

        union, duplicates = union_counts(recorders)
        assert union == set(sent)
        assert duplicates == 0
        assert conn.migrations == 1
        assert client_rt.failover.migrations_total == 1
        assert client_rt.failover.suspicions_total >= 1
        assert not conn.parked
        assert conn.blackout > 0
        # The standby saw the client's ids in send order: replayed window
        # first, then the sends buffered while the migration was paused.
        standby_ids = [p for p in recorders[1].arrived if p in set(sent)]
        assert standby_ids == sorted(standby_ids)
        # The crash evicted the primary's cached negotiation entries.
        assert "srv0" in client_rt.failover._states[conn.conn_id].suspected

    def test_suspicion_evicts_negcache_by_instance_tag(self):
        cache = NegotiationCache(8)
        cache.store(
            "a", {"x": 1}, tags=(NegotiationCache.instance_tag("srv0"),)
        )
        cache.store(
            "b", {"x": 2}, tags=(NegotiationCache.instance_tag("srv0"),)
        )
        cache.store(
            "c", {"x": 3}, tags=(NegotiationCache.instance_tag("srv1"),)
        )
        assert NegotiationCache.instance_tag("srv0") == "instance:srv0"
        assert cache.suspect_instance("srv0") == 2
        assert "a" not in cache and "b" not in cache
        assert "c" in cache
        assert cache.suspect_instance("srv0") == 0


class TestParking:
    def test_total_outage_parks_then_resumes_without_loss(self):
        net, recorders, client_rt = build_world(servers=1)
        env = net.env
        chaos = ChaosController(net, seed=7)
        sent: list[bytes] = []
        observed = {}

        def driver():
            yield env.timeout(1e-3)
            endpoint = client_rt.new("park", dag())
            conn = yield from endpoint.connect("flow", deadline=10e-3)
            for index in range(150):
                payload = f"park-{index:04d}".encode()
                sent.append(payload)
                conn.send(payload, size=64)
                if index == 80:
                    # Mid-outage: the connection must be parked degraded,
                    # buffering sends rather than failing them.
                    observed["parked_mid_outage"] = conn.parked
                yield env.timeout(200e-6)
            return conn

        # No standby exists, so the crash parks the connection; the
        # restart resumes it in place (sockets survive: the sim models a
        # process supervisor, not a reboot).
        chaos.host_outage("srv0", at=5e-3, duration=15e-3)
        conn = drive(net, driver(), until=100e-3)

        union, duplicates = union_counts(recorders)
        assert union == set(sent)
        assert duplicates == 0
        assert observed["parked_mid_outage"]
        assert not conn.parked
        assert conn.migrations == 0
        assert client_rt.failover.parked_total == 1
        assert client_rt.failover.resumed_total == 1
        assert conn.blackout > 0


class TestFalsePositives:
    def test_no_suspicion_at_twenty_percent_loss_without_crashes(self):
        # The library-default liveness tuning is the one that carries the
        # no-false-positives claim: eight *consecutive* silent probe
        # windows are vanishingly unlikely from 20% loss alone.
        net, recorders, client_rt = build_world(
            servers=1, loss=0.2, seed=7, liveness=FailoverConfig()
        )
        env = net.env

        def driver():
            yield env.timeout(1e-3)
            endpoint = client_rt.new("lossy", dag())
            conn = yield from endpoint.connect("flow")
            # Sparse traffic: long idle gaps force the heartbeat prober
            # to carry liveness, with 20% of probes and acks eaten.
            for index in range(10):
                conn.send(f"lossy-{index}".encode(), size=64)
                yield env.timeout(4e-3)
            return conn

        conn = drive(net, driver(), until=200e-3)
        manager = client_rt.failover
        assert manager.heartbeats_sent > 0
        assert manager.suspicions_total == 0
        assert manager.migrations_total == 0
        assert manager.parked_total == 0
        assert conn.migrations == 0 and not conn.parked


class TestWindowAdoption:
    class _Msg:
        def __init__(self, tag):
            self.tag = tag

        def copy(self):
            return TestWindowAdoption._Msg(self.tag)

    def _bare_stage(self, seq_start=1):
        stage = object.__new__(_ReliableStage)
        stage._unacked = {}
        stage._seq = itertools.count(seq_start)
        return stage

    def test_adopts_frozen_window_and_advances_sequence(self):
        stage = self._bare_stage()
        frozen = {5: self._Msg("a"), 9: self._Msg("b")}
        stage.adopt_window(frozen)
        assert sorted(stage._unacked) == [5, 9]
        # The next fresh sequence number must clear the inherited window:
        # reusing 1..9 would collide with replayed numbers in the
        # receiver's dedup set and silently swallow a new message.
        assert next(stage._seq) == 10

    def test_existing_entries_win_and_sequence_never_regresses(self):
        stage = self._bare_stage(seq_start=20)
        own = self._Msg("mine")
        stage._unacked[3] = own
        stage.adopt_window({3: self._Msg("theirs"), 4: self._Msg("x")})
        assert stage._unacked[3] is own
        assert next(stage._seq) == 20

    def test_empty_frozen_window_is_a_no_op(self):
        stage = self._bare_stage(seq_start=4)
        stage.adopt_window({})
        assert stage._unacked == {}
        assert next(stage._seq) == 4


class TestConnectDeadline:
    def test_budgeted_connect_succeeds_on_a_healthy_plane(self):
        net, recorders, client_rt = build_world(servers=1)
        env = net.env

        def driver():
            yield env.timeout(1e-3)
            endpoint = client_rt.new("budgeted-ok", dag())
            start = env.now
            conn = yield from endpoint.connect("flow", deadline=5e-3)
            return conn, env.now - start

        conn, elapsed = drive(net, driver(), until=60e-3)
        assert not conn.degraded
        assert elapsed < 5e-3

    def test_connect_deadline_bounds_total_outage_failure(self):
        net, recorders, client_rt = build_world(servers=1)
        env = net.env

        def driver():
            yield env.timeout(1e-3)
            address = recorders[0].listener.address
            # Everything is down: discovery *and* the server.  Without a
            # deadline the connect would walk the full query retry
            # ladder and then the full negotiation ladder; with one, the
            # nested loops share a single elapsed-time budget and the
            # connect fails inside it.
            net.hosts["dsc"].down = True
            net.hosts["srv0"].down = True
            start = env.now
            endpoint = client_rt.new("budgeted", dag())
            with pytest.raises(DeadlineExceeded) as excinfo:
                yield from endpoint.connect(address, deadline=4e-3)
            return excinfo.value, env.now - start

        error, elapsed = drive(net, driver(), until=60e-3)
        # The budget bounds the whole attempt: one clamped final wait of
        # slack at most, not a second retry ladder.
        assert elapsed < 6e-3
        assert error.elapsed >= 0.0
        assert error.attempts >= 0
        assert isinstance(error, ConnectionTimeoutError)
