"""Coverage for remaining behaviours: placement policy, server-side
discovery TTL, balancing strategies, codec interop, series windows."""

import pytest

from repro.chunnels import (
    SerializeAccelerated,
    SerializeFallback,
    Serialize,
    ShardXdp,
)
from repro.core import (
    ImplMeta,
    Offer,
    PolicyContext,
    PreferPlacementPolicy,
    ResourceVector,
    Runtime,
    Scope,
    wrap,
)
from repro.core.scope import Endpoints, Placement
from repro.sim import Address

from ..conftest import run


def offer(name, placement, priority=10, origin="network", location="srv"):
    return Offer(
        meta=ImplMeta(
            chunnel_type="shard",
            name=name,
            priority=priority,
            scope=Scope.GLOBAL,
            endpoints=Endpoints.ANY,
            placement=placement,
            resources=ResourceVector(),
        ),
        origin=origin,
        location=location,
    )


def ctx():
    return PolicyContext(
        client_entity="cl",
        server_entity="srv",
        client_host="cl",
        server_host="srv",
        same_host=False,
        path_switches=["tor"],
    )


class TestPreferPlacementPolicy:
    def test_placement_order_respected(self):
        from repro.chunnels import Shard

        offers = [
            offer("sw", Placement.HOST_SOFTWARE, priority=99),
            offer("nic", Placement.SMARTNIC, priority=10),
            offer("p4", Placement.SWITCH, priority=10),
        ]
        spec = Shard(choices=[Address("w", 1)])
        ranked = PreferPlacementPolicy().rank(spec, offers, ctx())
        assert [o.meta.name for o in ranked] == ["p4", "nic", "sw"]

    def test_custom_order(self):
        from repro.chunnels import Shard

        offers = [
            offer("nic", Placement.SMARTNIC),
            offer("p4", Placement.SWITCH),
        ]
        policy = PreferPlacementPolicy(order=["smartnic", "switch"])
        ranked = policy.rank(Shard(choices=[Address("w", 1)]), offers, ctx())
        assert ranked[0].meta.name == "nic"

    def test_unlisted_placements_rank_last(self):
        from repro.chunnels import Shard

        offers = [
            offer("sw", Placement.HOST_SOFTWARE, priority=99),
            offer("nic", Placement.SMARTNIC, priority=1),
        ]
        policy = PreferPlacementPolicy(order=["smartnic"])
        ranked = policy.rank(Shard(choices=[Address("w", 1)]), offers, ctx())
        assert ranked[0].meta.name == "nic"


class TestServerDiscoveryTtl:
    """The listener's network-offer cache and its refresh knob."""

    def setup_world(self, world, ttl):
        server_rt = world.runtime("srv", discovery_ttl=ttl)
        client_rt = world.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(SerializeFallback)
        from repro.core import PriorityFirstPolicy

        server_rt.policy = PriorityFirstPolicy()
        listener = server_rt.new("svc", wrap(Serialize())).listen(port=7000)

        def serve(env):
            while True:
                conn = yield listener.accept()

        world.env.process(serve(world.env))
        return client_rt

    def impl_chosen(self, world, client_rt, delay):
        def scenario(env):
            yield env.timeout(delay)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            node = conn.dag.find("serialize")[0]
            return type(conn.impls[node]).__name__

        return run(world.env, scenario(world.env), until=delay + 1.0)

    def test_stale_cache_misses_new_registration(self, two_hosts_smartnic):
        world = two_hosts_smartnic
        client_rt = self.setup_world(world, ttl=None)  # never refresh
        world.env.run(until=1e-3)  # listener performs its initial query
        world.discovery.register(SerializeAccelerated.meta, location="srv")
        # Client also has no registration of the accelerated impl; the
        # listener's cache predates it and never refreshes.
        # (The client's own discovery query DOES see it, so strip it from
        # the client path by not registering client-side anything extra.)
        impl = self.impl_chosen(world, client_rt, delay=0.5)
        # The client's per-connect query surfaces the record anyway — the
        # server merges client-provided network offers.  So the new
        # registration is picked up through the *client's* freshness.
        assert impl == "SerializeAccelerated"

    def test_ttl_refresh_discovers_new_registration_server_side(
        self, two_hosts_smartnic
    ):
        world = two_hosts_smartnic
        client_rt = self.setup_world(world, ttl=0.1)
        world.env.run(until=1e-3)
        world.discovery.register(SerializeAccelerated.meta, location="srv")
        impl = self.impl_chosen(world, client_rt, delay=0.5)
        assert impl == "SerializeAccelerated"


class TestLoadBalanceHashSource:
    def test_source_affinity(self):
        from repro.chunnels.loadbalance import LoadBalance, _BalanceState

        backends = [Address("srv", 1), Address("srv", 2), Address("srv", 3)]
        state = _BalanceState(LoadBalance(backends=backends, strategy="hash_source"))
        a = Address("client-a", 40000)
        b = Address("client-b", 40000)
        assert state.pick(a) == state.pick(a)  # sticky per source
        assert state.pick(a)[1] is True  # the hash actually applied
        assert state.pick(None)[1] is False  # unknown source: round-robin
        picks = {state.pick(addr)[0].port for addr in (a, b)}
        assert picks  # well-defined; may or may not collide

    def test_round_robin_cycles(self):
        from repro.chunnels.loadbalance import LoadBalance, _BalanceState

        backends = [Address("srv", 1), Address("srv", 2)]
        state = _BalanceState(LoadBalance(backends=backends))
        ports = [state.pick(None)[0].port for _ in range(4)]
        assert ports == [1, 2, 1, 2]


class TestCodecImplInterop:
    def test_sw_and_fpga_share_the_wire_format(self):
        """Negotiation may bind different serializer implementations at the
        two ends (endpoints: ANY); they must interoperate."""
        from repro.chunnels.serialize import _SerializeStage
        from repro.core.chunnel import Role

        sw = SerializeFallback(Serialize())
        fpga = SerializeAccelerated(Serialize())
        sender = sw.make_stage(Role.CLIENT)
        receiver = fpga.make_stage(Role.SERVER)

        class Stackish:
            def charge(self, s):
                pass

        for stage in (sender, receiver):
            stage._stack = Stackish()
            stage._index = 0
        from repro.core import Message

        [wire] = sender.on_send(Message(payload={"cross": ["impl", 1]}))
        [decoded] = receiver.on_recv(wire)
        assert decoded.payload == {"cross": ["impl", 1]}


class TestTimeSeriesWindows:
    def test_bins_with_explicit_bounds(self):
        from repro.metrics import TimeSeries

        series = TimeSeries()
        for t in (0.5, 1.5, 2.5, 3.5):
            series.record(t, t)
        bins = series.bins(width=1.0, start=1.0, end=3.0)
        assert [b[0] for b in bins] == [1.0, 2.0]
        assert all(b[1].count == 1 for b in bins)
