"""Tests for Chunnel specs and DAG construction / compatibility (§3.1)."""

import pytest

from repro.chunnels import (
    Encrypt,
    Http2,
    LocalOrRemote,
    Ordered,
    Reliable,
    Serialize,
    Shard,
    Tcp,
)
from repro.core import ChunnelDag, ChunnelSpec, Scope, register_spec, wrap
from repro.errors import DagError, IncompatibleDagError
from repro.sim import Address


class TestSpec:
    def test_repr_shows_args(self):
        assert "max_retries=2" in repr(Reliable(max_retries=2))

    def test_scoped_sets_requirement(self):
        spec = Reliable().scoped(Scope.HOST)
        assert spec.scope_requirement is Scope.HOST

    def test_default_scope_is_global(self):
        assert Reliable().scope_requirement is Scope.GLOBAL

    def test_compat_key_ignores_args(self):
        assert Reliable(max_retries=1).compat_key() == Reliable(
            max_retries=9
        ).compat_key()

    def test_children_finds_nested_specs(self):
        inner = [Serialize(), Reliable()]

        @register_spec
        class Branchy(ChunnelSpec):
            type_name = "test_branchy"

            def __init__(self, branches):
                super().__init__(branches=branches)

        spec = Branchy(branches=inner)
        assert spec.children() == inner

    def test_wire_roundtrip_preserves_scope(self):
        spec = Reliable().scoped(Scope.HOST)
        from repro.core.chunnel import spec_from_wire

        decoded = spec_from_wire(spec.to_wire())
        assert decoded.scope_requirement is Scope.HOST
        assert decoded.args == spec.args

    def test_duplicate_type_name_rejected(self):
        with pytest.raises(Exception):

            @register_spec
            class Fake(ChunnelSpec):
                type_name = "reliable"  # collides with the real one


class TestDagConstruction:
    def test_empty_dag(self):
        dag = wrap()
        assert dag.is_empty
        assert len(dag) == 0

    def test_single_spec(self):
        dag = wrap(Serialize())
        assert dag.chunnel_types() == ["serialize"]

    def test_sequencing_operator(self):
        dag = Serialize() >> Reliable()
        assert [s.type_name for s in dag.specs_in_order()] == [
            "serialize",
            "reliable",
        ]

    def test_three_stage_chain(self):
        dag = wrap(Encrypt() >> Http2() >> Tcp())
        assert dag.chunnel_types() == ["encrypt", "http2", "tcp"]

    def test_wrap_multiple_items(self):
        dag = wrap(Serialize(), Reliable())
        assert dag.chunnel_types() == ["serialize", "reliable"]

    def test_figure2_branching(self):
        """wrap!(A(arg) |> B(B::args([C(), D()]))) → A → B → {C, D}."""

        @register_spec
        class FanOut(ChunnelSpec):
            type_name = "test_fanout"

            def __init__(self, branches):
                super().__init__(branches=branches)

        dag = wrap(Serialize() >> FanOut(branches=[Ordered(), Reliable()]))
        fanout_node = dag.find("test_fanout")[0]
        children_types = sorted(
            dag.nodes[c].type_name for c in dag.successors(fanout_node)
        )
        assert children_types == ["ordered", "reliable"]
        assert dag.nodes[dag.sources()[0]].type_name == "serialize"

    def test_sources_and_sinks(self):
        dag = Serialize() >> Reliable()
        assert dag.nodes[dag.sources()[0]].type_name == "serialize"
        assert dag.nodes[dag.sinks()[0]].type_name == "reliable"

    def test_topological_order_is_deterministic(self):
        dag = wrap(Encrypt() >> Http2() >> Tcp())
        assert dag.topological_order() == dag.topological_order()

    def test_cycle_detected_via_wire(self):
        dag = Serialize() >> Reliable()
        wire = dag.to_wire()
        wire["edges"].append([1, 0])  # back edge
        with pytest.raises(DagError):
            ChunnelDag.from_wire(wire)

    def test_dangling_edge_detected(self):
        dag = wrap(Serialize())
        dag.edges.add((0, 99))
        with pytest.raises(DagError):
            dag.validate()

    def test_self_loop_detected(self):
        dag = wrap(Serialize())
        dag.edges.add((0, 0))
        with pytest.raises(DagError):
            dag.validate()

    def test_wrap_rejects_non_specs(self):
        with pytest.raises(DagError):
            wrap("not a spec")

    def test_copy_is_independent(self):
        dag = Serialize() >> Reliable()
        dup = dag.copy()
        dup.edges.clear()
        assert dag.edges  # original untouched


class TestWireRoundtrip:
    def test_chain_roundtrip(self):
        dag = wrap(Serialize() >> Reliable() >> Ordered())
        decoded = ChunnelDag.from_wire(dag.to_wire())
        assert decoded.canonical_shape() == dag.canonical_shape()

    def test_args_survive(self):
        dag = wrap(Shard(choices=[Address("w", 1), Address("w", 2)]))
        decoded = ChunnelDag.from_wire(dag.to_wire())
        spec = decoded.specs_in_order()[0]
        assert spec.choices == [Address("w", 1), Address("w", 2)]

    def test_empty_roundtrip(self):
        decoded = ChunnelDag.from_wire(ChunnelDag.empty().to_wire())
        assert decoded.is_empty


class TestCompatibility:
    def test_empty_is_compatible_with_anything(self):
        dag = Serialize() >> Reliable()
        assert ChunnelDag.empty().compatible_with(dag)
        assert dag.compatible_with(ChunnelDag.empty())

    def test_same_shape_compatible_despite_args(self):
        left = wrap(Reliable(max_retries=1))
        right = wrap(Reliable(max_retries=99))
        assert left.compatible_with(right)

    def test_different_types_incompatible(self):
        assert not wrap(Serialize()).compatible_with(wrap(Reliable()))

    def test_different_order_incompatible(self):
        left = Serialize() >> Reliable()
        right = Reliable() >> Serialize()
        assert not left.compatible_with(right)

    def test_unify_empty_client_adopts_server(self):
        """Listing 5: the client endpoint specifies no Chunnels."""
        server = Serialize() >> Reliable()
        unified = ChunnelDag.unify(ChunnelDag.empty(), server)
        assert unified.chunnel_types() == ["serialize", "reliable"]

    def test_unify_server_args_win(self):
        client = wrap(Reliable(max_retries=1))
        server = wrap(Reliable(max_retries=5))
        unified = ChunnelDag.unify(client, server)
        assert unified.specs_in_order()[0].args["max_retries"] == 5

    def test_unify_empty_server_keeps_client(self):
        client = wrap(LocalOrRemote())
        unified = ChunnelDag.unify(client, ChunnelDag.empty())
        assert unified.chunnel_types() == ["local_or_remote"]

    def test_unify_incompatible_raises(self):
        with pytest.raises(IncompatibleDagError):
            ChunnelDag.unify(wrap(Serialize()), wrap(Reliable()))


class TestMergeArgUpdates:
    """Arg-only DAG merges (the reconfig fast path for weight updates)."""

    def _pair(self, retries_a=2, retries_b=2):
        a = wrap(Serialize() >> Reliable(max_retries=retries_a))
        b = wrap(Serialize() >> Reliable(max_retries=retries_b))
        return a, b

    def test_arg_identical_returns_current_unchanged(self):
        a, b = self._pair()
        merged, changed = ChunnelDag.merge_arg_updates(a, b)
        assert merged is a
        assert changed == set()

    def test_wire_roundtrip_is_arg_identical(self):
        a = wrap(Serialize() >> Reliable(max_retries=4))
        merged, changed = ChunnelDag.merge_arg_updates(
            a, ChunnelDag.from_wire(a.to_wire())
        )
        assert merged is a
        assert changed == set()

    def test_arg_change_flags_only_that_node(self):
        a, b = self._pair(retries_a=2, retries_b=9)
        rel_id = next(
            i for i, s in a.nodes.items() if s.type_name == "reliable"
        )
        ser_id = next(
            i for i, s in a.nodes.items() if s.type_name == "serialize"
        )
        merged, changed = ChunnelDag.merge_arg_updates(a, b)
        assert changed == {rel_id}
        assert merged.nodes[rel_id] is b.nodes[rel_id]
        # Unchanged nodes keep *current*'s spec objects (identity matters:
        # it carries live stages across the reconfig epoch).
        assert merged.nodes[ser_id] is a.nodes[ser_id]

    def test_structural_difference_refuses_to_merge(self):
        a = wrap(Serialize() >> Reliable())
        b = wrap(Serialize() >> Reliable() >> Ordered())
        assert ChunnelDag.merge_arg_updates(a, b) is None

    def test_type_difference_refuses_to_merge(self):
        a = wrap(Serialize() >> Reliable())
        b = wrap(Serialize() >> Ordered())
        assert ChunnelDag.merge_arg_updates(a, b) is None
