"""Tests for DAG optimization (§6: reorder / merge / eliminate)."""

import pytest

from repro.chunnels import Encrypt, Http2, Ordered, Reliable, Serialize, Tcp
from repro.core import (
    ChunnelTraits,
    DagOptimizer,
    count_device_crossings,
    wrap,
)
from repro.errors import DagError


class TestCrossingCount:
    def test_all_host_pipeline_crosses_once(self):
        # Data must still exit through the NIC.
        assert count_device_crossings(["a", "b"], set()) == 1

    def test_paper_example_original_is_three(self):
        """encrypt |> http2 |> tcp with encrypt+tcp offloadable: the data
        bounces host→NIC→host→NIC = 3 crossings (the paper's 3×)."""
        assert (
            count_device_crossings(
                ["encrypt", "http2", "tcp"], {"encrypt", "tcp"}
            )
            == 3
        )

    def test_paper_example_reordered_is_one(self):
        assert (
            count_device_crossings(
                ["http2", "encrypt", "tcp"], {"encrypt", "tcp"}
            )
            == 1
        )

    def test_empty_chain(self):
        assert count_device_crossings([], set()) == 1  # host → NIC exit
        assert count_device_crossings([], set(), tail_on_device=False) == 0


class TestTraits:
    def test_commutes_is_symmetric(self):
        traits = ChunnelTraits()
        traits.register_commutes("a", "b")
        assert traits.commutes("a", "b")
        assert traits.commutes("b", "a")

    def test_same_type_always_commutes(self):
        assert ChunnelTraits().commutes("x", "x")

    def test_unknown_pairs_do_not_commute(self):
        assert not ChunnelTraits().commutes("a", "b")

    def test_merge_registration(self):
        traits = ChunnelTraits()
        traits.register_merge("a", "b", "ab")
        assert traits.merge_result("a", "b") == "ab"
        assert traits.merge_result("b", "a") is None  # directional

    def test_builtin_traits_include_paper_algebra(self):
        from repro.core import default_traits

        assert default_traits.commutes("encrypt", "http2")
        assert default_traits.merge_result("encrypt", "tcp") == "tls"
        assert default_traits.is_idempotent("ordered")


class TestReorder:
    def test_paper_reorder(self):
        dag = wrap(Encrypt() >> Http2() >> Tcp())
        result = DagOptimizer().optimize(
            dag,
            offloadable={"encrypt", "tcp"},
            available_types={"encrypt", "http2", "tcp"},
        )
        assert [s.type_name for s in result.dag.specs_in_order()] == [
            "http2",
            "encrypt",
            "tcp",
        ]
        assert result.crossings_before == 3
        assert result.crossings_after == 1
        assert any(step.kind == "reorder" for step in result.steps)

    def test_no_offloads_means_no_reorder(self):
        dag = wrap(Encrypt() >> Http2() >> Tcp())
        result = DagOptimizer().optimize(
            dag,
            offloadable=set(),
            available_types={"encrypt", "http2", "tcp"},  # no tls: no merge
        )
        assert [s.type_name for s in result.dag.specs_in_order()] == [
            "encrypt",
            "http2",
            "tcp",
        ]

    def test_non_commuting_chain_stays_put(self):
        dag = wrap(Serialize() >> Encrypt())  # serialize must precede encrypt
        result = DagOptimizer().optimize(
            dag,
            offloadable={"serialize"},
            available_types={"serialize", "encrypt"},
        )
        assert [s.type_name for s in result.dag.specs_in_order()] == [
            "serialize",
            "encrypt",
        ]

    def test_reorder_preserves_spec_args(self):
        dag = wrap(Encrypt(key_id="k9") >> Http2() >> Tcp())
        result = DagOptimizer().optimize(
            dag,
            offloadable={"encrypt", "tcp"},
            available_types={"encrypt", "http2", "tcp"},
        )
        encrypt_spec = [
            s for s in result.dag.specs_in_order() if s.type_name == "encrypt"
        ][0]
        assert encrypt_spec.args["key_id"] == "k9"

    def test_oversized_chain_rejected(self):
        from repro.chunnels import Anycast, Batch, Compress, LocalOrRemote, Tls

        specs = [
            Serialize(),
            Compress(),
            Encrypt(),
            Http2(),
            Tcp(),
            Tls(),
            Batch(),
            LocalOrRemote(),
            Anycast(),
        ]
        dag = wrap(*specs)
        with pytest.raises(DagError):
            DagOptimizer().optimize(dag, offloadable={"encrypt"})


class TestMerge:
    def test_paper_merge_after_reorder(self):
        """If the NIC offers only a TLS engine, reorder then fuse."""
        dag = wrap(Encrypt() >> Http2() >> Tcp())
        result = DagOptimizer().optimize(
            dag,
            offloadable={"encrypt", "tcp", "tls"},
            available_types={"encrypt", "http2", "tcp", "tls"},
        )
        assert [s.type_name for s in result.dag.specs_in_order()] == [
            "http2",
            "tls",
        ]
        assert any(step.kind == "merge" for step in result.steps)

    def test_merge_blocked_when_target_unavailable(self):
        dag = wrap(Encrypt() >> Tcp())
        result = DagOptimizer().optimize(
            dag, offloadable=set(), available_types={"encrypt", "tcp"}
        )
        assert [s.type_name for s in result.dag.specs_in_order()] == [
            "encrypt",
            "tcp",
        ]

    def test_merged_spec_unions_args(self):
        dag = wrap(Encrypt(key_id="kk") >> Tcp(max_retries=9))
        result = DagOptimizer().optimize(
            dag,
            offloadable=set(),
            available_types={"encrypt", "tcp", "tls"},
        )
        tls_spec = result.dag.specs_in_order()[0]
        assert tls_spec.type_name == "tls"
        assert tls_spec.args["key_id"] == "kk"
        assert tls_spec.args["max_retries"] == 9


class TestEliminate:
    def test_duplicate_idempotent_collapses(self):
        dag = wrap(Ordered() >> Ordered() >> Reliable())
        result = DagOptimizer().optimize(dag)
        assert [s.type_name for s in result.dag.specs_in_order()] == [
            "ordered",
            "reliable",
        ]
        assert any(step.kind == "eliminate" for step in result.steps)

    def test_non_idempotent_duplicates_kept(self):
        dag = wrap(Encrypt() >> Encrypt())  # double encryption is meaningful
        result = DagOptimizer().optimize(dag)
        assert len(result.dag) == 2

    def test_non_adjacent_duplicates_kept(self):
        dag = wrap(Ordered() >> Encrypt() >> Ordered())
        result = DagOptimizer().optimize(dag)
        assert len(result.dag) == 3


class TestBranchingAndEmpty:
    def test_empty_dag_unchanged(self):
        result = DagOptimizer().optimize(wrap())
        assert result.dag.is_empty
        assert not result.changed

    def test_branching_dag_left_alone(self):
        from repro.core import ChunnelSpec, register_spec

        @register_spec
        class Fan(ChunnelSpec):
            type_name = "test_opt_fan"

            def __init__(self, branches):
                super().__init__(branches=branches)

        dag = wrap(Fan(branches=[Ordered(), Ordered()]))
        result = DagOptimizer().optimize(dag, offloadable={"ordered"})
        assert not result.changed
        assert len(result.dag) == 3
