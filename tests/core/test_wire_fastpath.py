"""Wire fast-path contracts: adapter memoization and single-pass sizing."""

import pytest

from repro.core import wire
from repro.core.wire import (
    MIN_MESSAGE_SIZE,
    WireError,
    decode,
    encode,
    encode_sized,
    message_size,
    register_wire_type,
)
from repro.sim import Address


class _MemoBase:
    def __init__(self, x):
        self.x = x

    def __eq__(self, other):
        return isinstance(other, _MemoBase) and self.x == other.x


class _MemoSub(_MemoBase):
    pass


class _AfterBase:
    pass


register_wire_type(
    "test.memo_base",
    _MemoBase,
    lambda v: {"x": v.x},
    lambda d: _MemoBase(d["x"]),
)
# Registered *after* the base on purpose: the registry scan for _MemoSub
# then matches mid-iteration rather than on the final entry, which is the
# case that would blow up if the memoizing write kept iterating.
register_wire_type("test.after_base", _AfterBase, lambda v: {}, lambda d: _AfterBase())


class TestAdapterMemoization:
    def test_subclass_resolves_to_base_adapter(self):
        assert decode(encode(_MemoSub(3))) == _MemoBase(3)

    def test_subclass_hit_is_memoized_under_the_concrete_type(self):
        wire._encoders.pop(_MemoSub, None)
        encode(_MemoSub(1))
        # Second encode is a plain dict hit: the concrete type now maps to
        # the very same (tag, encoder) pair as the registered base.
        assert wire._encoders[_MemoSub] is wire._encoders[_MemoBase]

    def test_memoizing_during_the_registry_scan_is_safe(self):
        # Regression: the memo write happens *inside* the scan over
        # ``_encoders``.  If the loop kept iterating after the write, the
        # first subclass encode would die with "dictionary changed size
        # during iteration".  _AfterBase sits after _MemoBase in insertion
        # order, so this encode exercises exactly that mid-scan write.
        wire._encoders.pop(_MemoSub, None)
        encoded = encode([_MemoSub(i) for i in range(3)])
        assert [decode(item).x for item in encoded] == [0, 1, 2]

    def test_base_registration_survives_subclass_memoization(self):
        encode(_MemoSub(5))
        assert decode(encode(_MemoBase(9))) == _MemoBase(9)

    def test_unregistered_type_still_rejected(self):
        class Stranger:
            pass

        with pytest.raises(WireError):
            encode(Stranger())


class TestEncodeSizedEquivalence:
    """``encode_sized`` must equal the two-pass ``encode`` + ``message_size``
    — same encoded form, same byte count — for every shape that travels."""

    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            3.5,
            1e-9,
            "hello",
            "",
            b"",
            b"\x00\xff",
            bytes(range(64)),
            [],
            {},
            (1, 2),
            [1, [2, "x"], {"k": b"z"}],
            {"a": {"b": [1, 2.5, None]}, "c": True},
            Address("host-a", 9),
            {"peers": [Address("a", 1), Address("b", 2)]},
            _MemoSub(7),
        ],
    )
    def test_matches_two_pass_encoding(self, value):
        reference = encode(value)
        encoded, size = encode_sized(value)
        assert encoded == reference
        assert size == message_size(reference)

    def test_primitive_subclasses_take_the_isinstance_fallback(self):
        class MyInt(int):
            pass

        class MyStr(str):
            pass

        for value in (MyInt(42), MyStr("abc"), [MyInt(1), MyStr("s")], (MyInt(3),)):
            encoded, size = encode_sized(value)
            assert encoded == encode(value)
            assert size == message_size(encode(value))

    def test_floor_applies_to_tiny_payloads(self):
        encoded, size = encode_sized(None)
        assert size == MIN_MESSAGE_SIZE == message_size(encoded)

    def test_reserved_and_non_string_keys_still_rejected(self):
        with pytest.raises(WireError):
            encode_sized({"__kind__": 1})
        with pytest.raises(WireError):
            encode_sized({1: "x"})
