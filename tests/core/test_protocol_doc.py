"""The committed PROTOCOL.md appendix must match the generated catalogue.

Appendix A is produced by :func:`repro.core.messages.protocol_appendix`;
editing the schema without regenerating the document (or vice versa) fails
here.  Regenerate with::

    python -c 'from repro.core import messages; print(messages.protocol_appendix())'
"""

from pathlib import Path

from repro.core import messages as msgs

PROTOCOL_MD = Path(__file__).resolve().parents[2] / "PROTOCOL.md"


class TestProtocolAppendix:
    def test_committed_appendix_matches_generated(self):
        doc = PROTOCOL_MD.read_text()
        appendix = msgs.protocol_appendix().rstrip()
        assert appendix in doc, (
            "PROTOCOL.md Appendix A is out of date — regenerate it from "
            "repro.core.messages.protocol_appendix()"
        )

    def test_appendix_covers_every_kind(self):
        appendix = msgs.protocol_appendix()
        for kind in msgs.BY_KIND:
            assert f"### `{kind}`" in appendix
