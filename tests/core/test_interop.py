"""Tests for connect_raw: interop with non-Bertha datagram peers (§4.1)."""

import pytest

from repro.chunnels import (
    HashBytes,
    RateLimit,
    RateLimitFallback,
    Reliable,
    ReliableFallback,
    Shard,
    ShardClientFallback,
)
from repro.core import wrap
from repro.errors import NoImplementationError
from repro.sim import Address, UdpSocket

from ..conftest import run


def raw_echo(net, entity_name, port):
    """A plain, non-Bertha UDP echo server."""
    sock = UdpSocket(net.entity(entity_name), port)

    def loop(env):
        while True:
            dgram = yield sock.recv()
            sock.send(dgram.payload, dgram.src, size=dgram.size)

    net.env.process(loop(net.env))
    return sock


class TestConnectRaw:
    def test_bare_connection_to_plain_socket(self, two_hosts):
        client_rt = two_hosts.runtime("cl")
        raw_echo(two_hosts.net, "srv", 9000)

        def scenario(env):
            yield env.timeout(1e-4)
            conn = client_rt.new("legacy").connect_raw(Address("srv", 9000))
            start = env.now
            conn.send(b"ping", size=4)
            reply = yield conn.recv()
            return reply.payload, env.now - start

        payload, rtt = run(two_hosts.env, scenario(two_hosts.env))
        assert payload == b"ping"
        assert rtt < 100e-6  # no negotiation happened at all

    def test_no_control_round_trips(self, two_hosts):
        client_rt = two_hosts.runtime("cl")
        raw_echo(two_hosts.net, "srv", 9000)

        def scenario(env):
            yield env.timeout(1e-4)
            client_rt.new("legacy").connect_raw(Address("srv", 9000))
            return client_rt.discovery.round_trips

        assert run(two_hosts.env, scenario(two_hosts.env)) == 0

    def test_client_side_chunnels_allowed(self, two_hosts):
        """Client-push sharding works against plain-socket shards."""
        client_rt = two_hosts.runtime("cl")
        client_rt.register_chunnel(ShardClientFallback)
        workers = [Address("srv", 9001), Address("srv", 9002)]
        for address in workers:
            raw_echo(two_hosts.net, "srv", address.port)

        def scenario(env):
            yield env.timeout(1e-4)
            dag = wrap(Shard(choices=workers, shard_fn=HashBytes(0, 4)))
            conn = client_rt.new("legacy").connect_raw(workers[0])
            conn.close()
            conn = client_rt.new("legacy", dag).connect_raw(workers[0])
            replies = set()
            for index in range(12):
                conn.send(b"%04d" % index, size=4)
                msg = yield conn.recv()
                replies.add(msg.src.port)
            return replies

        assert run(two_hosts.env, scenario(two_hosts.env)) == {9001, 9002}

    def test_rate_limit_applies_unilaterally(self, two_hosts):
        client_rt = two_hosts.runtime("cl")
        client_rt.register_chunnel(RateLimitFallback)
        raw_echo(two_hosts.net, "srv", 9000)

        def scenario(env):
            yield env.timeout(1e-4)
            dag = wrap(RateLimit(bytes_per_second=1e6, burst_bytes=500))
            conn = client_rt.new("legacy", dag).connect_raw(Address("srv", 9000))
            start = env.now
            for _ in range(5):
                conn.send(b"x" * 500, size=500)
            for _ in range(5):
                yield conn.recv()
            return env.now - start

        elapsed = run(two_hosts.env, scenario(two_hosts.env))
        assert elapsed >= 4 * 500 / 1e6  # pacing happened

    def test_peer_cooperating_chunnels_rejected(self, two_hosts):
        """Reliability needs the peer to ack; a raw peer cannot."""
        client_rt = two_hosts.runtime("cl")
        client_rt.register_chunnel(ReliableFallback)
        endpoint = client_rt.new("legacy", wrap(Reliable()))
        with pytest.raises(NoImplementationError):
            endpoint.connect_raw(Address("srv", 9000))

    def test_unregistered_chunnel_rejected(self, two_hosts):
        client_rt = two_hosts.runtime("cl")  # nothing registered
        endpoint = client_rt.new(
            "legacy", wrap(Shard(choices=[Address("srv", 9001)]))
        )
        with pytest.raises(NoImplementationError):
            endpoint.connect_raw(Address("srv", 9001))
