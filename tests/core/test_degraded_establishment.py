"""Degraded-mode establishment: a discovery outage must not fail connects.

The contract under test (PROTOCOL.md §6): when the discovery service is
unreachable, ``Endpoint.connect`` falls back to ``NullDiscoveryClient``
semantics — fallback-only stacks, names resolved from the cluster name
service — raises :class:`DegradedEstablishmentWarning` instead of an
error, and marks the connection ``degraded``.  Once discovery returns,
new connections are full fidelity and *existing* degraded connections
upgrade via the reconfiguration engine's polling.
"""

import warnings

import pytest

from repro.apps import KvClient, KvServer
from repro.chunnels import SerializeFallback, ShardServerFallback, ShardXdp
from repro.errors import DegradedEstablishmentWarning
from repro.sim import Address

from ..conftest import run


def shard_impl(conn) -> str:
    (node_id,) = conn.dag.find("shard")
    return type(conn.impls[node_id]).__name__


def kv_world(world, **server_kwargs):
    server_rt = world.runtime("srv")
    client_rt = world.runtimes.get("cl") or world.runtime("cl")
    for rt in (server_rt, client_rt):
        rt.register_chunnel(SerializeFallback)
    server_rt.register_chunnel(ShardServerFallback)
    world.discovery.register(ShardXdp.meta, location="srv")
    return server_rt, client_rt


class TestDegradedEstablishment:
    def test_connect_during_outage_is_degraded_but_serves(self, two_hosts):
        server_rt, client_rt = kv_world(two_hosts)
        two_hosts.discovery.crash()
        KvServer(server_rt, port=7100)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(Address("srv", 7100), retries=30)
            yield from client.put("k", b"v")
            got = yield from client.get("k")
            client.close()
            return conn, got

        with pytest.warns(DegradedEstablishmentWarning):
            conn, got = run(two_hosts.env, scenario(two_hosts.env), until=10.0)

        assert conn.degraded
        assert got == {"type": "response", "status": "ok", "value": b"v"}
        # Fallback-only stack: the registered XDP offload was unreachable.
        assert shard_impl(conn) == "ShardServerFallback"
        assert client_rt.degraded_establishments == 1
        assert client_rt.degraded_events[0]["reason"] == (
            "discovery query timed out"
        )

    def test_connect_after_restart_is_full_fidelity(self, two_hosts):
        server_rt, client_rt = kv_world(two_hosts)
        two_hosts.discovery.crash()
        KvServer(server_rt, port=7100)

        def scenario(env):
            yield env.timeout(1e-4)
            degraded_client = KvClient(client_rt, name="kv-degraded")
            first = yield from degraded_client.connect(
                Address("srv", 7100), retries=30
            )
            degraded_client.close()
            two_hosts.discovery.restart()
            healthy_client = KvClient(client_rt, name="kv-healthy")
            second = yield from healthy_client.connect(Address("srv", 7100))
            yield from healthy_client.put("k", b"v")
            healthy_client.close()
            return first, second

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first, second = run(
                two_hosts.env, scenario(two_hosts.env), until=10.0
            )

        assert first.degraded and not second.degraded
        # Recovery restores the offload path for new connections...
        assert shard_impl(second) == "ShardXdp"
        # ...and exactly the outage-time connection raised the warning.
        degraded_warnings = [
            w for w in caught
            if issubclass(w.category, DegradedEstablishmentWarning)
        ]
        assert len(degraded_warnings) == 1
        assert two_hosts.discovery.audit_leases()["ok"]

    def test_degraded_connection_upgrades_after_restart(self, two_hosts):
        server_rt, client_rt = kv_world(two_hosts)
        two_hosts.discovery.crash()
        server = KvServer(server_rt, port=7100, auto_reconfig=True)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(Address("srv", 7100), retries=30)
            yield from client.put("k", b"v")
            server_conn = server.listener.connections[0]
            before = shard_impl(server_conn)
            two_hosts.discovery.restart()
            server_rt.reconfig.enable_upgrade_polling(
                server_conn, interval=5e-3
            )
            for _ in range(400):
                yield env.timeout(5e-3)
                if shard_impl(server_conn) == "ShardXdp":
                    break
            after = shard_impl(server_conn)
            # The upgraded stack still serves the degraded-era data.
            got = yield from client.get("k")
            client.close()
            return conn, server_conn, before, after, got

        with pytest.warns(DegradedEstablishmentWarning):
            conn, server_conn, before, after, got = run(
                two_hosts.env, scenario(two_hosts.env), until=30.0
            )

        assert conn.degraded  # flag describes the establishment, not now
        assert (before, after) == ("ShardServerFallback", "ShardXdp")
        assert server_conn.transitions >= 1
        assert got == {"type": "response", "status": "ok", "value": b"v"}
        audit = two_hosts.discovery.audit_leases()
        assert audit["ok"]

    def test_listener_registers_name_directly_during_outage(self, two_hosts):
        server_rt, client_rt = kv_world(two_hosts)
        two_hosts.discovery.crash()
        KvServer(server_rt, port=7100, service_name="kv")

        def scenario(env):
            # The listener needs its own discovery timeout (~50ms) to give
            # up and register directly with the cluster name service.
            yield env.timeout(0.2)
            client = KvClient(client_rt)
            conn = yield from client.connect("kv", retries=30)
            got = yield from client.put("k", b"v")
            client.close()
            return conn, got

        with pytest.warns(DegradedEstablishmentWarning):
            conn, got = run(two_hosts.env, scenario(two_hosts.env), until=10.0)

        assert conn.degraded
        assert got["status"] == "ok"
        # The listener noted its own degradation (direct name registration).
        reasons = [e["reason"] for e in server_rt.degraded_events]
        assert "name registration timed out" in reasons
