"""One-RTT resumption: the negotiation cache end to end (PROTOCOL.md §7).

World shape mirrors the chaos/churn experiments — echo server with a
contended NIC offload behind a priority-first policy, remote discovery —
so resumed connects exercise real reservation revalidation, not a
reservation-free stack.  The invalidation tests pin the ISSUE's
correctness bar: a revocation push or a policy-epoch bump between
connects must force full renegotiation, and a stale choice is never
instantiated — including when 10% loss eats the best-effort pushes and
only the server's reservation revalidation stands in the way.
"""

import warnings

import pytest

from repro.apps.rpc import EchoServer
from repro.chunnels import (
    Reliable,
    ReliableFallback,
    ReliableToe,
    Serialize,
    SerializeFallback,
)
from repro.core import Runtime
from repro.core.dag import wrap
from repro.core.negcache import NegotiationCache
from repro.core.policy import PriorityFirstPolicy
from repro.discovery import DiscoveryService
from repro.discovery.client import RemoteDiscoveryClient
from repro.errors import DegradedEstablishmentWarning
from repro.sim import FaultPlan, Network, SmartNic

CONNECT = dict(timeout=2e-3, retries=80)


def build_world(cache_size=8, cache_ttl=None, loss=0.0, seed=7):
    """Echo server + client + remote discovery, negotiation cache on both
    runtimes; returns (net, discovery, toe_record, server, client_rt)."""
    net = Network()
    server_host = net.add_host(
        "srv", nic=SmartNic(net.env, name="srv.nic", offload_slots=4)
    )
    client_host = net.add_host("cl")
    discovery_host = net.add_host("dsc")
    net.add_switch("tor")
    for name in ("srv", "cl", "dsc"):
        net.add_link(name, "tor", latency=5e-6)
    if loss:
        net.attach_faults_everywhere(FaultPlan(drop_rate=loss, seed=seed))
    discovery = DiscoveryService(discovery_host)
    toe_record = discovery.register(ReliableToe.meta, location="srv")

    def _runtime(host, **kwargs):
        runtime = Runtime(
            host,
            discovery=RemoteDiscoveryClient(host, discovery.address),
            negotiation_cache_size=cache_size,
            negotiation_cache_ttl=cache_ttl,
            **kwargs,
        )
        runtime.register_chunnel(SerializeFallback)
        runtime.register_chunnel(ReliableFallback)
        return runtime

    server_rt = _runtime(server_host, policy=PriorityFirstPolicy())
    client_rt = _runtime(client_host)
    server = EchoServer(server_rt, port=7400, dag=dag())
    return net, discovery, toe_record, server, client_rt


def dag():
    return wrap(Serialize() >> Reliable())


def drive(net, generator, until=30.0):
    done = {}

    def _main():
        done["value"] = yield from generator
        done["at"] = net.env.now

    net.env.process(_main(), name="test.main")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstablishmentWarning)
        net.env.run(until=until)
    assert "value" in done or "at" in done, "driver did not finish"
    return done.get("value")


def connect_once(client_rt, server, session, **kwargs):
    endpoint = client_rt.new(f"resume-{session}", dag())
    params = {**CONNECT, **kwargs}
    return (yield from endpoint.connect(server.address, **params))


def echo_roundtrip(conn):
    conn.send(b"ping", size=64)
    reply = yield conn.recv()
    return reply


class TestResumeFastPath:
    def test_second_connect_resumes_in_one_control_round_trip(self):
        net, _disc, toe, server, client_rt = build_world()

        def scenario():
            first = yield from connect_once(client_rt, server, 0)
            yield from echo_roundtrip(first)
            first.close()
            disc_before = client_rt.discovery.stats.round_trips
            nego_before = client_rt.negotiation_stats.round_trips
            second = yield from connect_once(client_rt, server, 1)
            yield from echo_roundtrip(second)
            second.close()
            return first, second, disc_before, nego_before

        first, second, disc_before, nego_before = drive(net, scenario())
        # One control round trip total: no discovery query, one resume.
        assert client_rt.discovery.stats.round_trips == disc_before
        assert client_rt.negotiation_stats.round_trips == nego_before + 1
        assert client_rt.negcache.hits == 1
        assert client_rt.negcache.fallbacks == 0
        # The resumed binding is the negotiated one, offload included.
        offloads = lambda conn: {
            o.record_id for o in conn.choice.values() if o.record_id
        }
        assert offloads(second) == offloads(first) == {toe.record_id}

    def test_resume_replays_the_trace_span(self):
        net, _disc, _toe, server, client_rt = build_world()

        def scenario():
            conn = yield from connect_once(client_rt, server, 0)
            conn.close()
            conn = yield from connect_once(client_rt, server, 1)
            conn.close()

        drive(net, scenario())
        phases = [s.phase for s in net.trace.spans]
        assert "resume" in phases  # client attempt + server revalidation
        resumes = [s for s in net.trace.spans if s.phase == "resume"]
        assert all(s.status == "ok" for s in resumes)

    def test_cache_disabled_changes_nothing(self):
        net, _disc, _toe, server, client_rt = build_world(cache_size=0)

        def scenario():
            for session in range(2):
                conn = yield from connect_once(client_rt, server, session)
                yield from echo_roundtrip(conn)
                conn.close()

        drive(net, scenario())
        cache = client_rt.negcache
        assert not cache.enabled
        assert (cache.hits, cache.misses, cache.fallbacks) == (0, 0, 0)
        # Both connects paid the full two control round trips.
        assert client_rt.discovery.stats.round_trips == 2
        assert client_rt.negotiation_stats.round_trips == 2

    def test_resume_against_cache_free_server_falls_back(self):
        # A client with a cache talking to a default (cache-off) server:
        # the resume is rejected and the connect still succeeds.
        net, _disc, _toe, server, client_rt = build_world()
        server.runtime.negcache = NegotiationCache(size=0)

        def scenario():
            first = yield from connect_once(client_rt, server, 0)
            first.close()
            second = yield from connect_once(client_rt, server, 1)
            yield from echo_roundtrip(second)
            second.close()

        drive(net, scenario())
        assert client_rt.negcache.hits == 1
        assert client_rt.negcache.fallbacks == 1


class TestInvalidation:
    def test_revocation_push_evicts_and_renegotiates(self):
        net, discovery, toe, server, client_rt = build_world()

        def scenario():
            first = yield from connect_once(client_rt, server, 0)
            first.close()
            # The watch registration RPC is asynchronous (fire-and-forget
            # from the cache's point of view); let it land first.
            yield net.env.timeout(1e-3)
            # Operator revokes the offload; the watch push (lossless
            # fabric here) evicts the cached entries on both runtimes.
            discovery.revoke(toe.record_id)
            yield net.env.timeout(1e-3)
            second = yield from connect_once(client_rt, server, 1)
            yield from echo_roundtrip(second)
            return second

        second = drive(net, scenario())
        assert client_rt.negcache.invalidations >= 1
        assert server.runtime.negcache.invalidations >= 1
        # Full renegotiation, not a resume-and-reject: the entry was gone
        # before the second connect looked.
        assert client_rt.negcache.hits == 0
        assert client_rt.negcache.fallbacks == 0
        # And the fresh choice cannot name the revoked record.
        assert toe.record_id not in {
            o.record_id for o in second.choice.values()
        }

    def test_server_epoch_bump_rejects_stale_resume(self):
        net, _disc, _toe, server, client_rt = build_world()

        def scenario():
            first = yield from connect_once(client_rt, server, 0)
            first.close()
            # Operator policy change on the server only: the client's
            # entry is still present and is offered — and must be refused.
            server.runtime.bump_policy_epoch()
            second = yield from connect_once(client_rt, server, 1)
            second.close()
            # The fallback re-stored a fresh entry under the new server
            # epoch; the third connect resumes again.
            third = yield from connect_once(client_rt, server, 2)
            yield from echo_roundtrip(third)
            third.close()

        drive(net, scenario())
        assert client_rt.negcache.hits == 2  # attempts 2 and 3
        assert client_rt.negcache.fallbacks == 1  # only attempt 2
        # The bump evicted the server's entry (and the server key embeds
        # the new epoch), so the stale resume reads as a server-side miss.
        rejected = [
            s
            for s in net.trace.spans
            if s.phase == "resume" and s.status == "reject"
        ]
        assert len(rejected) == 1
        assert "no cached negotiation result" in rejected[0].attrs["reason"]

    def test_client_epoch_bump_clears_local_cache(self):
        net, _disc, _toe, server, client_rt = build_world()

        def scenario():
            first = yield from connect_once(client_rt, server, 0)
            first.close()
            client_rt.bump_policy_epoch()
            second = yield from connect_once(client_rt, server, 1)
            second.close()

        drive(net, scenario())
        # No resume was even attempted: the bump evicted the entry and the
        # new epoch is part of the lookup key.
        assert client_rt.negcache.invalidations == 1
        assert client_rt.negcache.hits == 0
        assert client_rt.negcache.fallbacks == 0
        # Two full discovery queries plus the first connect's one watch
        # registration; a resumed second connect would have stayed at 2.
        assert client_rt.discovery.stats.round_trips == 3
        assert client_rt.negotiation_stats.round_trips == 2

    def test_ttl_expiry_reads_as_miss(self):
        net, _disc, _toe, server, client_rt = build_world(cache_ttl=1e-3)

        def scenario():
            first = yield from connect_once(client_rt, server, 0)
            first.close()
            yield net.env.timeout(5e-3)  # past the TTL
            second = yield from connect_once(client_rt, server, 1)
            second.close()

        drive(net, scenario())
        assert client_rt.negcache.hits == 0
        assert client_rt.negcache.misses == 2
        assert client_rt.negcache.fallbacks == 0


class TestInvalidationUnderLoss:
    """The ISSUE's bar: no stale choice is ever instantiated even when
    10% loss eats the best-effort revocation pushes — the server's
    reservation revalidation is the safety net."""

    @pytest.mark.parametrize("seed", [7, 11, 23])
    def test_revocation_between_connects_never_resumes_stale(self, seed):
        net, discovery, toe, server, client_rt = build_world(
            loss=0.10, seed=seed
        )

        def scenario():
            first = yield from connect_once(client_rt, server, 0)
            first_records = {
                o.record_id for o in first.choice.values() if o.record_id
            }
            first.close()
            yield net.env.timeout(1e-3)  # let the watch registration land
            discovery.revoke(toe.record_id)
            yield net.env.timeout(1e-3)
            second = yield from connect_once(client_rt, server, 1)
            yield from echo_roundtrip(second)
            second_records = {
                o.record_id for o in second.choice.values() if o.record_id
            }
            second.close()
            return first_records, second_records

        first_records, second_records = drive(net, scenario(), until=60.0)
        # The first negotiation used the offload; the second must not,
        # whether the eviction push survived the loss or the resume was
        # rejected at reservation revalidation.
        assert toe.record_id in first_records
        assert toe.record_id not in second_records
        # However it played out, nothing resumed onto the stale binding:
        # a hit either became a fallback or never happened.
        assert client_rt.negcache.hits == client_rt.negcache.fallbacks
        assert discovery.audit_leases()["ok"]

    def test_epoch_bump_between_connects_under_loss(self):
        net, _disc, _toe, server, client_rt = build_world(loss=0.10, seed=13)

        def scenario():
            first = yield from connect_once(client_rt, server, 0)
            first.close()
            server.runtime.bump_policy_epoch()
            second = yield from connect_once(client_rt, server, 1)
            yield from echo_roundtrip(second)
            second.close()

        drive(net, scenario(), until=60.0)
        # The stale-epoch resume must have been rejected, never adopted.
        assert client_rt.negcache.hits == client_rt.negcache.fallbacks


class TestReservationRevalidation:
    def test_discovery_outage_fails_resume_then_degrades(self):
        # With discovery down, the server cannot revalidate the
        # reservation: the resume is refused (or times out) and the
        # fallback path establishes degraded — same contract as a cold
        # connect during an outage (PROTOCOL.md §6.3).
        net, discovery, _toe, server, client_rt = build_world()

        def scenario():
            first = yield from connect_once(client_rt, server, 0)
            first.close()
            discovery.crash()
            second = yield from connect_once(client_rt, server, 1)
            yield from echo_roundtrip(second)
            return second

        second = drive(net, scenario(), until=60.0)
        assert second.degraded
        assert client_rt.negcache.hits == 1
        assert client_rt.negcache.fallbacks == 1


class TestNegotiationCacheUnit:
    def test_disabled_cache_is_inert(self):
        cache = NegotiationCache(size=0)
        assert not cache.enabled
        cache.store("k", {"x": 1})
        assert cache.lookup("k") is None
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_lru_eviction_and_hit_refresh(self):
        cache = NegotiationCache(size=2)
        cache.store("a", {"n": 1})
        cache.store("b", {"n": 2})
        assert cache.lookup("a")["n"] == 1  # refreshes a
        cache.store("c", {"n": 3})  # evicts b (LRU)
        assert "b" not in cache
        assert cache.lookup("a")["n"] == 1
        assert cache.lookup("c")["n"] == 3

    def test_ttl_uses_the_injected_clock(self):
        now = {"t": 0.0}
        cache = NegotiationCache(size=4, ttl=1.0, clock=lambda: now["t"])
        cache.store("k", {"n": 1})
        assert cache.lookup("k") is not None
        now["t"] = 2.0
        assert cache.lookup("k") is None
        assert "k" not in cache  # expiry evicts
        assert (cache.hits, cache.misses) == (1, 1)

    def test_tag_invalidation(self):
        cache = NegotiationCache(size=4)
        cache.store("a", {}, tags={"rec-1", "shape"})
        cache.store("b", {}, tags={"rec-2", "shape"})
        cache.store("c", {}, tags={"rec-3"})
        assert cache.invalidate_tag("rec-1") == 1
        assert cache.invalidate_tag("shape") == 1  # only b left with it
        assert cache.invalidate_tag("nothing") == 0
        assert len(cache) == 1 and "c" in cache
        assert cache.invalidations == 2

    def test_invalidate_all_counts(self):
        cache = NegotiationCache(size=4)
        cache.store("a", {})
        cache.store("b", {})
        assert cache.invalidate_all() == 2
        assert len(cache) == 0 and cache.invalidations == 2

    def test_note_fallback_evicts_the_proved_stale_entry(self):
        cache = NegotiationCache(size=4)
        cache.store("a", {})
        cache.note_fallback("a")
        assert "a" not in cache and cache.fallbacks == 1
        cache.note_fallback("missing")  # timeout after eviction: no error
        assert cache.fallbacks == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="size"):
            NegotiationCache(size=-1)
        with pytest.raises(ValueError, match="ttl"):
            NegotiationCache(size=1, ttl=0)
