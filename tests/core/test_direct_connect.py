"""Direct-connect paths and the ``_select_instance`` spec hook.

Two establishment entry points the negotiation tests skip:

* ``connect([addr, addr, ...])`` — the group fan-out of Listing 2, where
  the client negotiates with *every* target and the pipeline must produce
  one connection spanning all peers;
* ``connect("name")`` — by-name resolution routed through the first DAG
  spec that implements ``select_instance`` (anycast nearest/rotate, the
  local fast-path's same-host preference), falling back to the first
  registered instance.
"""

import pytest

from repro.apps import EchoServer, ping_session
from repro.chunnels import (
    Anycast,
    LocalOrRemote,
    LocalOrRemoteFallback,
    Serialize,
)
from repro.core import Runtime, wrap
from repro.discovery import DiscoveryService
from repro.errors import NegotiationError
from repro.sim import Address, Network

from ..conftest import World, run


def fanout_world():
    """Client ("cl") plus two server hosts ("s1", "s2") behind a ToR."""
    net = Network()
    for name in ("cl", "s1", "s2", "dsc"):
        net.add_host(name)
    net.add_switch("tor")
    for name in ("cl", "s1", "s2", "dsc"):
        net.add_link(name, "tor", latency=5e-6)
    return World(net, DiscoveryService(net.hosts["dsc"]))


def echo(world, runtime, port=7000):
    listener = runtime.new("echo").listen(port=port)

    def serve(env):
        while True:
            conn = yield listener.accept()

            def handle(env, conn=conn):
                while not conn.closed:
                    msg = yield conn.recv()
                    conn.send(msg.payload, size=msg.size, dst=msg.src)

            env.process(handle(env))

    world.env.process(serve(world.env))
    return listener


class TestListTargetConnect:
    def test_negotiates_with_every_target(self):
        world = fanout_world()
        listeners = {
            name: echo(world, world.runtime(name)) for name in ("s1", "s2")
        }
        client_rt = world.runtime("cl")

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(
                [Address("s1", 7000), Address("s2", 7000)]
            )
            return conn

        conn = run(world.env, scenario(world.env))
        # One connection, one data address per negotiated peer.
        assert sorted(peer.host for peer in conn.peers) == ["s1", "s2"]
        assert conn.server_entity == "s1"  # first accept names the peer
        for name, listener in listeners.items():
            assert len(listener.connections) == 1, f"{name} did not accept"

    def test_single_element_list_behaves_like_direct_address(self):
        world = fanout_world()
        echo(world, world.runtime("s1"))
        client_rt = world.runtime("cl")

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(
                [Address("s1", 7000)]
            )
            conn.send(b"one-target", size=10)
            reply = yield conn.recv()
            return conn.peers, reply.payload

        peers, payload = run(world.env, scenario(world.env))
        # Peers carry the negotiated *data* address, not the control port.
        assert [peer.host for peer in peers] == ["s1"]
        assert payload == b"one-target"

    def test_empty_target_list_rejected(self):
        world = fanout_world()
        client_rt = world.runtime("cl")

        def scenario(env):
            yield env.timeout(1e-4)
            yield from client_rt.new("c").connect([])

        with pytest.raises(NegotiationError):
            run(world.env, scenario(world.env))


def geo_world():
    """Near (1 µs) and far (200 µs) instances, as in the anycast tests."""
    net = Network()
    net.add_host("client-host")
    net.add_host("near-host")
    net.add_host("far-host")
    dsc = net.add_host("dsc")
    net.add_switch("local-sw")
    net.add_switch("wan-sw")
    net.add_link("client-host", "local-sw", latency=1e-6)
    net.add_link("near-host", "local-sw", latency=1e-6)
    net.add_link("dsc", "local-sw", latency=1e-6)
    net.add_link("local-sw", "wan-sw", latency=200e-6)
    net.add_link("far-host", "wan-sw", latency=1e-6)
    return net, DiscoveryService(dsc)


class TestSelectInstanceHook:
    INSTANCES = [Address("far-host", 1), Address("near-host", 1)]

    def test_default_is_first_instance(self):
        net, discovery = geo_world()
        runtime = Runtime(
            net.hosts["client-host"], discovery=discovery.address
        )
        endpoint = runtime.new("c")  # empty DAG: no spec, no hook
        assert endpoint._select_instance(self.INSTANCES) == self.INSTANCES[0]

    def test_spec_without_hook_falls_back_to_first(self):
        net, discovery = geo_world()
        runtime = Runtime(
            net.hosts["client-host"], discovery=discovery.address
        )
        endpoint = runtime.new("c", wrap(Serialize()))
        assert endpoint._select_instance(self.INSTANCES) == self.INSTANCES[0]

    def test_anycast_hook_picks_nearest(self):
        net, discovery = geo_world()
        runtime = Runtime(
            net.hosts["client-host"], discovery=discovery.address
        )
        endpoint = runtime.new("c", wrap(Anycast()))
        assert endpoint._select_instance(self.INSTANCES).host == "near-host"

    def test_rotate_hook_cycles_across_connects(self):
        net, discovery = geo_world()
        runtime = Runtime(
            net.hosts["client-host"], discovery=discovery.address
        )
        endpoint = runtime.new("c", wrap(Anycast(strategy="rotate")))
        picks = {
            endpoint._select_instance(self.INSTANCES).host for _ in range(6)
        }
        assert picks == {"far-host", "near-host"}

    def test_first_spec_with_hook_wins(self):
        # Serialize has no select_instance; the walk must keep going and
        # use anycast's verdict rather than falling back to first.
        net, discovery = geo_world()
        runtime = Runtime(
            net.hosts["client-host"], discovery=discovery.address
        )
        endpoint = runtime.new("c", wrap(Serialize() >> Anycast()))
        assert endpoint._select_instance(self.INSTANCES).host == "near-host"

    def test_local_fastpath_hook_prefers_same_host(self):
        net = Network()
        box = net.add_host("box")
        box.add_container("ca")
        box.add_container("cb")
        net.add_host("remote")
        dsc = net.add_host("dsc")
        net.add_switch("tor")
        for name in ("box", "remote", "dsc"):
            net.add_link(name, "tor", latency=5e-6)
        discovery = DiscoveryService(dsc)
        runtime = Runtime(net.entity("ca"), discovery=discovery.address)
        endpoint = runtime.new("c", wrap(LocalOrRemote()))
        instances = [Address("remote", 1), Address("cb", 1)]
        assert endpoint._select_instance(instances).host == "cb"


class TestLocalFastpathByName:
    def test_by_name_connect_selects_local_instance(self):
        """Figure 4's step-down: the remote instance registered first, but
        a by-name connect through ``local_or_remote`` lands on the sibling
        container — and negotiates the pipe transport with it."""
        net = Network()
        box = net.add_host("box")
        box.add_container("ca")
        box.add_container("cb")
        net.add_host("remote")
        dsc = net.add_host("dsc")
        net.add_switch("tor")
        for name in ("box", "remote", "dsc"):
            net.add_link(name, "tor", latency=5e-6)
        discovery = DiscoveryService(dsc)

        remote_rt = Runtime(net.hosts["remote"], discovery=discovery.address)
        local_rt = Runtime(net.entity("cb"), discovery=discovery.address)
        client_rt = Runtime(net.entity("ca"), discovery=discovery.address)
        for runtime in (remote_rt, local_rt, client_rt):
            runtime.register_chunnel(LocalOrRemoteFallback)
        # Remote FIRST: naive first-record resolution would pick it.
        EchoServer(
            remote_rt, port=7000, dag=wrap(LocalOrRemote()), service_name="kv"
        )
        EchoServer(
            local_rt, port=7000, dag=wrap(LocalOrRemote()), service_name="kv"
        )

        def scenario(env):
            yield env.timeout(1e-3)
            result = yield from ping_session(
                client_rt, "kv", dag=wrap(LocalOrRemote()), size=64, count=2
            )
            return result.server_entity, result.transport

        server, transport = run(net.env, scenario(net.env))
        assert server == "cb"
        assert transport == "pipe"
