"""Tests for scopes, endpoint constraints, and resource vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Endpoints, Placement, ResourceVector, Scope


class TestScope:
    def test_ordering(self):
        assert Scope.APPLICATION < Scope.HOST < Scope.RACK
        assert Scope.RACK < Scope.NETWORK < Scope.GLOBAL

    def test_requirement_satisfied_by_tighter_scope(self):
        assert Scope.HOST.satisfied_by(Scope.APPLICATION)
        assert Scope.HOST.satisfied_by(Scope.HOST)
        assert not Scope.HOST.satisfied_by(Scope.NETWORK)

    def test_global_accepts_everything(self):
        for scope in Scope:
            assert Scope.GLOBAL.satisfied_by(scope)

    def test_application_accepts_only_itself(self):
        assert Scope.APPLICATION.satisfied_by(Scope.APPLICATION)
        for scope in (Scope.HOST, Scope.RACK, Scope.NETWORK, Scope.GLOBAL):
            assert not Scope.APPLICATION.satisfied_by(scope)


class TestEndpoints:
    def test_both_needs_both(self):
        assert Endpoints.BOTH.needs_client()
        assert Endpoints.BOTH.needs_server()

    def test_one_sided(self):
        assert Endpoints.CLIENT.needs_client()
        assert not Endpoints.CLIENT.needs_server()
        assert Endpoints.SERVER.needs_server()
        assert not Endpoints.SERVER.needs_client()

    def test_any_needs_neither_specifically(self):
        assert not Endpoints.ANY.needs_client()
        assert not Endpoints.ANY.needs_server()


class TestPlacement:
    def test_offload_flag(self):
        assert not Placement.HOST_SOFTWARE.is_offload
        assert Placement.KERNEL_FASTPATH.is_offload
        assert Placement.SMARTNIC.is_offload
        assert Placement.SWITCH.is_offload


class TestResourceVector:
    def test_zero_entries_dropped(self):
        assert ResourceVector({"a": 0, "b": 1}) == ResourceVector({"b": 1})

    def test_missing_component_reads_zero(self):
        assert ResourceVector({"a": 1})["b"] == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector({"a": -1})

    def test_addition(self):
        total = ResourceVector(a=1, b=2) + ResourceVector(b=3, c=4)
        assert total == ResourceVector(a=1, b=5, c=4)

    def test_subtraction(self):
        left = ResourceVector(a=3, b=2) - ResourceVector(a=1, b=2)
        assert left == ResourceVector(a=2)

    def test_subtraction_below_zero_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(a=1) - ResourceVector(a=2)

    def test_fits_within(self):
        capacity = ResourceVector(stages=12, sram=4096)
        assert ResourceVector(stages=12).fits_within(capacity)
        assert not ResourceVector(stages=13).fits_within(capacity)
        assert not ResourceVector(other=1).fits_within(capacity)

    def test_dominant_share(self):
        capacity = ResourceVector(cpu=10, mem=100)
        need = ResourceVector(cpu=5, mem=10)
        assert need.dominant_share(capacity) == pytest.approx(0.5)

    def test_dominant_share_unsatisfiable_resource(self):
        assert ResourceVector(gpu=1).dominant_share(
            ResourceVector(cpu=4)
        ) == float("inf")

    def test_zero_vector(self):
        assert ResourceVector().is_zero
        assert ResourceVector().dominant_share(ResourceVector(a=1)) == 0.0

    def test_scaled(self):
        assert ResourceVector(a=2).scaled(1.5) == ResourceVector(a=3)
        with pytest.raises(ValueError):
            ResourceVector(a=1).scaled(-1)

    def test_wire_roundtrip(self):
        vector = ResourceVector(a=1.5, b=2)
        assert ResourceVector.from_wire(vector.to_wire()) == vector

    def test_hashable(self):
        assert hash(ResourceVector(a=1)) == hash(ResourceVector({"a": 1}))

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=0, max_value=100),
            max_size=3,
        ),
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.floats(min_value=0, max_value=100),
            max_size=3,
        ),
    )
    def test_addition_commutes(self, left, right):
        a, b = ResourceVector(left), ResourceVector(right)
        assert a + b == b + a

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b"]),
            st.floats(min_value=0, max_value=50),
            max_size=2,
        )
    )
    def test_add_then_subtract_roundtrips(self, amounts):
        import math

        vector = ResourceVector(amounts)
        base = ResourceVector(a=100, b=100)
        result = (base + vector) - vector
        for name in ("a", "b"):
            assert math.isclose(result[name], base[name], rel_tol=1e-9)

    @given(
        st.dictionaries(
            st.sampled_from(["a", "b"]),
            st.floats(min_value=0, max_value=10),
            min_size=1,
            max_size=2,
        )
    )
    def test_fits_within_consistent_with_dominant_share(self, amounts):
        need = ResourceVector(amounts)
        capacity = ResourceVector(a=10, b=10)
        fits = need.fits_within(capacity)
        share = need.dominant_share(capacity)
        assert fits == (share <= 1.0 + 1e-9)
