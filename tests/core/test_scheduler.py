"""Tests for multi-resource offload scheduling (§6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DrfScheduler,
    FirstFitScheduler,
    OffloadRequest,
    PriorityScheduler,
    ResourceVector,
)


def req(tenant, name, stages, sram=64, priority=0):
    return OffloadRequest(
        tenant, name, ResourceVector(stages=stages, sram=sram), priority=priority
    )


CAPACITY = ResourceVector(stages=12, sram=4096)


class TestFirstFit:
    def test_grants_in_arrival_order(self):
        allocation = FirstFitScheduler().plan(
            [req("A", "a1", 8), req("B", "b1", 8)], CAPACITY
        )
        assert [r.name for r in allocation.granted] == ["a1"]
        assert [r.name for r in allocation.denied] == ["b1"]

    def test_later_smaller_request_can_still_fit(self):
        allocation = FirstFitScheduler().plan(
            [req("A", "a1", 8), req("B", "b1", 8), req("B", "b2", 4)],
            CAPACITY,
        )
        assert {r.name for r in allocation.granted} == {"a1", "b2"}

    def test_early_arrival_starves_late_tenant(self):
        """The §6 problem: the greedy first tenant takes the whole switch."""
        requests = [req("A", f"a{i}", 4) for i in range(3)] + [
            req("B", "b1", 3),
            req("B", "b2", 3),
        ]
        allocation = FirstFitScheduler().plan(requests, CAPACITY)
        assert allocation.tenants_served() == {"A"}


class TestPriority:
    def test_higher_priority_wins(self):
        allocation = PriorityScheduler().plan(
            [req("A", "low", 8, priority=1), req("B", "high", 8, priority=9)],
            CAPACITY,
        )
        assert [r.name for r in allocation.granted] == ["high"]

    def test_ties_break_by_arrival(self):
        allocation = PriorityScheduler().plan(
            [req("A", "first", 8, priority=5), req("B", "second", 8, priority=5)],
            CAPACITY,
        )
        assert [r.name for r in allocation.granted] == ["first"]

    def test_priorities_alone_cannot_balance(self):
        """The paper: 'Chunnel priorities alone are insufficient'."""
        requests = [req("A", f"a{i}", 4, priority=9) for i in range(3)] + [
            req("B", "b1", 3, priority=8)
        ]
        allocation = PriorityScheduler().plan(requests, CAPACITY)
        assert allocation.tenants_served() == {"A"}


class TestDrf:
    def test_both_tenants_served_under_contention(self):
        requests = [req("A", f"a{i}", 4) for i in range(3)] + [
            req("B", "b1", 3),
            req("B", "b2", 3),
        ]
        allocation = DrfScheduler().plan(requests, CAPACITY)
        assert allocation.tenants_served() == {"A", "B"}

    def test_shares_are_balanced(self):
        requests = [req("A", f"a{i}", 4) for i in range(3)] + [
            req("B", "b1", 3),
            req("B", "b2", 3),
        ]
        allocation = DrfScheduler().plan(requests, CAPACITY)
        share_a = allocation.tenant_share("A", CAPACITY)
        share_b = allocation.tenant_share("B", CAPACITY)
        assert abs(share_a - share_b) < 0.35  # far better than starvation

    def test_single_tenant_gets_everything_that_fits(self):
        requests = [req("A", f"a{i}", 4) for i in range(4)]
        allocation = DrfScheduler().plan(requests, CAPACITY)
        assert len(allocation.granted) == 3  # 12 stages / 4 each

    def test_fairness_cap_reserves_headroom(self):
        scheduler = DrfScheduler(fairness_cap=0.5)
        requests = [req("A", f"a{i}", 4) for i in range(3)]
        allocation = scheduler.plan(requests, CAPACITY)
        share = allocation.tenant_share("A", CAPACITY)
        assert share <= 0.5 + 1e-9

    def test_requests_within_tenant_granted_in_order(self):
        requests = [req("A", "a1", 2), req("A", "a2", 2), req("A", "a3", 2)]
        allocation = DrfScheduler().plan(requests, CAPACITY)
        assert [r.name for r in allocation.granted] == ["a1", "a2", "a3"]

    def test_admit_respects_capacity(self):
        scheduler = DrfScheduler()
        assert scheduler.admit(
            None, "A", ResourceVector(stages=4), CAPACITY, ResourceVector()
        )
        assert not scheduler.admit(
            None,
            "A",
            ResourceVector(stages=4),
            CAPACITY,
            ResourceVector(stages=10),
        )

    def test_admit_fairness_cap(self):
        scheduler = DrfScheduler(fairness_cap=0.25)
        assert not scheduler.admit(
            None, "A", ResourceVector(stages=6), CAPACITY, ResourceVector()
        )


class TestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A", "B", "C"]),
                st.integers(min_value=1, max_value=6),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=10,
        )
    )
    def test_no_scheduler_overcommits(self, raw_requests):
        requests = [
            req(tenant, f"r{i}", stages, priority=priority)
            for i, (tenant, stages, priority) in enumerate(raw_requests)
        ]
        for scheduler in (
            FirstFitScheduler(),
            PriorityScheduler(),
            DrfScheduler(),
        ):
            allocation = scheduler.plan(list(requests), CAPACITY)
            assert allocation.in_use.fits_within(CAPACITY)
            granted_and_denied = len(allocation.granted) + len(allocation.denied)
            assert granted_and_denied == len(requests)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A", "B"]),
                st.integers(min_value=1, max_value=6),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_drf_serves_at_least_as_many_tenants_as_first_fit(self, raw):
        requests = [
            req(tenant, f"r{i}", stages) for i, (tenant, stages) in enumerate(raw)
        ]
        drf = DrfScheduler().plan(list(requests), CAPACITY)
        first_fit = FirstFitScheduler().plan(list(requests), CAPACITY)
        assert len(drf.tenants_served()) >= len(first_fit.tenants_served())


class _FakeMeta:
    def __init__(self, priority, stages=2):
        self.priority = priority
        self.resources = ResourceVector(stages=stages)


class _FakeRecord:
    def __init__(self, priority, stages=2):
        self.meta = _FakeMeta(priority, stages)


class _FakeLease:
    def __init__(self, granted_at):
        self.granted_at = granted_at


def lease_pair(priority, stages=2, granted_at=0.0):
    return (_FakeLease(granted_at), _FakeRecord(priority, stages))


class TestDrfDeniedOrdering:
    """Regression: denied must come back in arrival order, not in
    tenant-dict insertion order (a determinism hazard for bit-identical
    CI exports)."""

    def test_denied_in_arrival_order_across_tenants(self):
        # Interleaved arrivals from two tenants, none of which fit after
        # the first two grants; the tail must preserve arrival order.
        requests = [
            req("B", "b1", 6),
            req("A", "a1", 6),
            req("B", "b2", 6),
            req("A", "a2", 6),
            req("B", "b3", 6),
        ]
        allocation = DrfScheduler().plan(requests, CAPACITY)
        assert [r.name for r in allocation.denied] == ["b2", "a2", "b3"]

    def test_denied_order_independent_of_tenant_first_seen(self):
        # Same multiset of requests, different tenant-dict insertion
        # history: the denied list must order by arrival in both.
        base = [
            req("A", "a1", 6),
            req("B", "b1", 6),
            req("A", "a2", 6),
            req("B", "b2", 6),
        ]
        flipped = [base[1], base[0], base[3], base[2]]
        denied_base = [
            r.name for r in DrfScheduler().plan(base, CAPACITY).denied
        ]
        denied_flipped = [
            r.name for r in DrfScheduler().plan(flipped, CAPACITY).denied
        ]
        assert denied_base == ["a2", "b2"]
        assert denied_flipped == ["b2", "a2"]

    def test_same_input_same_output(self):
        requests = [
            req("C", "c1", 4),
            req("A", "a1", 4),
            req("B", "b1", 4),
            req("C", "c2", 4),
            req("A", "a2", 4),
            req("B", "b2", 4),
        ]
        first = DrfScheduler().plan(list(requests), CAPACITY)
        second = DrfScheduler().plan(list(requests), CAPACITY)
        assert [r.name for r in first.granted] == [
            r.name for r in second.granted
        ]
        assert [r.name for r in first.denied] == [
            r.name for r in second.denied
        ]


class TestSelectVictims:
    """Edge cases of priority-based preemption (§6)."""

    CAP = ResourceVector(stages=4)

    def test_preempts_lower_priority_when_it_frees_enough(self):
        scheduler = PriorityScheduler()
        requester = _FakeRecord(priority=90, stages=2)
        leases = [lease_pair(priority=10, stages=2, granted_at=1.0)]
        victims = scheduler.select_victims(
            requester,
            "tenant-b",
            ResourceVector(stages=2),
            self.CAP,
            ResourceVector(stages=4),
            leases,
        )
        assert victims == [leases[0][0]]

    def test_no_victims_when_eviction_still_insufficient(self):
        # Freeing every lower-priority lease still would not fit the
        # request: nobody should be evicted for nothing.
        scheduler = PriorityScheduler()
        requester = _FakeRecord(priority=90, stages=4)
        leases = [
            lease_pair(priority=10, stages=1, granted_at=1.0),
            lease_pair(priority=20, stages=1, granted_at=2.0),
        ]
        victims = scheduler.select_victims(
            requester,
            "tenant-b",
            ResourceVector(stages=6),
            self.CAP,
            ResourceVector(stages=4),
            leases,
        )
        assert victims == []

    def test_equal_priority_never_evicted(self):
        scheduler = PriorityScheduler()
        requester = _FakeRecord(priority=50, stages=2)
        leases = [
            lease_pair(priority=50, stages=2, granted_at=1.0),
            lease_pair(priority=50, stages=2, granted_at=2.0),
        ]
        victims = scheduler.select_victims(
            requester,
            "tenant-b",
            ResourceVector(stages=2),
            self.CAP,
            ResourceVector(stages=4),
            leases,
        )
        assert victims == []

    def test_evicts_least_important_first(self):
        scheduler = PriorityScheduler()
        requester = _FakeRecord(priority=90, stages=2)
        low = lease_pair(priority=10, stages=2, granted_at=5.0)
        mid = lease_pair(priority=40, stages=2, granted_at=1.0)
        victims = scheduler.select_victims(
            requester,
            "tenant-b",
            ResourceVector(stages=2),
            self.CAP,
            ResourceVector(stages=4),
            [mid, low],
        )
        # The priority-10 lease goes first and already frees enough.
        assert victims == [low[0]]
