"""Tests for the Chunnel stack: stage order, fan shapes, charge semantics."""

import pytest

from repro.core import ChunnelStack, Message, Role
from repro.core.chunnel import ChunnelImpl, ChunnelStage, ImplMeta
from repro.core.scope import Endpoints, Placement, Scope
from repro.sim import Environment


class _Impl(ChunnelImpl):
    meta = ImplMeta(
        chunnel_type="test",
        name="t",
        scope=Scope.GLOBAL,
        endpoints=Endpoints.BOTH,
        placement=Placement.HOST_SOFTWARE,
    )

    def __init__(self):  # bypass spec plumbing for unit tests
        self.spec = None
        self.location = None


class Tag(ChunnelStage):
    """Appends its label to the payload on both paths."""

    def __init__(self, label, charge=0.0):
        super().__init__(_Impl(), Role.CLIENT)
        self.label = label
        self.charge_amount = charge

    def on_send(self, msg):
        msg.payload = msg.payload + f">{self.label}"
        if self.charge_amount:
            self.charge(self.charge_amount)
        return [msg]

    def on_recv(self, msg):
        msg.payload = msg.payload + f"<{self.label}"
        return [msg]


class Splitter(ChunnelStage):
    """1→2 on send."""

    def __init__(self):
        super().__init__(_Impl(), Role.CLIENT)

    def on_send(self, msg):
        left, right = msg.copy(), msg.copy()
        left.payload += ":L"
        right.payload += ":R"
        return [left, right]


class Absorber(ChunnelStage):
    """Consumes everything on receive."""

    def __init__(self):
        super().__init__(_Impl(), Role.CLIENT)
        self.absorbed = 0

    def on_recv(self, msg):
        self.absorbed += 1
        return []


def build(stages):
    env = Environment()
    sent = []
    delivered = []
    stack = ChunnelStack(
        env,
        stages,
        transmit=lambda msg, delay: sent.append((msg, delay)),
        deliver=delivered.append,
    )
    return env, stack, sent, delivered


class TestSendPath:
    def test_stages_run_top_to_bottom(self):
        _env, stack, sent, _ = build([Tag("a"), Tag("b")])
        stack.send(Message(payload=""))
        assert sent[0][0].payload == ">a>b"

    def test_fanout_continues_down(self):
        _env, stack, sent, _ = build([Splitter(), Tag("x")])
        stack.send(Message(payload="m"))
        assert [m.payload for m, _ in sent] == ["m:L>x", "m:R>x"]

    def test_charge_applied_to_first_transmission_only(self):
        _env, stack, sent, _ = build([Splitter(), Tag("x", charge=5e-6)])
        stack.send(Message(payload="m"))
        delays = [delay for _m, delay in sent]
        assert delays[0] == pytest.approx(10e-6)  # two messages through Tag
        assert delays[1] == 0.0

    def test_send_from_skips_upper_stages(self):
        _env, stack, sent, _ = build([Tag("upper"), Tag("lower")])
        stack.send_from(1, Message(payload=""))
        assert sent[0][0].payload == ">lower"


class TestReceivePath:
    def test_stages_run_bottom_to_top(self):
        env, stack, _sent, _delivered = build([Tag("a"), Tag("b")])
        messages, _charge = stack.receive(Message(payload=""))
        assert messages[0].payload == "<b<a"

    def test_receive_collects_instead_of_delivering(self):
        env, stack, _sent, delivered = build([Tag("a")])
        messages, _ = stack.receive(Message(payload=""))
        assert len(messages) == 1
        assert delivered == []  # caller decides when to deliver

    def test_absorber_stops_propagation(self):
        env, stack, _sent, _ = build([Tag("top"), Absorber()])
        messages, _ = stack.receive(Message(payload=""))
        assert messages == []

    def test_receive_returns_accumulated_charge(self):
        class Coster(Tag):
            def on_recv(self, msg):
                self.charge(3e-6)
                return [msg]

        env, stack, _sent, _ = build([Coster("c")])
        _messages, charge = stack.receive(Message(payload=""))
        assert charge == pytest.approx(3e-6)

    def test_spontaneous_deliver_above_goes_to_deliver(self):
        env, stack, _sent, delivered = build([Tag("a")])
        stage = stack.stages[0]
        stage.deliver_above(Message(payload="late"))
        assert [m.payload for m in delivered] == ["late"]

    def test_send_below_during_receive_preserves_pump_charge(self):
        """The Figure 5 fallback-sharder property: forwarding from inside
        receive processing must not consume the receive thread's charge."""

        class Forwarder(ChunnelStage):
            def __init__(self):
                super().__init__(_Impl(), Role.SERVER)

            def on_recv(self, msg):
                self.charge(8e-6)
                self.send_below(msg.copy())
                return []

        env, stack, sent, _ = build([Forwarder()])
        _messages, charge = stack.receive(Message(payload="req"))
        assert charge == pytest.approx(8e-6)  # pump still busy
        assert sent[0][1] == pytest.approx(8e-6)  # forward delayed too


class TestLifecycle:
    def test_start_and_stop_reach_every_stage(self):
        events = []

        class Tracker(Tag):
            def start(self):
                events.append(f"start:{self.label}")

            def stop(self):
                events.append(f"stop:{self.label}")

        _env, stack, _s, _d = build([Tracker("1"), Tracker("2")])
        stack.start()
        stack.stop()
        assert events == ["start:1", "start:2", "stop:2", "stop:1"]

    def test_negative_charge_rejected(self):
        _env, stack, _s, _d = build([Tag("a")])
        with pytest.raises(ValueError):
            stack.charge(-1)
