"""Unit tests for the shared reliable-RPC core (:mod:`repro.core.rpc`).

The three control-plane dialects (negotiation, discovery, reconfiguration)
all ride this one loop; these tests pin its contract directly — timing
policy, stats accounting, reply caching, and the two wait flavours —
independent of any protocol on top.
"""

import random

import pytest

from repro.core import rpc
from repro.errors import ConnectionTimeoutError, DeadlineExceeded
from repro.sim import Address, Network, UdpSocket
from repro.sim.eventloop import Event

from ..conftest import run


class TestRetryPolicy:
    def test_parameters_validated(self):
        with pytest.raises(ValueError, match="timeout must be positive"):
            rpc.RetryPolicy(timeout=0, retries=3)
        with pytest.raises(ValueError, match="retries must be >= 1"):
            rpc.RetryPolicy(timeout=1e-3, retries=0)
        with pytest.raises(ValueError, match="backoff must be >= 1"):
            rpc.RetryPolicy(timeout=1e-3, retries=3, backoff=0.5)
        with pytest.raises(ValueError, match="jitter must be in"):
            rpc.RetryPolicy(timeout=1e-3, retries=3, jitter=1.0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = rpc.RetryPolicy(
            timeout=1e-3, retries=8, backoff=2.0, max_timeout=4e-3
        )
        timeouts = [policy.attempt_timeout(n) for n in range(5)]
        assert timeouts == [1e-3, 2e-3, 4e-3, 4e-3, 4e-3]

    def test_no_backoff_means_flat_timeouts(self):
        policy = rpc.RetryPolicy(timeout=2e-4, retries=4)
        assert [policy.attempt_timeout(n) for n in range(4)] == [2e-4] * 4

    def test_jitter_needs_an_rng(self):
        # Jitter without a caller-supplied RNG is a no-op: determinism is
        # opt-in per caller, never ambient.
        policy = rpc.RetryPolicy(timeout=1e-3, retries=3, jitter=0.5)
        assert policy.attempt_timeout(0) == 1e-3
        assert policy.attempt_timeout(0, None) == 1e-3

    def test_jitter_bounded_and_deterministic(self):
        policy = rpc.RetryPolicy(timeout=1e-3, retries=3, jitter=0.25)
        first = [
            policy.attempt_timeout(n, random.Random(7)) for n in range(10)
        ]
        second = [
            policy.attempt_timeout(n, random.Random(7)) for n in range(10)
        ]
        assert first == second
        for value in first:
            assert 0.75e-3 <= value <= 1.25e-3


class TestReplyCache:
    def test_put_get_contains_len(self):
        cache = rpc.ReplyCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert "b" not in cache
        assert cache.get("b") is None
        assert len(cache) == 1

    def test_fifo_eviction_past_limit(self):
        cache = rpc.ReplyCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert len(cache) == 2

    def test_clear_empties(self):
        cache = rpc.ReplyCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and "a" not in cache

    def test_limit_validated(self):
        with pytest.raises(ValueError, match="cache limit must be >= 1"):
            rpc.ReplyCache(0)

    def test_retransmit_replay_moves_entry_to_back(self):
        # A retransmitted request re-caches its reply under the same key.
        # The re-put must refresh the eviction position: a hot, still-
        # retransmitting request outlives entries nobody has asked about
        # since (the old insertion-order behaviour evicted the hot entry
        # first, replaying nothing exactly when replay mattered most).
        cache = rpc.ReplyCache(2)
        cache.put("req-1", "reply-1")
        cache.put("req-2", "reply-2")
        cache.put("req-1", "reply-1")  # retransmit replay: now hottest
        cache.put("req-3", "reply-3")
        assert "req-2" not in cache  # coldest — nobody re-asked
        assert cache.get("req-1") == "reply-1"
        assert cache.get("req-3") == "reply-3"

    def test_replay_lookup_does_not_affect_eviction(self):
        cache = rpc.ReplyCache(2)
        cache.put("req-1", "reply-1")
        cache.put("req-2", "reply-2")
        assert cache.get("req-1") == "reply-1"  # dedup hit on retransmit
        cache.put("req-3", "reply-3")
        assert "req-1" not in cache  # get() reads; only put() refreshes
        assert "req-2" in cache and "req-3" in cache

    def test_replayed_value_updates_in_place(self):
        cache = rpc.ReplyCache(4)
        cache.put("req-1", "reply-a")
        cache.put("req-1", "reply-b")
        assert cache.get("req-1") == "reply-b"
        assert len(cache) == 1

    def test_cached_none_distinguishable_from_miss(self):
        # Handlers whose legitimate verdict is None (fire-and-forget
        # releases) need a real miss test: get(key, MISSING).
        cache = rpc.ReplyCache(2)
        cache.put("req-1", None)
        assert cache.get("req-1") is None
        assert cache.get("req-1", rpc.MISSING) is None
        assert cache.get("req-2", rpc.MISSING) is rpc.MISSING

    def test_retransmit_after_eviction_is_a_miss_not_a_replay(self):
        # Regression: once an entry is evicted, a late retransmission must
        # read as a miss (re-execute) rather than replay a neighbour's
        # verdict or a stale default.
        cache = rpc.ReplyCache(2)
        cache.put("req-1", "reply-1")
        cache.put("req-2", "reply-2")
        cache.put("req-3", "reply-3")  # evicts req-1
        assert cache.get("req-1", rpc.MISSING) is rpc.MISSING


class TestCall:
    """Drive ``rpc.call`` with hand-rolled wait callables: the contract is
    send → bounded wait → retry → matched reply or exhaustion."""

    def setup_method(self):
        self.env = Network().env
        self.stats = rpc.RpcStats()
        self.sent = []

    def send(self, attempt):
        self.sent.append(attempt)

    def wait_after(self, answered_attempt, reply="pong"):
        def wait(attempt, timeout):
            yield self.env.timeout(min(timeout, 1e-6))
            return reply if attempt >= answered_attempt else None

        return wait

    def test_first_attempt_success(self):
        policy = rpc.RetryPolicy(timeout=1e-3, retries=3)

        def scenario(env):
            return (
                yield from rpc.call(
                    env, policy, self.send, self.wait_after(0),
                    stats=self.stats,
                )
            )

        assert run(self.env, scenario(self.env)) == "pong"
        assert self.sent == [0]
        assert (self.stats.round_trips, self.stats.retransmits_total) == (1, 0)
        assert self.stats.failures_total == 0

    def test_retries_are_tagged_and_counted(self):
        policy = rpc.RetryPolicy(timeout=1e-4, retries=5)

        def scenario(env):
            return (
                yield from rpc.call(
                    env, policy, self.send, self.wait_after(2),
                    stats=self.stats,
                )
            )

        assert run(self.env, scenario(self.env)) == "pong"
        assert self.sent == [0, 1, 2]  # every attempt carries its tag
        assert (self.stats.round_trips, self.stats.retransmits_total) == (1, 2)

    def test_exhaustion_raises_with_describe_text(self):
        policy = rpc.RetryPolicy(timeout=1e-4, retries=3)

        def scenario(env):
            yield from rpc.call(
                env, policy, self.send, self.wait_after(99),
                stats=self.stats, describe="probe of unit-under-test",
            )

        with pytest.raises(
            ConnectionTimeoutError,
            match="probe of unit-under-test: no answer after 3 attempts",
        ):
            run(self.env, scenario(self.env))
        assert self.sent == [0, 1, 2]
        assert self.stats.failures_total == 1
        assert self.stats.round_trips == 0

    def test_wait_may_abort_early_by_raising(self):
        policy = rpc.RetryPolicy(timeout=1e-3, retries=5)

        def refusing_wait(attempt, timeout):
            yield self.env.timeout(1e-6)
            raise RuntimeError("peer said no")

        def scenario(env):
            yield from rpc.call(env, policy, self.send, refusing_wait)

        with pytest.raises(RuntimeError, match="peer said no"):
            run(self.env, scenario(self.env))
        assert self.sent == [0]  # no retransmit after a hard refusal


class TestEventWaiter:
    def test_late_event_is_caught_by_a_retry_window(self):
        env = Network().env
        stats = rpc.RpcStats()
        event = Event(env)
        policy = rpc.RetryPolicy(timeout=1e-4, retries=8)

        def deliverer(env):
            yield env.timeout(2.5e-4)  # lands inside attempt 2's window
            event.succeed("ack")

        env.process(deliverer(env))

        def scenario(env):
            return (
                yield from rpc.call(
                    env, policy, lambda attempt: None,
                    rpc.event_waiter(env, event), stats=stats,
                )
            )

        assert run(env, scenario(env)) == "ack"
        assert stats.round_trips == 1
        assert stats.retransmits_total == 2

    def test_never_fired_event_exhausts(self):
        env = Network().env
        event = Event(env)
        policy = rpc.RetryPolicy(timeout=1e-4, retries=2)

        def scenario(env):
            yield from rpc.call(
                env, policy, lambda attempt: None,
                rpc.event_waiter(env, event), describe="ack wait",
            )

        with pytest.raises(ConnectionTimeoutError, match="ack wait"):
            run(env, scenario(env))


class TestDeadline:
    """End-to-end deadline budgets (PROTOCOL.md §9): the policy's
    relative budget and the caller's absolute one merge into a single
    elapsed-time limit across every retry."""

    def setup_method(self):
        self.env = Network().env
        self.stats = rpc.RpcStats()

    def never(self, attempt, timeout):
        yield self.env.timeout(timeout)
        return None

    def test_policy_deadline_must_cover_one_attempt(self):
        with pytest.raises(ValueError, match="deadline must cover"):
            rpc.RetryPolicy(timeout=1e-3, retries=3, deadline=5e-4)
        rpc.RetryPolicy(timeout=1e-3, retries=3, deadline=1e-3)

    def test_relative_policy_deadline_stops_retries_early(self):
        # Ten 1ms attempts would take 10ms; a 2.5ms budget allows three.
        policy = rpc.RetryPolicy(timeout=1e-3, retries=10, deadline=2.5e-3)

        def scenario(env):
            yield from rpc.call(
                env, policy, lambda attempt: None, self.never,
                stats=self.stats, describe="budgeted",
            )

        with pytest.raises(DeadlineExceeded) as excinfo:
            run(self.env, scenario(self.env))
        error = excinfo.value
        assert isinstance(error, ConnectionTimeoutError)
        assert error.attempts == 3
        assert error.elapsed == pytest.approx(2.5e-3)
        assert self.env.now == pytest.approx(2.5e-3)
        assert self.stats.failures_total == 1

    def test_absolute_deadline_clamps_the_final_wait(self):
        policy = rpc.RetryPolicy(timeout=1e-3, retries=10)

        def scenario(env):
            yield env.timeout(1e-3)  # deadline is absolute, not relative
            yield from rpc.call(
                env, policy, lambda attempt: None, self.never,
                stats=self.stats, deadline=env.now + 1.5e-3,
            )

        with pytest.raises(DeadlineExceeded) as excinfo:
            run(self.env, scenario(self.env))
        assert excinfo.value.attempts == 2
        assert self.env.now == pytest.approx(2.5e-3)

    def test_tighter_of_policy_and_call_deadline_wins(self):
        policy = rpc.RetryPolicy(timeout=1e-3, retries=10, deadline=8e-3)

        def scenario(env):
            yield from rpc.call(
                env, policy, lambda attempt: None, self.never,
                stats=self.stats, deadline=2e-3,
            )

        with pytest.raises(DeadlineExceeded):
            run(self.env, scenario(self.env))
        assert self.env.now == pytest.approx(2e-3)

    def test_reply_inside_the_budget_is_unaffected(self):
        policy = rpc.RetryPolicy(timeout=1e-3, retries=10, deadline=5e-3)

        def answered(attempt, timeout):
            yield self.env.timeout(min(timeout, 1e-5))
            return "pong" if attempt >= 1 else None

        def scenario(env):
            return (
                yield from rpc.call(
                    env, policy, lambda attempt: None, answered,
                    stats=self.stats, deadline=env.now + 5e-3,
                )
            )

        assert run(self.env, scenario(self.env)) == "pong"
        assert self.stats.failures_total == 0
        assert self.stats.round_trips == 1


class TestSocketWaiter:
    def make_net(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_switch("sw")
        net.add_link("a", "sw", latency=5e-6)
        net.add_link("b", "sw", latency=5e-6)
        return net

    def test_matched_datagram_returned(self):
        net = self.make_net()
        caller = UdpSocket(net.hosts["a"], 5000)
        responder = UdpSocket(net.hosts["b"], 5001)
        policy = rpc.RetryPolicy(timeout=1e-3, retries=3)

        def serve(env):
            request = yield responder.recv()
            responder.send({"echo": request.payload}, request.src, size=64)

        net.env.process(serve(net.env))

        def match(dgram, attempt):
            return dgram.payload

        def scenario(env):
            send = lambda attempt: caller.send(
                "ping", Address("b", 5001), size=64
            )
            return (
                yield from rpc.call(
                    env, policy, send, rpc.socket_waiter(env, caller, match)
                )
            )

        assert run(net.env, scenario(net.env)) == {"echo": "ping"}

    def test_mismatch_wastes_window_then_retry_succeeds(self):
        # A non-matching datagram consumes the attempt (the pre-refactor
        # one-reply-per-window semantics); the retry gets the real answer.
        net = self.make_net()
        caller = UdpSocket(net.hosts["a"], 5000)
        responder = UdpSocket(net.hosts["b"], 5001)
        policy = rpc.RetryPolicy(timeout=5e-4, retries=4)
        stats = rpc.RpcStats()

        def serve(env):
            request = yield responder.recv()
            responder.send("noise", request.src, size=64)
            yield responder.recv()
            responder.send("answer", request.src, size=64)

        net.env.process(serve(net.env))

        def match(dgram, attempt):
            return dgram.payload if dgram.payload == "answer" else None

        def scenario(env):
            send = lambda attempt: caller.send(
                "ping", Address("b", 5001), size=64
            )
            return (
                yield from rpc.call(
                    env, policy, send,
                    rpc.socket_waiter(env, caller, match), stats=stats,
                )
            )

        assert run(net.env, scenario(net.env)) == "answer"
        assert stats.retransmits_total >= 1
