"""SplitProxy: mid-path connection stitching (the split-connection scenario)."""

from repro.chunnels import Reliable, ReliableFallback, Serialize, SerializeFallback
from repro.core import Runtime, SplitProxy, wrap
from repro.discovery import DiscoveryService
from repro.sim import Address, Network

from ..conftest import run


def build_world(direct_timeout=2e-3, near_timeout=120e-6):
    """cl — swA — px — swB — srv, discovery on swA; returns the pieces."""
    net = Network()
    for name in ("cl", "px", "srv", "dsc"):
        net.add_host(name)
    net.add_switch("swA")
    net.add_switch("swB")
    net.add_link("cl", "swA", latency=5e-6)
    net.add_link("swA", "px", latency=5e-6)
    net.add_link("px", "swB", latency=50e-6)
    net.add_link("swB", "srv", latency=50e-6)
    net.add_link("dsc", "swA", latency=5e-6)
    disc = DiscoveryService(net.hosts["dsc"])

    def runtime(name):
        rt = Runtime(net.entity(name), discovery=disc.address)
        rt.register_chunnel(SerializeFallback)
        rt.register_chunnel(ReliableFallback)
        return rt

    cl_rt, px_rt, srv_rt = runtime("cl"), runtime("px"), runtime("srv")
    server_dag = wrap(Serialize() >> Reliable(timeout=direct_timeout))
    listener = srv_rt.new("sp-srv", server_dag).listen(port=7500)
    down_dag = wrap(Serialize() >> Reliable(timeout=near_timeout))
    proxy = SplitProxy(
        px_rt, "sp", Address("srv", 7500), down_dag, port=7600
    )
    return net, cl_rt, listener, proxy


class TestSplitProxy:
    def _echo_n(self, n):
        net, cl_rt, listener, proxy = build_world()
        env = net.env
        replies = []

        def serve():
            conn = yield listener.accept()
            while True:
                msg = yield conn.recv()
                conn.send(msg.payload, dst=msg.src)

        def driver():
            yield env.timeout(1e-3)
            conn = yield from cl_rt.new("sp-cl").connect(Address("px", 7600))
            for index in range(n):
                conn.send({"id": index})
                reply = yield conn.recv()
                replies.append(reply.payload["id"])

        env.process(serve(), name="sp.serve")
        env.process(driver(), name="sp.driver")
        env.run(until=0.5)
        return net, proxy, replies

    def test_stitches_and_relays_both_directions(self):
        net, proxy, replies = self._echo_n(10)
        assert replies == list(range(10))
        assert proxy.splits == 1
        assert proxy.relayed_upstream == 10
        assert proxy.relayed_downstream == 10
        assert proxy.upstream_failures == 0
        assert proxy.relay_no_destination == 0

    def test_counters_are_observable(self):
        net, proxy, _replies = self._echo_n(3)
        snapshot = net.obs.snapshot().as_dict()
        prefix = "splitproxy.px.sp"
        assert snapshot[f"{prefix}.splits"] == 1
        assert snapshot[f"{prefix}.relayed_upstream"] == 3
        assert snapshot[f"{prefix}.relayed_downstream"] == 3

    def test_stitch_is_traced(self):
        net, proxy, _replies = self._echo_n(1)
        stitched = [
            span
            for span in net.trace.select(phase="splitproxy")
            if span.attrs.get("action") == "stitched"
        ]
        assert len(stitched) == 1

    def test_address_reports_the_listen_port(self):
        net, _cl_rt, _listener, proxy = build_world()
        assert proxy.address == Address("px", 7600)

    def test_segments_negotiate_their_own_timers(self):
        # The proxy's listener DAG dictates the downstream Reliable timer
        # (the proxy is that segment's server); the origin server's DAG
        # dictates the upstream one — per-segment recovery, the point of
        # splitting.
        net, cl_rt, listener, proxy = build_world(
            direct_timeout=2e-3, near_timeout=120e-6
        )
        env = net.env
        conns = {}

        def serve():
            conns["up"] = yield listener.accept()

        def driver():
            yield env.timeout(1e-3)
            conns["down"] = yield from cl_rt.new("sp-cl").connect(
                Address("px", 7600)
            )
            conns["down"].send({"id": 0})

        env.process(serve(), name="sp.serve")
        env.process(driver(), name="sp.driver")
        env.run(until=0.1)

        down_rel = next(
            spec
            for spec in conns["down"].dag.nodes.values()
            if spec.type_name == "reliable"
        )
        up_rel = next(
            spec
            for spec in conns["up"].dag.nodes.values()
            if spec.type_name == "reliable"
        )
        assert down_rel.args["timeout"] == 120e-6
        assert up_rel.args["timeout"] == 2e-3
