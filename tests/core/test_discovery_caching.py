"""Tests for client-side discovery caching (the ablation knob)."""

import pytest

from repro.sim import Address

from ..conftest import run


def echo(world, runtime, port=7000, service_name=None):
    listener = runtime.new("echo").listen(port=port, service_name=service_name)

    def serve(env):
        while True:
            conn = yield listener.accept()

            def handle(env, conn=conn):
                while not conn.closed:
                    msg = yield conn.recv()
                    conn.send(msg.payload, size=msg.size, dst=msg.src)

            env.process(handle(env))

    world.env.process(serve(world.env))
    return listener


class TestClientDiscoveryCache:
    def test_default_queries_every_connect(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        echo(two_hosts, server_rt)

        def scenario(env):
            yield env.timeout(1e-4)
            for _ in range(3):
                conn = yield from client_rt.new("c").connect(Address("srv", 7000))
                conn.close()
            return client_rt.discovery.round_trips

        assert run(two_hosts.env, scenario(two_hosts.env)) == 3

    def test_cache_skips_repeat_queries(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl", client_discovery_ttl=10.0)
        echo(two_hosts, server_rt)

        def scenario(env):
            yield env.timeout(1e-4)
            for _ in range(3):
                conn = yield from client_rt.new("c").connect(Address("srv", 7000))
                conn.close()
            return client_rt.discovery.round_trips

        assert run(two_hosts.env, scenario(two_hosts.env)) == 1

    def test_cache_expires_after_ttl(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl", client_discovery_ttl=0.5)
        echo(two_hosts, server_rt)

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.close()
            yield env.timeout(1.0)  # beyond the TTL
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.close()
            return client_rt.discovery.round_trips

        assert run(two_hosts.env, scenario(two_hosts.env)) == 2

    def test_cached_connects_are_faster(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl", client_discovery_ttl=10.0)
        echo(two_hosts, server_rt)

        def scenario(env):
            yield env.timeout(1e-4)
            start = env.now
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            first = env.now - start
            conn.close()
            start = env.now
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            second = env.now - start
            conn.close()
            return first, second

        first, second = run(two_hosts.env, scenario(two_hosts.env))
        assert second < first * 0.7  # one control RTT cheaper

    def test_cache_keyed_by_service_name(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl", client_discovery_ttl=10.0)
        echo(two_hosts, server_rt, service_name="svc-a")

        def scenario(env):
            yield env.timeout(1e-3)
            conn = yield from client_rt.new("c").connect("svc-a")
            conn.close()
            # A different name must not hit the cached entry.
            try:
                yield from client_rt.new("c").connect("svc-b")
            except Exception:
                pass
            return client_rt.discovery.round_trips

        assert run(two_hosts.env, scenario(two_hosts.env)) == 2
