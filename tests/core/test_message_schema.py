"""Schema-wide properties of the typed control-message registry.

Per-protocol behaviour lives with each subsystem's tests; this file checks
the properties that hold for *every* registered message kind: round-trip
fidelity through the tagged wire encoding, JSON-serialisability, strict
version and field validation, content-derived sizing — and the repo rule
that no production module builds raw ``{"kind": ...}`` control dicts
outside the schema module.
"""

import json
import re
from pathlib import Path

import pytest

from repro.chunnels import Reliable, Serialize
from repro.core import ImplMeta, Offer as ImplOffer, ResourceVector, Scope, wrap
from repro.core import messages as msgs
from repro.core.scope import Endpoints, Placement
from repro.core.wire import WireError, message_size, wire_kind
from repro.sim import Address

REPO_ROOT = Path(__file__).resolve().parents[2]


def impl_offer():
    return ImplOffer(
        meta=ImplMeta(
            chunnel_type="reliable",
            name="sw",
            priority=10,
            scope=Scope.GLOBAL,
            endpoints=Endpoints.BOTH,
            placement=Placement.HOST_SOFTWARE,
            resources=ResourceVector(),
        ),
        origin="client",
        location="srv",
        record_id="rec-1",
    )


def samples():
    """One representative instance per registered message kind, with every
    optional field populated (so round-trips exercise the full schema)."""
    dag = wrap(Serialize() >> Reliable())
    node = dag.topological_order()[0]
    offers = {"reliable": [impl_offer()]}
    messages = [
        msgs.Offer(
            conn_id="c1",
            dag=dag,
            offers=offers,
            client_entity="cl",
            network_offers=offers,
        ),
        msgs.Accept(
            conn_id="c1",
            dag=dag,
            choice={node: impl_offer()},
            data_addr=Address("srv", 40001),
            transport="udp",
            params={"window": 4},
            policy_epoch=3,
        ),
        msgs.Resume(
            conn_id="c1",
            dag=dag,
            choice={node: impl_offer()},
            client_entity="cl",
            policy_epoch=3,
        ),
        msgs.ResumeReject(conn_id="c1", reason="policy epoch 3 != 4"),
        msgs.Error(conn_id="c1", error_type="NegotiationError", error="boom"),
        msgs.Hello(conn_id="c1"),
        msgs.Transition(
            conn_id="c1", epoch=2, dag=dag, choice={node: impl_offer()},
            reason="policy",
        ),
        msgs.TransitionAck(conn_id="c1", epoch=2, ok=False, error="refused"),
        msgs.TransitionRequest(conn_id="c1", reason="latency"),
        msgs.Heartbeat(conn_id="c1", seq=4),
        msgs.HeartbeatAck(conn_id="c1", seq=4),
        msgs.Migrate(conn_id="c1", epoch=2, client_entity="cl"),
        msgs.MigrateAck(conn_id="c1", epoch=2, ok=False, error="no state"),
        msgs.Query(
            types=["reliable"], service_name="svc", req_id="r1", attempt=1
        ),
        msgs.QueryReply(
            offers=offers, instances=[Address("srv", 7000)],
            req_id="r1", attempt=1,
        ),
        msgs.Reserve(record_id="rec-1", owner="me", req_id="r2", attempt=0),
        msgs.ReserveReply(ok=True, req_id="r2", attempt=0),
        msgs.Release(record_id="rec-1", owner="me", req_id="r3", attempt=0),
        msgs.ReleaseReply(req_id="r3", attempt=0),
        msgs.Watch(
            record_id="rec-1", address=Address("cl", 4001),
            req_id="r4", attempt=0,
        ),
        msgs.WatchReply(req_id="r4", attempt=0),
        msgs.RegisterName(
            name="svc", address=Address("srv", 7000), req_id="r5", attempt=0
        ),
        msgs.RegisterNameReply(req_id="r5", attempt=0),
        msgs.UnregisterName(
            name="svc", address=Address("srv", 7000), req_id="r6", attempt=0
        ),
        msgs.UnregisterNameReply(req_id="r6", attempt=0),
        msgs.ServiceError(error="unsupported", req_id="r7", attempt=0),
        msgs.GetShardMap(req_id="r8", attempt=1),
        msgs.ShardMapReply(
            version=2,
            shards=[
                {
                    "shard_id": 0,
                    "primary": Address("s0a", 7400),
                    "replicas": [Address("s0a", 7400), Address("s0b", 7400)],
                }
            ],
            req_id="r8",
            attempt=1,
        ),
        msgs.Ping(req_id="r9", attempt=0),
        msgs.Pong(ok=True, req_id="r9", attempt=0),
        msgs.Promote(shard_id=1, version=3, req_id="r10", attempt=0),
        msgs.PromoteReply(ok=False, version=3, req_id="r10", attempt=0),
        msgs.Revoked(record_id="rec-1"),
        msgs.LeaseRevoked(record_id="rec-1", owner="me"),
    ]
    return {type(m).KIND: m for m in messages}


ALL_KINDS = sorted(msgs.BY_KIND)


class TestRoundTrip:
    def test_samples_cover_every_registered_kind(self):
        assert set(samples()) == set(msgs.BY_KIND)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_encode_decode_encode_is_identity(self, kind):
        message = samples()[kind]
        encoded = msgs.encode_message(message)
        decoded = msgs.decode_message(encoded)
        assert type(decoded) is msgs.BY_KIND[kind]
        # ChunnelDag has no __eq__, so compare re-encodings instead of
        # the dataclasses themselves: a lossless decode re-encodes to the
        # byte-identical wire form.
        assert msgs.encode_message(decoded) == encoded

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_encoded_form_is_json_tagged_and_versioned(self, kind):
        encoded = msgs.encode_message(samples()[kind])
        json.dumps(encoded)  # raises if any rich object leaked
        assert wire_kind(encoded) == kind
        assert encoded["v"] == msgs.BY_KIND[kind].VERSION


class TestStrictDecode:
    def encoded_hello(self):
        return msgs.encode_message(msgs.Hello(conn_id="c1"))

    def test_missing_version_rejected(self):
        encoded = self.encoded_hello()
        del encoded["v"]
        with pytest.raises(WireError, match="protocol version"):
            msgs.decode_message(encoded)

    def test_newer_version_rejected(self):
        encoded = self.encoded_hello()
        encoded["v"] = msgs.Hello.VERSION + 1
        with pytest.raises(WireError, match="newer than"):
            msgs.decode_message(encoded)

    def test_unknown_field_rejected(self):
        encoded = self.encoded_hello()
        encoded["surprise"] = True
        with pytest.raises(WireError, match="malformed bertha.hello"):
            msgs.decode_message(encoded)

    def test_unknown_kind_rejected(self):
        encoded = self.encoded_hello()
        tag_key = next(k for k, v in encoded.items() if v == "bertha.hello")
        encoded[tag_key] = "bertha.no_such_message"
        with pytest.raises(WireError, match="unknown wire tag"):
            msgs.decode_message(encoded)

    def test_untagged_payloads_rejected(self):
        with pytest.raises(WireError):
            msgs.decode_message({"conn_id": "c1"})
        with pytest.raises(WireError):
            msgs.decode_message("hello")


class TestEpochZeroIsImplicit:
    def test_accept_epoch_zero_omitted_from_the_wire(self):
        """``policy_epoch`` 0 (the never-bumped default) must not appear in
        the encoded form: message sizes are content-derived, so a stamped
        zero would change every establishment timing."""
        accept = samples()["bertha.accept"]
        plain = msgs.Accept(
            conn_id=accept.conn_id,
            dag=accept.dag,
            choice=accept.choice,
            data_addr=accept.data_addr,
            transport=accept.transport,
            params=accept.params,
        )
        encoded = msgs.encode_message(plain)
        assert "policy_epoch" not in encoded
        decoded = msgs.decode_message(encoded)
        assert decoded.policy_epoch == 0

    def test_accept_nonzero_epoch_round_trips(self):
        encoded = msgs.encode_message(samples()["bertha.accept"])
        assert encoded["policy_epoch"] == 3
        assert msgs.decode_message(encoded).policy_epoch == 3


class TestMessageSize:
    def test_small_messages_hit_the_framing_floor(self):
        assert message_size(msgs.encode_message(msgs.Hello(conn_id="c"))) == 64

    def test_size_is_content_derived(self):
        small = msgs.encode_message(msgs.Query(types=["x" * 64]))
        large = msgs.encode_message(msgs.Query(types=["x" * 512]))
        assert message_size(large) > message_size(small) > 64

    def test_same_message_same_size(self):
        one = msgs.encode_message(samples()["bertha.offer"])
        two = msgs.encode_message(samples()["bertha.offer"])
        assert message_size(one) == message_size(two)


class TestNoRawKindLiterals:
    def test_no_raw_kind_dicts_outside_the_schema_module(self):
        """The acceptance criterion of the control-plane unification: no
        production module hand-assembles ``{"kind": ...}`` control dicts —
        everything goes through :mod:`repro.core.messages`."""
        pattern = re.compile(r"""["']kind["']\s*:""")
        offenders = []
        src = REPO_ROOT / "src" / "repro"
        for path in sorted(src.rglob("*.py")):
            if path == src / "core" / "messages.py":
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if pattern.search(line):
                    offenders.append(f"{path.relative_to(REPO_ROOT)}:{lineno}")
        assert offenders == [], (
            "raw control-dict literals outside core/messages.py: "
            + ", ".join(offenders)
        )

    def test_no_raw_kind_strings_outside_the_schema_module(self):
        """Companion gate for the registered kind *names* themselves
        (``bertha.resume``, ``disc.revoked``, ...): production code matches
        on ``SomeMessage.KIND``, never a string literal — otherwise adding
        a message type silently forks the dispatch table."""
        kinds = "|".join(re.escape(kind) for kind in ALL_KINDS)
        pattern = re.compile(rf"""["']({kinds})["']""")
        offenders = []
        src = REPO_ROOT / "src" / "repro"
        for path in sorted(src.rglob("*.py")):
            if path == src / "core" / "messages.py":
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if pattern.search(line):
                    offenders.append(f"{path.relative_to(REPO_ROOT)}:{lineno}")
        assert offenders == [], (
            "raw message-kind string literals outside core/messages.py: "
            + ", ".join(offenders)
        )
