"""Integration tests: Runtime / Endpoint / Listener negotiation (§4)."""

import pytest

from repro.chunnels import (
    LocalOrRemote,
    LocalOrRemoteFallback,
    Reliable,
    ReliableFallback,
    Serialize,
    SerializeAccelerated,
    SerializeFallback,
)
from repro.core import Runtime, wrap
from repro.errors import (
    ConnectionClosedError,
    ConnectionTimeoutError,
    IncompatibleDagError,
    NegotiationError,
    NoImplementationError,
)
from repro.sim import Address

from ..conftest import run


def echo_server(world, runtime, dag=None, port=7000, service_name=None):
    """A one-connection-at-a-time echo server; returns the listener."""
    endpoint = runtime.new("echo", dag)
    listener = endpoint.listen(port=port, service_name=service_name)

    def serve(env):
        while True:
            conn = yield listener.accept()

            def handle(env, conn=conn):
                while not conn.closed:
                    msg = yield conn.recv()
                    conn.send(msg.payload, size=msg.size, dst=msg.src)

            env.process(handle(env))

    world.env.process(serve(world.env))
    return listener


class TestBasicConnect:
    def test_connect_by_address(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        echo_server(two_hosts, server_rt)

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.send(b"hello", size=5)
            reply = yield conn.recv()
            return reply.payload

        assert run(two_hosts.env, client(two_hosts.env)) == b"hello"

    def test_connect_by_service_name(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        echo_server(two_hosts, server_rt, service_name="echo-svc")

        def client(env):
            yield env.timeout(1e-3)
            conn = yield from client_rt.new("c").connect("echo-svc")
            conn.send(b"hi", size=2)
            reply = yield conn.recv()
            return reply.payload

        assert run(two_hosts.env, client(two_hosts.env)) == b"hi"

    def test_unknown_service_name_raises(self, two_hosts):
        client_rt = two_hosts.runtime("cl")

        def client(env):
            yield env.timeout(1e-4)
            yield from client_rt.new("c").connect("ghost-svc")

        with pytest.raises(NegotiationError):
            run(two_hosts.env, client(two_hosts.env))

    def test_connect_to_silent_port_times_out(self, two_hosts):
        client_rt = two_hosts.runtime("cl")

        def client(env):
            yield env.timeout(1e-4)
            yield from client_rt.new("c").connect(
                Address("srv", 9999), timeout=1e-4, retries=2
            )

        with pytest.raises(ConnectionTimeoutError):
            run(two_hosts.env, client(two_hosts.env))

    def test_empty_target_list_rejected(self, two_hosts):
        client_rt = two_hosts.runtime("cl")

        def client(env):
            yield env.timeout(0)
            yield from client_rt.new("c").connect([])

        with pytest.raises(NegotiationError):
            run(two_hosts.env, client(two_hosts.env))


class TestDagNegotiation:
    def test_empty_client_adopts_server_dag(self, two_hosts):
        """Listing 5: the set of Chunnels is dictated by the server."""
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(SerializeFallback)
            rt.register_chunnel(ReliableFallback)
        echo_server(two_hosts, server_rt, dag=wrap(Serialize() >> Reliable()))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            assert conn.dag.chunnel_types() == ["serialize", "reliable"]
            conn.send({"obj": True})
            reply = yield conn.recv()
            return reply.payload

        assert run(two_hosts.env, client(two_hosts.env)) == {"obj": True}

    def test_incompatible_dags_fail(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(SerializeFallback)
            rt.register_chunnel(ReliableFallback)
        echo_server(two_hosts, server_rt, dag=wrap(Serialize()))

        def client(env):
            yield env.timeout(1e-4)
            yield from client_rt.new("c", wrap(Reliable())).connect(
                Address("srv", 7000)
            )

        with pytest.raises(IncompatibleDagError):
            run(two_hosts.env, client(two_hosts.env))

    def test_no_implementation_fails(self, two_hosts):
        """§4.3: the connection fails absent compatible implementations."""
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        # Server wants reliability but only the server registered it: an
        # endpoints::Both chunnel cannot bind.
        server_rt.register_chunnel(ReliableFallback)
        echo_server(two_hosts, server_rt, dag=wrap(Reliable()))

        def client(env):
            yield env.timeout(1e-4)
            yield from client_rt.new("c").connect(Address("srv", 7000))

        with pytest.raises(NoImplementationError):
            run(two_hosts.env, client(two_hosts.env))

    def test_matching_dags_connect(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(ReliableFallback)
        echo_server(two_hosts, server_rt, dag=wrap(Reliable()))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c", wrap(Reliable())).connect(
                Address("srv", 7000)
            )
            conn.send(b"x", size=1)
            yield conn.recv()
            return conn.dag.chunnel_types()

        assert run(two_hosts.env, client(two_hosts.env)) == ["reliable"]


class TestImplementationChoice:
    def test_network_offer_beats_server_fallback(self, two_hosts):
        """Discovery-registered accelerated impls win over fallbacks."""
        two_hosts.discovery.register(SerializeAccelerated.meta, location="srv")
        two_hosts.discovery.register(SerializeAccelerated.meta, location="cl")
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(SerializeFallback)
        echo_server(two_hosts, server_rt, dag=wrap(Serialize()))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            node = conn.dag.find("serialize")[0]
            return type(conn.impls[node]).__name__

        # Client-registered fallback still wins under the default
        # client-first policy; with priority-first, the accelerated one wins.
        assert run(two_hosts.env, client(two_hosts.env)) == "SerializeFallback"

    def test_priority_first_policy_picks_accelerated(self, two_hosts_smartnic):
        from repro.core import PriorityFirstPolicy

        two_hosts = two_hosts_smartnic  # the accelerated impl needs NIC slots
        two_hosts.discovery.register(SerializeAccelerated.meta, location="srv")
        server_rt = two_hosts.runtime("srv", policy=PriorityFirstPolicy())
        client_rt = two_hosts.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(SerializeFallback)
        echo_server(two_hosts, server_rt, dag=wrap(Serialize()))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            node = conn.dag.find("serialize")[0]
            return type(conn.impls[node]).__name__

        assert (
            run(two_hosts.env, client(two_hosts.env)) == "SerializeAccelerated"
        )

    def test_reservation_is_taken_and_released(self, two_hosts_smartnic):
        from repro.core import PriorityFirstPolicy

        two_hosts = two_hosts_smartnic  # the accelerated impl needs NIC slots
        two_hosts.discovery.register(
            SerializeAccelerated.meta, location="srv"
        )
        server_rt = two_hosts.runtime("srv", policy=PriorityFirstPolicy())
        client_rt = two_hosts.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(SerializeFallback)
        listener = echo_server(two_hosts, server_rt, dag=wrap(Serialize()))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            in_use_during = two_hosts.discovery.device_in_use("srv")
            conn.close()
            for server_conn in listener.connections:
                server_conn.close()
            yield env.timeout(1e-3)  # releases are async
            in_use_after = two_hosts.discovery.device_in_use("srv")
            return in_use_during, in_use_after

        during, after = run(two_hosts.env, client(two_hosts.env))
        assert during["nic_slots"] == 1
        assert after.is_zero


class TestLocalFastPath:
    def test_same_host_negotiates_pipes(self, one_host_two_containers):
        world = one_host_two_containers
        server_rt = world.runtime("cb")
        client_rt = world.runtime("ca")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(LocalOrRemoteFallback)
        echo_server(world, server_rt, dag=wrap(LocalOrRemote()))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c", wrap(LocalOrRemote())).connect(
                Address("cb", 7000)
            )
            conn.send(b"x", size=1)
            yield conn.recv()
            return conn.transport

        assert run(world.env, client(world.env)) == "pipe"

    def test_cross_host_stays_on_datagrams(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(LocalOrRemoteFallback)
        echo_server(two_hosts, server_rt, dag=wrap(LocalOrRemote()))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            return conn.transport

        assert run(two_hosts.env, client(two_hosts.env)) == "udp"


class TestConnectionLifecycle:
    def test_send_after_close_raises(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        echo_server(two_hosts, server_rt)

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.close()
            with pytest.raises(ConnectionClosedError):
                conn.send(b"x", size=1)
            return True

        assert run(two_hosts.env, client(two_hosts.env))

    def test_two_clients_get_separate_connections(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = echo_server(two_hosts, server_rt)

        def client(env):
            yield env.timeout(1e-4)
            conn1 = yield from client_rt.new("c1").connect(Address("srv", 7000))
            conn2 = yield from client_rt.new("c2").connect(Address("srv", 7000))
            assert conn1.peer != conn2.peer  # distinct data sockets
            conn1.send(b"1", size=1)
            conn2.send(b"2", size=1)
            first = yield conn1.recv()
            second = yield conn2.recv()
            return first.payload, second.payload

        assert run(two_hosts.env, client(two_hosts.env)) == (b"1", b"2")
        assert len(listener.connections) == 2

    def test_setup_time_includes_two_control_round_trips(self, two_hosts):
        """§5: two extra IPC round trips; no per-message overhead after."""
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        echo_server(two_hosts, server_rt)

        def client(env):
            yield env.timeout(1e-4)
            before = client_rt.discovery.round_trips
            start = env.now
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            setup = env.now - start
            after = client_rt.discovery.round_trips
            start = env.now
            conn.send(b"x", size=1)
            yield conn.recv()
            rtt = env.now - start
            return after - before, setup, rtt

        discovery_rtts, setup, rtt = run(two_hosts.env, client(two_hosts.env))
        assert discovery_rtts == 1  # plus the offer/accept exchange = 2 total
        assert setup == pytest.approx(2 * rtt, rel=0.35)

    def test_listener_close_stops_accepting(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = echo_server(two_hosts, server_rt, service_name="svc")

        def client(env):
            yield env.timeout(1e-3)
            listener.close()
            yield env.timeout(1e-4)
            assert two_hosts.net.names.resolve("svc") == []
            try:
                yield from client_rt.new("c").connect(
                    Address("srv", 7000), timeout=1e-4, retries=2
                )
            except ConnectionTimeoutError:
                return "refused"

        assert run(two_hosts.env, client(two_hosts.env)) == "refused"

    def test_client_retransmission_gets_cached_reply(self, two_hosts):
        """Duplicate offers (client retries) must not create duplicate
        connections."""
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = echo_server(two_hosts, server_rt)

        def client(env):
            yield env.timeout(1e-4)
            # Aggressive timeout forces at least one retransmission; the
            # negotiation must still converge on one connection.
            conn = yield from client_rt.new("c").connect(
                Address("srv", 7000), timeout=30e-6, retries=10
            )
            conn.send(b"x", size=1)
            yield conn.recv()
            return len(listener.connections)

        assert run(two_hosts.env, client(two_hosts.env)) == 1
