"""End-to-end §6 check: the optimizer's PCIe savings on live traffic.

The DAG-optimizer ablation counts crossings analytically; this test sends
real messages over a SmartNIC host and reads the bus counters — the
reorder must cut measured PCIe bytes by the paper's 3×.
"""

import pytest

from repro.chunnels import (
    Encrypt,
    EncryptFallback,
    EncryptSmartNic,
    Http2,
    Http2Fallback,
    Tcp,
    TcpFallback,
    TcpToe,
)
from repro.core import DagOptimizer, PriorityFirstPolicy, Runtime, wrap
from repro.discovery import DiscoveryService
from repro.sim import Address, Network, SmartNic

from ..conftest import run

MESSAGES = 50
SIZE = 1000


def smartnic_world():
    net = Network()
    net.add_host(
        "cl", nic=SmartNic(net.env, name="cl.nic", offload_slots=4)
    )
    net.add_host(
        "srv", nic=SmartNic(net.env, name="srv.nic", offload_slots=4)
    )
    dsc = net.add_host("dsc")
    net.add_switch("tor")
    for name in ("cl", "srv", "dsc"):
        net.add_link(name, "tor", latency=5e-6)
    discovery = DiscoveryService(dsc)
    # The NIC vendor's offloads, registered at both hosts.
    for location in ("cl", "srv"):
        discovery.register(EncryptSmartNic.meta, location=location)
        discovery.register(TcpToe.meta, location=location)
    return net, discovery


def run_pipeline(optimizer):
    net, discovery = smartnic_world()
    server_rt = Runtime(
        net.hosts["srv"],
        discovery=discovery.address,
        policy=PriorityFirstPolicy(),
        optimizer=optimizer,
    )
    client_rt = Runtime(net.hosts["cl"], discovery=discovery.address)
    for rt in (server_rt, client_rt):
        rt.register_chunnel(EncryptFallback)
        rt.register_chunnel(Http2Fallback)
        rt.register_chunnel(TcpFallback)
    dag = wrap(Encrypt() >> Http2() >> Tcp())
    listener = server_rt.new("pipe", dag).listen(port=7000)

    def serve(env):
        conn = yield listener.accept()
        received = 0
        while received < MESSAGES:
            yield conn.recv()
            received += 1

    net.env.process(serve(net.env))

    def client(env):
        yield env.timeout(1e-4)
        conn = yield from client_rt.new("c").connect(Address("srv", 7000))
        for _ in range(MESSAGES):
            conn.send(b"x" * SIZE, size=SIZE)
        yield env.timeout(5e-3)  # drain acks
        return conn.dag.chunnel_types()

    types = run(net.env, client(net.env), until=10.0)
    client_bus = net.hosts["cl"].smartnic.pcie
    return types, client_bus.bytes_moved, client_bus.crossings


class TestLivePcie:
    def test_reorder_cuts_live_pcie_traffic_3x(self):
        unopt_types, unopt_bytes, _ = run_pipeline(optimizer=None)
        opt_types, opt_bytes, _ = run_pipeline(optimizer=DagOptimizer())
        assert unopt_types == ["encrypt", "http2", "tcp"]
        # No TLS impl is registered, so the merge can't bind; pure reorder.
        assert opt_types == ["http2", "encrypt", "tcp"]
        assert unopt_bytes > 0 and opt_bytes > 0
        # Data frames dominate; acks (tiny) dilute the exact 3× slightly.
        assert unopt_bytes / opt_bytes > 2.5

    def test_all_host_pipeline_crosses_once_per_message(self):
        net, discovery = smartnic_world()
        server_rt = Runtime(net.hosts["srv"], discovery=discovery.address)
        client_rt = Runtime(net.hosts["cl"], discovery=discovery.address)
        for rt in (server_rt, client_rt):
            rt.register_chunnel(Http2Fallback)
        listener = server_rt.new("plain", wrap(Http2())).listen(port=7000)

        def serve(env):
            conn = yield listener.accept()
            while True:
                yield conn.recv()

        net.env.process(serve(net.env))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            before = net.hosts["cl"].smartnic.pcie.crossings
            for _ in range(10):
                conn.send(b"x" * 100, size=100)
            return net.hosts["cl"].smartnic.pcie.crossings - before

        crossings = run(net.env, client(net.env))
        assert crossings == 10  # exactly one bus crossing per datagram

    def test_pipe_transport_never_touches_the_bus(self):
        from repro.chunnels import LocalOrRemote, LocalOrRemoteFallback

        net = Network()
        host = net.add_host(
            "box", nic=SmartNic(net.env, name="box.nic")
        )
        host.add_container("ca")
        host.add_container("cb")
        discovery = DiscoveryService(host)
        server_rt = Runtime(net.entity("cb"), discovery=discovery.address)
        client_rt = Runtime(net.entity("ca"), discovery=discovery.address)
        for rt in (server_rt, client_rt):
            rt.register_chunnel(LocalOrRemoteFallback)
        listener = server_rt.new("s", wrap(LocalOrRemote())).listen(port=7000)

        def serve(env):
            conn = yield listener.accept()
            while True:
                yield conn.recv()

        net.env.process(serve(net.env))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("cb", 7000))
            before = host.smartnic.pcie.crossings
            for _ in range(5):
                conn.send(b"local", size=5)
            yield env.timeout(1e-3)
            return conn.transport, host.smartnic.pcie.crossings - before

        transport, crossings = run(net.env, client(net.env))
        assert transport == "pipe"
        assert crossings == 0
