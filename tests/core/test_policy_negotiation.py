"""Tests for registries, policies, and the negotiation decision logic."""

import pytest

from repro.chunnels import (
    Reliable,
    ReliableFallback,
    ReliableToe,
    Serialize,
    SerializeAccelerated,
    SerializeFallback,
)
from repro.core import (
    ChunnelRegistry,
    DefaultPolicy,
    ImplCatalog,
    ImplMeta,
    Offer,
    PolicyContext,
    PreferServerPolicy,
    PriorityFirstPolicy,
    ResourceVector,
    Scope,
    decide,
    feasible_offers,
    wrap,
)
from repro.core.scope import Endpoints, Placement
from repro.errors import (
    NoImplementationError,
    RegistrationError,
    ResourceExhaustedError,
)


def meta(
    name,
    chunnel_type="reliable",
    priority=10,
    scope=Scope.GLOBAL,
    endpoints=Endpoints.BOTH,
    placement=Placement.HOST_SOFTWARE,
    resources=None,
):
    return ImplMeta(
        chunnel_type=chunnel_type,
        name=name,
        priority=priority,
        scope=scope,
        endpoints=endpoints,
        placement=placement,
        resources=resources or ResourceVector(),
    )


def ctx(same_host=False, switches=("tor",)):
    return PolicyContext(
        client_entity="cl",
        server_entity="srv",
        client_host="cl",
        server_host="cl" if same_host else "srv",
        same_host=same_host,
        path_switches=list(switches),
    )


class TestRegistry:
    def test_register_and_offer(self):
        registry = ChunnelRegistry(ImplCatalog())
        registry.register(ReliableFallback)
        offers = registry.offers_for(["reliable"], origin="client")
        assert [o.meta.name for o in offers["reliable"]] == ["sw"]
        assert offers["reliable"][0].origin == "client"

    def test_double_registration_rejected(self):
        registry = ChunnelRegistry(ImplCatalog())
        registry.register(ReliableFallback)
        with pytest.raises(RegistrationError):
            registry.register(ReliableFallback)

    def test_unregister(self):
        registry = ChunnelRegistry(ImplCatalog())
        registry.register(ReliableFallback)
        registry.unregister(ReliableFallback)
        assert not registry.has("reliable", "sw")

    def test_offers_only_for_requested_types(self):
        registry = ChunnelRegistry(ImplCatalog())
        registry.register(ReliableFallback)
        registry.register(SerializeFallback)
        offers = registry.offers_for(["serialize"], origin="server")
        assert "reliable" not in offers

    def test_registered_types(self):
        registry = ChunnelRegistry(ImplCatalog())
        registry.register(ReliableFallback)
        assert registry.registered_types() == {"reliable"}

    def test_catalog_lookup_and_instantiate(self):
        catalog = ImplCatalog()
        catalog.add(ReliableFallback)
        impl = catalog.instantiate("reliable", "sw", Reliable())
        assert isinstance(impl, ReliableFallback)

    def test_catalog_unknown_impl(self):
        catalog = ImplCatalog()
        with pytest.raises(NoImplementationError):
            catalog.lookup("reliable", "ghost")


class TestPolicies:
    def offers(self):
        return [
            Offer(meta=meta("sw", priority=10), origin="server"),
            Offer(meta=meta("sw", priority=10), origin="client"),
            Offer(
                meta=meta("toe", priority=75, placement=Placement.SMARTNIC),
                origin="network",
                location="srv",
            ),
        ]

    def test_default_policy_prefers_client_origin(self):
        ranked = DefaultPolicy().rank(Reliable(), self.offers(), ctx())
        assert (ranked[0].origin, ranked[0].meta.name) == ("client", "sw")
        assert ranked[1].origin == "network"

    def test_priority_first_policy(self):
        ranked = PriorityFirstPolicy().rank(Reliable(), self.offers(), ctx())
        assert ranked[0].meta.name == "toe"

    def test_prefer_server_policy(self):
        ranked = PreferServerPolicy().rank(Reliable(), self.offers(), ctx())
        assert ranked[0].origin == "server"

    def test_ranking_is_deterministic(self):
        offers = self.offers()
        first = DefaultPolicy().rank(Reliable(), list(offers), ctx())
        second = DefaultPolicy().rank(Reliable(), list(reversed(offers)), ctx())
        assert [(o.origin, o.meta.name) for o in first] == [
            (o.origin, o.meta.name) for o in second
        ]


class TestFeasibility:
    def test_scope_requirement_filters(self):
        spec = Reliable().scoped(Scope.APPLICATION)
        offers = [
            Offer(meta=meta("sw", scope=Scope.APPLICATION), origin="client"),
            Offer(meta=meta("sw", scope=Scope.APPLICATION), origin="server"),
            Offer(
                meta=meta("nic", scope=Scope.HOST, endpoints=Endpoints.ANY),
                origin="network",
                location="srv",
            ),
        ]
        feasible = feasible_offers(spec, offers, ctx())
        assert {o.meta.name for o in feasible} == {"sw"}

    def test_both_endpoints_requires_both_origins(self):
        spec = Reliable()
        only_client = [Offer(meta=meta("sw"), origin="client")]
        assert feasible_offers(spec, only_client, ctx()) == []
        both = only_client + [Offer(meta=meta("sw"), origin="server")]
        assert len(feasible_offers(spec, both, ctx())) == 2

    def test_one_sided_impls_filter_wrong_origin(self):
        spec = Reliable()
        offers = [
            Offer(
                meta=meta("client-only", endpoints=Endpoints.CLIENT),
                origin="server",
            ),
            Offer(
                meta=meta("client-only", endpoints=Endpoints.CLIENT),
                origin="client",
            ),
        ]
        feasible = feasible_offers(spec, offers, ctx())
        assert [o.origin for o in feasible] == ["client"]

    def test_network_offer_must_be_on_path(self):
        spec = Reliable()
        on_path = Offer(
            meta=meta(
                "seq",
                endpoints=Endpoints.SERVER,
                placement=Placement.SWITCH,
            ),
            origin="network",
            location="tor",
        )
        off_path = Offer(
            meta=meta(
                "seq2",
                endpoints=Endpoints.SERVER,
                placement=Placement.SWITCH,
            ),
            origin="network",
            location="other-switch",
        )
        feasible = feasible_offers(spec, [on_path, off_path], ctx())
        assert [o.meta.name for o in feasible] == ["seq"]

    def test_host_device_offer_must_be_at_right_end(self):
        spec = Reliable()
        at_server = Offer(
            meta=meta(
                "xdp",
                endpoints=Endpoints.SERVER,
                placement=Placement.KERNEL_FASTPATH,
            ),
            origin="network",
            location="srv",
        )
        at_client = Offer(
            meta=meta(
                "xdp2",
                endpoints=Endpoints.SERVER,
                placement=Placement.KERNEL_FASTPATH,
            ),
            origin="network",
            location="cl",
        )
        feasible = feasible_offers(spec, [at_server, at_client], ctx())
        assert [o.meta.name for o in feasible] == ["xdp"]

    def test_other_chunnel_types_ignored(self):
        spec = Reliable()
        offers = [
            Offer(meta=meta("x", chunnel_type="serialize"), origin="client")
        ]
        assert feasible_offers(spec, offers, ctx()) == []


class TestDecide:
    def candidates(self):
        return {
            "reliable": [
                Offer(meta=meta("sw"), origin="client"),
                Offer(meta=meta("sw"), origin="server"),
            ],
            "serialize": [
                Offer(
                    meta=meta("sw", chunnel_type="serialize"),
                    origin="client",
                ),
                Offer(
                    meta=meta("sw", chunnel_type="serialize"),
                    origin="server",
                ),
            ],
        }

    def test_one_choice_per_node(self):
        dag = wrap(Serialize() >> Reliable())
        choice = decide(dag, self.candidates(), DefaultPolicy(), ctx())
        assert set(choice) == set(dag.nodes)
        assert all(offer.meta.name == "sw" for offer in choice.values())

    def test_missing_implementation_raises(self):
        dag = wrap(Serialize() >> Reliable())
        candidates = {"serialize": self.candidates()["serialize"]}
        with pytest.raises(NoImplementationError):
            decide(dag, candidates, DefaultPolicy(), ctx())

    def test_reserver_failure_falls_through_to_next(self):
        dag = wrap(Reliable())
        offers = self.candidates()["reliable"] + [
            Offer(
                meta=meta(
                    "toe",
                    priority=99,
                    endpoints=Endpoints.ANY,
                    placement=Placement.SMARTNIC,
                    resources=ResourceVector(nic_slots=1),
                ),
                origin="network",
                location="srv",
            )
        ]
        chosen = decide(
            dag,
            {"reliable": offers},
            PriorityFirstPolicy(),
            ctx(),
            reserve=lambda offer: offer.meta.name != "toe",
        )
        assert list(chosen.values())[0].meta.name == "sw"

    def test_all_reservations_failing_raises(self):
        dag = wrap(Reliable())
        offers = [
            Offer(
                meta=meta(
                    "toe",
                    endpoints=Endpoints.ANY,
                    placement=Placement.SMARTNIC,
                    resources=ResourceVector(nic_slots=1),
                ),
                origin="network",
                location="srv",
            )
        ]
        with pytest.raises(ResourceExhaustedError):
            decide(
                dag,
                {"reliable": offers},
                DefaultPolicy(),
                ctx(),
                reserve=lambda offer: False,
            )

    def test_zero_resource_offers_skip_reservation(self):
        dag = wrap(Reliable())
        calls = []
        decide(
            dag,
            self.candidates(),
            DefaultPolicy(),
            ctx(),
            reserve=lambda offer: calls.append(offer) or True,
        )
        assert calls == []


class TestOfferWire:
    def test_offer_roundtrip(self):
        offer = Offer(
            meta=meta("toe", priority=75, resources=ResourceVector(nic_slots=1)),
            origin="network",
            location="srv",
            record_id="rec-9",
        )
        decoded = Offer.from_wire(offer.to_wire())
        assert decoded == offer

    def test_meta_roundtrip(self):
        original = meta(
            "x",
            priority=3,
            scope=Scope.HOST,
            endpoints=Endpoints.SERVER,
            placement=Placement.SWITCH,
            resources=ResourceVector(switch_stages=2),
        )
        assert ImplMeta.from_wire(original.to_wire()) == original
