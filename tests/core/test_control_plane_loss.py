"""Robustness: negotiation and discovery under control-plane packet loss.

The control protocol runs over datagrams; offers, accepts, and discovery
queries can vanish.  Retransmission with reply caching must converge on
exactly one connection and one reservation, never duplicates.
"""

import pytest

from repro.chunnels import SerializeFallback, Serialize
from repro.core import wrap
from repro.errors import ConnectionTimeoutError
from repro.sim import Address, LossProgram

from ..conftest import run


def install_ctl_loss(world, drop_first, kinds=("bertha.offer",)):
    """Drop the first N control messages of the given kinds at the ToR."""

    def is_ctl(dgram):
        from repro.core.wire import wire_kind

        return wire_kind(dgram.payload) in kinds

    program = LossProgram("ctl-loss", predicate=is_ctl, drop_first=drop_first)
    world.net.switches["tor"].install(program)
    return program


def echo(world, runtime, dag=None, port=7000):
    listener = runtime.new("echo", dag).listen(port=port)

    def serve(env):
        while True:
            conn = yield listener.accept()

            def handle(env, conn=conn):
                while not conn.closed:
                    msg = yield conn.recv()
                    conn.send(msg.payload, size=msg.size, dst=msg.src)

            env.process(handle(env))

    world.env.process(serve(world.env))
    return listener


class TestNegotiationUnderLoss:
    def test_lost_offer_is_retransmitted(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = echo(two_hosts, server_rt)
        loss = install_ctl_loss(two_hosts, drop_first=2)

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(
                Address("srv", 7000), timeout=2e-4, retries=10
            )
            conn.send(b"after-loss", size=10)
            reply = yield conn.recv()
            return reply.payload, loss.dropped, len(listener.connections)

        payload, dropped, connections = run(two_hosts.env, scenario(two_hosts.env))
        assert payload == b"after-loss"
        assert dropped == 2
        assert connections == 1  # retries did not create duplicates

    def test_lost_accept_is_recovered_from_cache(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = echo(two_hosts, server_rt)
        loss = install_ctl_loss(
            two_hosts, drop_first=1, kinds=("bertha.accept",)
        )

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(
                Address("srv", 7000), timeout=2e-4, retries=10
            )
            conn.send(b"ok", size=2)
            reply = yield conn.recv()
            return reply.payload, loss.dropped, len(listener.connections)

        payload, dropped, connections = run(two_hosts.env, scenario(two_hosts.env))
        assert payload == b"ok"
        assert dropped == 1
        # The retried offer hit the reply cache: still one connection.
        assert connections == 1

    def test_persistent_loss_times_out_cleanly(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        echo(two_hosts, server_rt)
        install_ctl_loss(two_hosts, drop_first=10**6)

        def scenario(env):
            yield env.timeout(1e-4)
            yield from client_rt.new("c").connect(
                Address("srv", 7000), timeout=1e-4, retries=3
            )

        with pytest.raises(ConnectionTimeoutError):
            run(two_hosts.env, scenario(two_hosts.env))

    def test_lost_discovery_reply_is_retried(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(SerializeFallback)
        listener = echo(two_hosts, server_rt, dag=wrap(Serialize()))
        loss = install_ctl_loss(
            two_hosts, drop_first=1, kinds=("disc.query_reply",)
        )

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.send({"alive": True})
            reply = yield conn.recv()
            return reply.payload, loss.dropped

        payload, dropped = run(two_hosts.env, scenario(two_hosts.env))
        assert payload == {"alive": True}
        assert dropped == 1

    def test_duplicate_accepts_are_harmless(self, two_hosts):
        """Force the client to resend its offer after the accept was
        already sent; the cached duplicate accept must be ignored by the
        already-connected client."""
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        listener = echo(two_hosts, server_rt)

        def scenario(env):
            yield env.timeout(1e-4)
            # Tight timeout: the client will usually resend at least once,
            # producing duplicate accepts from the server's reply cache.
            conn = yield from client_rt.new("c").connect(
                Address("srv", 7000), timeout=40e-6, retries=10
            )
            for index in range(3):
                conn.send(b"%d" % index, size=1)
            got = []
            for _ in range(3):
                msg = yield conn.recv()
                got.append(bytes(msg.payload))
            return sorted(got), len(listener.connections)

        got, connections = run(two_hosts.env, scenario(two_hosts.env))
        assert got == [b"0", b"1", b"2"]
        assert connections == 1
