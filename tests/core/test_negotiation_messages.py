"""Tests for the negotiation message formats (the §4.3 wire protocol)."""

import pytest

from repro.chunnels import Reliable, Serialize
from repro.core import ImplMeta, Offer, ResourceVector, Scope, wrap
from repro.core.negotiation import (
    ACCEPT_KIND,
    ERROR_KIND,
    OFFER_KIND,
    build_accept_message,
    build_error_message,
    build_offer_message,
    parse_choice,
    parse_offers,
    parse_params,
    raise_remote_error,
)
from repro.core.scope import Endpoints, Placement
from repro.errors import (
    IncompatibleDagError,
    NegotiationError,
    NoImplementationError,
    ResourceExhaustedError,
)


def sample_offer(name="sw", origin="client"):
    return Offer(
        meta=ImplMeta(
            chunnel_type="reliable",
            name=name,
            priority=10,
            scope=Scope.GLOBAL,
            endpoints=Endpoints.BOTH,
            placement=Placement.HOST_SOFTWARE,
            resources=ResourceVector(),
        ),
        origin=origin,
    )


class TestOfferMessage:
    def test_roundtrip(self):
        dag = wrap(Serialize() >> Reliable())
        message = build_offer_message(
            "conn-1", dag, {"reliable": [sample_offer()]}, "client-entity"
        )
        assert message["kind"] == OFFER_KIND
        assert message["conn_id"] == "conn-1"
        offers = parse_offers(message["offers"])
        assert offers["reliable"][0] == sample_offer()
        from repro.core import ChunnelDag

        decoded = ChunnelDag.from_wire(message["dag"])
        assert decoded.canonical_shape() == dag.canonical_shape()

    def test_message_is_json_like(self):
        """Control messages must contain only wire-encodable structures."""
        import json

        dag = wrap(Reliable())
        message = build_offer_message(
            "c", dag, {"reliable": [sample_offer()]}, "e"
        )
        json.dumps(message)  # raises if anything non-primitive leaked


class TestAcceptMessage:
    def test_roundtrip(self):
        dag = wrap(Reliable())
        node = dag.topological_order()[0]
        message = build_accept_message(
            "conn-2",
            dag,
            {node: sample_offer()},
            data_host="srv",
            data_port=40001,
            transport="pipe",
            params={"k": 1},
        )
        assert message["kind"] == ACCEPT_KIND
        choice = parse_choice(message["choice"])
        assert choice[node] == sample_offer()
        assert parse_params(message["params"]) == {"k": 1}
        assert message["transport"] == "pipe"

    def test_empty_params(self):
        message = build_accept_message(
            "c", wrap(), {}, data_host="s", data_port=1, transport="udp"
        )
        assert parse_params(message["params"]) == {}


class TestErrorMessage:
    def test_error_kinds_survive_the_wire(self):
        for error_cls in (
            IncompatibleDagError,
            NoImplementationError,
            ResourceExhaustedError,
        ):
            message = build_error_message("c", error_cls("boom"))
            assert message["kind"] == ERROR_KIND
            with pytest.raises(error_cls):
                raise_remote_error(message)

    def test_unknown_error_type_becomes_negotiation_error(self):
        message = build_error_message("c", ValueError("weird"))
        with pytest.raises(NegotiationError):
            raise_remote_error(message)

    def test_error_text_preserved(self):
        message = build_error_message("c", NoImplementationError("no shard impl"))
        with pytest.raises(NoImplementationError, match="no shard impl"):
            raise_remote_error(message)
