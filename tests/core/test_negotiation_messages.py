"""Tests for the negotiation messages (the §4.3 wire protocol), now a
typed schema in :mod:`repro.core.messages`."""

import json

import pytest

from repro.chunnels import Reliable, Serialize
from repro.core import ImplMeta, Offer, ResourceVector, Scope, wrap
from repro.core import messages as msgs
from repro.core.scope import Endpoints, Placement
from repro.errors import (
    IncompatibleDagError,
    NegotiationError,
    NoImplementationError,
    ResourceExhaustedError,
)


def sample_offer(name="sw", origin="client"):
    return Offer(
        meta=ImplMeta(
            chunnel_type="reliable",
            name=name,
            priority=10,
            scope=Scope.GLOBAL,
            endpoints=Endpoints.BOTH,
            placement=Placement.HOST_SOFTWARE,
            resources=ResourceVector(),
        ),
        origin=origin,
    )


class TestOfferMessage:
    def test_roundtrip(self):
        dag = wrap(Serialize() >> Reliable())
        message = msgs.Offer(
            conn_id="conn-1",
            dag=dag,
            offers={"reliable": [sample_offer()]},
            client_entity="client-entity",
        )
        decoded = msgs.decode_message(msgs.encode_message(message))
        assert isinstance(decoded, msgs.Offer)
        assert decoded.conn_id == "conn-1"
        assert decoded.client_entity == "client-entity"
        assert decoded.offers["reliable"][0] == sample_offer()
        assert decoded.dag.canonical_shape() == dag.canonical_shape()

    def test_message_is_json_like(self):
        """Encoded control messages must contain only wire-encodable
        structures."""
        dag = wrap(Reliable())
        message = msgs.Offer(
            conn_id="c",
            dag=dag,
            offers={"reliable": [sample_offer()]},
            client_entity="e",
        )
        json.dumps(msgs.encode_message(message))  # raises if anything leaked


class TestAcceptMessage:
    def test_roundtrip(self):
        from repro.sim.datagram import Address

        dag = wrap(Reliable())
        node = dag.topological_order()[0]
        message = msgs.Accept(
            conn_id="conn-2",
            dag=dag,
            choice={node: sample_offer()},
            data_addr=Address("srv", 40001),
            transport="pipe",
            params={"k": 1},
        )
        decoded = msgs.decode_message(msgs.encode_message(message))
        assert isinstance(decoded, msgs.Accept)
        # Choice keys are node ids (ints) — they must survive the str-keyed
        # wire encoding.
        assert decoded.choice[node] == sample_offer()
        assert decoded.params == {"k": 1}
        assert decoded.transport == "pipe"
        assert decoded.data_addr == Address("srv", 40001)

    def test_empty_params(self):
        from repro.sim.datagram import Address

        message = msgs.Accept(
            conn_id="c",
            dag=wrap(),
            choice={},
            data_addr=Address("s", 1),
            transport="udp",
        )
        decoded = msgs.decode_message(msgs.encode_message(message))
        assert decoded.params == {}


class TestErrorMessage:
    def test_error_kinds_survive_the_wire(self):
        for error_cls in (
            IncompatibleDagError,
            NoImplementationError,
            ResourceExhaustedError,
        ):
            message = msgs.Error.from_exception("c", error_cls("boom"))
            decoded = msgs.decode_message(msgs.encode_message(message))
            with pytest.raises(error_cls):
                decoded.raise_remote()

    def test_unknown_error_type_becomes_negotiation_error(self):
        message = msgs.Error.from_exception("c", ValueError("weird"))
        with pytest.raises(NegotiationError):
            message.raise_remote()

    def test_error_text_preserved(self):
        message = msgs.Error.from_exception(
            "c", NoImplementationError("no shard impl")
        )
        with pytest.raises(NoImplementationError, match="no shard impl"):
            message.raise_remote()
