"""Tests for the wire encoding used by negotiation payloads."""

import pytest

from repro.core.wire import WireError, decode, encode, register_wire_type
from repro.sim import Address


class TestPrimitives:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -17, 3.5, "hello", "", [1, 2, 3], {"a": 1}],
    )
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_bytes_roundtrip(self):
        blob = bytes(range(256))
        assert decode(encode(blob)) == blob

    def test_tuple_becomes_list(self):
        assert decode(encode((1, 2))) == [1, 2]

    def test_nested_structures(self):
        value = {"xs": [1, {"inner": b"\x00\xff"}], "flag": True}
        assert decode(encode(value)) == value

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(WireError):
            encode({1: "x"})

    def test_reserved_key_rejected(self):
        with pytest.raises(WireError):
            encode({"__kind__": "spoof"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(WireError):
            encode(lambda: None)

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireError):
            decode({"__kind__": "does-not-exist"})


class TestRegisteredTypes:
    def test_address_roundtrip(self):
        addr = Address("host-7", 8080)
        assert decode(encode(addr)) == addr

    def test_address_nested_in_containers(self):
        value = {"peers": [Address("a", 1), Address("b", 2)]}
        assert decode(encode(value)) == value

    def test_duplicate_tag_registration_rejected(self):
        class Custom:
            pass

        with pytest.raises(WireError):
            register_wire_type(
                "address", Custom, lambda v: {}, lambda d: Custom()
            )

    def test_custom_type_registration(self):
        class Pair:
            def __init__(self, a, b):
                self.a, self.b = a, b

            def __eq__(self, other):
                return (self.a, self.b) == (other.a, other.b)

        register_wire_type(
            "test.pair",
            Pair,
            lambda p: {"a": p.a, "b": p.b},
            lambda d: Pair(d["a"], d["b"]),
        )
        assert decode(encode(Pair(1, "x"))) == Pair(1, "x")


class TestChunnelSpecOnWire:
    def test_spec_roundtrip(self):
        from repro.chunnels import Reliable

        spec = Reliable(timeout=1e-3, max_retries=7)
        decoded = decode(encode(spec))
        assert decoded.type_name == "reliable"
        assert decoded.args == spec.args

    def test_spec_nested_in_args(self):
        from repro.chunnels import Serialize, Shard

        spec = Shard(choices=[Address("w", 1)])
        decoded = decode(encode({"spec": spec}))["spec"]
        assert decoded.type_name == "shard"
        assert decoded.choices == [Address("w", 1)]

    def test_shard_functions_roundtrip(self):
        from repro.chunnels import HashBytes, HashKeyField

        assert decode(encode(HashBytes(3, 8))) == HashBytes(3, 8)
        assert decode(encode(HashKeyField("k"))) == HashKeyField("k")

    def test_lambda_shard_function_rejected(self):
        """Negotiation payloads are data; arbitrary code cannot travel."""
        from repro.chunnels import Shard

        spec = Shard(choices=[Address("w", 1)])
        spec.args["shard_fn"] = lambda payload, headers, n: 0
        with pytest.raises(WireError):
            encode(spec)
