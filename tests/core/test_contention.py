"""Integration tests: contended offloads degrade gracefully (§6).

The paper's scenario: "two programs can benefit from offloading
functionality to a P4 switch, but the switch only has capacity for one".
Negotiation must give the switch to one application and bind the other to
its next-best implementation — not fail the connection.
"""

import pytest

from repro.chunnels import (
    HashBytes,
    SerializeFallback,
    Shard,
    ShardServerFallback,
    ShardSwitch,
    ShardXdp,
)
from repro.core import Runtime, wrap
from repro.discovery import DiscoveryService
from repro.sim import Address, Network, UdpSocket

from ..conftest import run


def contended_world(switch_stages=2):
    """Two server apps on two hosts; one small switch; XDP as second tier.

    Each ShardSwitch program needs 2 stages, so a ``switch_stages=2``
    switch fits exactly one application's program.
    """
    net = Network()
    net.add_host("srv-a")
    net.add_host("srv-b")
    net.add_host("cl")
    dsc = net.add_host("dsc")
    net.add_switch("tor", stages=switch_stages, sram_kb=4096)
    for name in ("srv-a", "srv-b", "cl", "dsc"):
        net.add_link(name, "tor", latency=5e-6)
    discovery = DiscoveryService(dsc)
    discovery.register(ShardSwitch.meta, location="tor")
    discovery.register(ShardXdp.meta, location="srv-a")
    discovery.register(ShardXdp.meta, location="srv-b")

    servers = {}
    for host in ("srv-a", "srv-b"):
        runtime = Runtime(net.hosts[host], discovery=discovery.address)
        runtime.register_chunnel(SerializeFallback)
        runtime.register_chunnel(ShardServerFallback)
        workers = []
        for port in (7101, 7102):
            sock = UdpSocket(net.hosts[host], port)
            workers.append(sock.address)

            def worker_loop(env, sock=sock):
                while True:
                    dgram = yield sock.recv()
                    reply = dgram.headers.get("shard_reply_to")
                    dst = (
                        Address(reply[0], reply[1]) if reply else dgram.src
                    )
                    sock.send(b"ok", dst, size=2)

            net.env.process(worker_loop(net.env, sock))
        dag = wrap(Shard(choices=workers, shard_fn=HashBytes(0, 4)))
        listener = runtime.new(f"kv-{host}", dag).listen(port=7100)
        servers[host] = listener
    client_rt = Runtime(net.hosts["cl"], discovery=discovery.address)
    client_rt.register_chunnel(SerializeFallback)
    return net, discovery, servers, client_rt


class TestSwitchContention:
    def connect_both(self, net, client_rt):
        def scenario(env):
            yield env.timeout(1e-4)
            impls = []
            for host in ("srv-a", "srv-b"):
                conn = yield from client_rt.new(f"c-{host}").connect(
                    Address(host, 7100)
                )
                node = conn.dag.find("shard")[0]
                impls.append(type(conn.impls[node]).__name__)
                conn.send(b"key1", size=4)
                yield conn.recv()  # the data path actually works
            return impls

        return run(net.env, scenario(net.env))

    def test_second_app_degrades_to_next_tier(self):
        net, discovery, _servers, client_rt = contended_world(switch_stages=2)
        impls = self.connect_both(net, client_rt)
        # First app wins the switch; the second falls back to its XDP tier.
        assert impls == ["ShardSwitch", "ShardXdp"]
        # Exactly one program occupies the switch.
        assert len(net.switches["tor"].programs) == 1

    def test_enough_capacity_serves_both(self):
        net, discovery, _servers, client_rt = contended_world(switch_stages=4)
        impls = self.connect_both(net, client_rt)
        assert impls == ["ShardSwitch", "ShardSwitch"]
        assert len(net.switches["tor"].programs) == 2

    def test_discovery_accounting_matches_device(self):
        net, discovery, _servers, client_rt = contended_world(switch_stages=2)
        self.connect_both(net, client_rt)
        in_use = discovery.device_in_use("tor")
        assert in_use["switch_stages"] == 2  # one program's footprint
        assert discovery.reservations_denied >= 1

    def test_released_capacity_is_reusable(self):
        net, discovery, servers, client_rt = contended_world(switch_stages=2)

        def scenario(env):
            yield env.timeout(1e-4)
            conn_a = yield from client_rt.new("c-a").connect(
                Address("srv-a", 7100)
            )
            node = conn_a.dag.find("shard")[0]
            first = type(conn_a.impls[node]).__name__
            # Tear down the first app's connection; its lease releases.
            conn_a.close()
            for server_conn in servers["srv-a"].connections:
                server_conn.close()
            yield env.timeout(1e-3)
            conn_b = yield from client_rt.new("c-b").connect(
                Address("srv-b", 7100)
            )
            node = conn_b.dag.find("shard")[0]
            second = type(conn_b.impls[node]).__name__
            return first, second

        first, second = run(net.env, scenario(net.env))
        assert first == "ShardSwitch"
        assert second == "ShardSwitch"  # the freed slot was reused
