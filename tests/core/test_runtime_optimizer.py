"""Integration tests: the §6 DAG optimizer running inside negotiation."""

import pytest

from repro.chunnels import (
    Encrypt,
    EncryptFallback,
    Http2,
    Http2Fallback,
    LocalOrRemote,
    LocalOrRemoteFallback,
    Ordered,
    OrderedFallback,
    Reliable,
    ReliableFallback,
    Serialize,
    SerializeFallback,
    Tcp,
    TcpFallback,
    TlsSmartNic,
)
from repro.core import DagOptimizer, Runtime, wrap
from repro.sim import Address

from ..conftest import run


def echo_forever(world, listener):
    def serve(env):
        while True:
            conn = yield listener.accept()

            def handle(env, conn=conn):
                while not conn.closed:
                    msg = yield conn.recv()
                    conn.send(msg.payload, size=msg.size, dst=msg.src)

            env.process(handle(env))

    world.env.process(serve(world.env))


class TestLiveReorderAndMerge:
    def test_merge_binds_nic_tls_engine(self, two_hosts_smartnic):
        """encrypt |> http2 |> tcp against a NIC offering only TLS: the
        listener reorders, merges to http2 |> tls, and binds the engine."""
        world = two_hosts_smartnic
        world.discovery.register(TlsSmartNic.meta, location="srv")
        server_rt = world.runtime("srv", optimizer=DagOptimizer())
        client_rt = world.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(EncryptFallback)
            rt.register_chunnel(Http2Fallback)
            rt.register_chunnel(TcpFallback)
        dag = wrap(Encrypt() >> Http2() >> Tcp())
        listener = server_rt.new("opt", dag).listen(port=7000)
        echo_forever(world, listener)

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.send(b"payload", size=7)
            reply = yield conn.recv()
            return conn.dag.chunnel_types(), reply.payload

        types, payload = run(world.env, client(world.env))
        assert types == ["http2", "tls"]
        assert payload == b"payload"
        assert listener.optimizations
        kinds = {s.kind for opt in listener.optimizations for s in opt.steps}
        assert "reorder" in kinds and "merge" in kinds

    def test_optimizer_falls_back_when_merge_cannot_bind(self, two_hosts):
        """No TLS implementation anywhere: the optimizer's merged DAG fails
        to bind and negotiation silently retries the original DAG."""
        world = two_hosts
        server_rt = world.runtime("srv", optimizer=DagOptimizer())
        client_rt = world.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(EncryptFallback)
            rt.register_chunnel(TcpFallback)
        dag = wrap(Encrypt() >> Tcp())
        listener = server_rt.new("opt", dag).listen(port=7000)
        echo_forever(world, listener)

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.send(b"x", size=1)
            reply = yield conn.recv()
            return conn.dag.chunnel_types(), reply.payload

        types, payload = run(world.env, client(world.env))
        assert types == ["encrypt", "tcp"]
        assert payload == b"x"

    def test_no_optimizer_means_no_transformation(self, two_hosts_smartnic):
        world = two_hosts_smartnic
        world.discovery.register(TlsSmartNic.meta, location="srv")
        server_rt = world.runtime("srv")  # no optimizer
        client_rt = world.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(EncryptFallback)
            rt.register_chunnel(Http2Fallback)
            rt.register_chunnel(TcpFallback)
        dag = wrap(Encrypt() >> Http2() >> Tcp())
        listener = server_rt.new("plain", dag).listen(port=7000)
        echo_forever(world, listener)

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            return conn.dag.chunnel_types()

        assert run(world.env, client(world.env)) == ["encrypt", "http2", "tcp"]


class TestLiveSpecialization:
    def build(self, world, optimizer):
        server_rt = world.runtime("cb", optimizer=optimizer)
        client_rt = world.runtime("ca")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(LocalOrRemoteFallback)
            rt.register_chunnel(SerializeFallback)
            rt.register_chunnel(ReliableFallback)
            rt.register_chunnel(OrderedFallback)
        dag = wrap(
            Serialize() >> Reliable() >> Ordered() >> LocalOrRemote()
        )
        listener = server_rt.new("spec", dag).listen(port=7000)
        echo_forever(world, listener)
        return client_rt, listener

    def test_redundant_chunnels_dropped_over_pipes(self, one_host_two_containers):
        """Same-host connection: pipes are reliable and in-order, so the
        reliable and ordered stages are specialized away (§6)."""
        world = one_host_two_containers
        client_rt, listener = self.build(world, DagOptimizer())

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("cb", 7000))
            conn.send({"n": 1})
            reply = yield conn.recv()
            return conn.transport, conn.dag.chunnel_types(), reply.payload

        transport, types, payload = run(world.env, client(world.env))
        assert transport == "pipe"
        assert types == ["serialize", "local_or_remote"]
        assert payload == {"n": 1}
        kinds = {s.kind for opt in listener.optimizations for s in opt.steps}
        assert "specialize" in kinds

    def test_cross_host_keeps_reliability(self, two_hosts):
        world = two_hosts
        server_rt = world.runtime("srv", optimizer=DagOptimizer())
        client_rt = world.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(LocalOrRemoteFallback)
            rt.register_chunnel(SerializeFallback)
            rt.register_chunnel(ReliableFallback)
        dag = wrap(Serialize() >> Reliable() >> LocalOrRemote())
        listener = server_rt.new("spec", dag).listen(port=7000)
        echo_forever(world, listener)

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            return conn.transport, conn.dag.chunnel_types()

        transport, types = run(world.env, client(world.env))
        assert transport == "udp"
        assert "reliable" in types  # not specialized away across hosts

    def test_specialized_connection_is_cheaper(self, one_host_two_containers):
        """Dropping the redundant stages saves real per-message CPU time."""

        def rtt_with(optimizer):
            from repro.discovery import DiscoveryService
            from repro.sim import Network

            net = Network()
            host = net.add_host("box")
            host.add_container("ca")
            host.add_container("cb")
            discovery = DiscoveryService(host)
            server_rt = Runtime(
                net.entity("cb"), discovery=discovery.address, optimizer=optimizer
            )
            client_rt = Runtime(net.entity("ca"), discovery=discovery.address)
            for rt in (server_rt, client_rt):
                rt.register_chunnel(LocalOrRemoteFallback)
                rt.register_chunnel(SerializeFallback)
                rt.register_chunnel(ReliableFallback)
            dag = wrap(Serialize() >> Reliable() >> LocalOrRemote())
            listener = server_rt.new("s", dag).listen(port=7000)

            def serve(env):
                conn = yield listener.accept()
                while True:
                    msg = yield conn.recv()
                    conn.send(msg.payload, dst=msg.src)

            net.env.process(serve(net.env))

            def client(env):
                yield env.timeout(1e-4)
                conn = yield from client_rt.new("c").connect(Address("cb", 7000))
                start = env.now
                for _ in range(20):
                    conn.send({"x": 1})
                    yield conn.recv()
                return (env.now - start) / 20

            proc = net.env.process(client(net.env))
            net.env.run(until=1.0)
            return proc.value

        assert rtt_with(DagOptimizer()) < rtt_with(None)
