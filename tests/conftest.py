"""Shared fixtures and world-builders for the test suite.

Conventions:

* Every test builds its own :class:`~repro.sim.Network` (no shared mutable
  state between tests); the ``net``/``env`` fixtures give a fresh one.
* ``two_hosts`` / ``one_host_two_containers`` build the standard topologies
  most integration tests need.
* ``run(env, gen)`` drives a generator as a sim process to completion and
  returns its value — the workhorse for protocol tests.
"""

from __future__ import annotations

import pytest

from repro.core import Runtime
from repro.discovery import DiscoveryService
from repro.sim import CostModel, Environment, Network, SmartNic


@pytest.fixture
def net() -> Network:
    """A fresh, empty network."""
    return Network()


@pytest.fixture
def env(net: Network) -> Environment:
    """The fresh network's environment."""
    return net.env


class World:
    """A ready-made topology plus runtimes for integration tests."""

    def __init__(self, net: Network, discovery: DiscoveryService):
        self.net = net
        self.env = net.env
        self.discovery = discovery
        self.runtimes: dict[str, Runtime] = {}

    def runtime(self, entity_name: str, **kwargs) -> Runtime:
        """A runtime on the named entity, talking to this world's discovery."""
        runtime = Runtime(
            self.net.entity(entity_name),
            discovery=kwargs.pop("discovery", self.discovery.address),
            **kwargs,
        )
        self.runtimes[entity_name] = runtime
        return runtime

    def run(self, until=None):
        return self.env.run(until)


@pytest.fixture
def two_hosts() -> World:
    """client ("cl") and server ("srv") hosts behind a ToR, plus discovery."""
    net = Network()
    net.add_host("cl")
    net.add_host("srv")
    net.add_host("dsc")
    net.add_switch("tor")
    for name in ("cl", "srv", "dsc"):
        net.add_link(name, "tor", latency=5e-6)
    return World(net, DiscoveryService(net.hosts["dsc"]))


@pytest.fixture
def two_hosts_smartnic() -> World:
    """Like ``two_hosts`` but the server has a SmartNIC."""
    net = Network()
    net.add_host("cl")
    srv_nic = None  # placeholder; SmartNic needs the env first
    net.add_host("dsc")
    host = net.add_host(
        "srv", nic=SmartNic(net.env, name="srv.nic", offload_slots=4)
    )
    assert host.smartnic is not None
    net.add_switch("tor")
    for name in ("cl", "srv", "dsc"):
        net.add_link(name, "tor", latency=5e-6)
    return World(net, DiscoveryService(net.hosts["dsc"]))


@pytest.fixture
def one_host_two_containers() -> World:
    """Two containers ("ca", "cb") on one host ("box"), discovery on host."""
    net = Network()
    host = net.add_host("box")
    host.add_container("ca")
    host.add_container("cb")
    return World(net, DiscoveryService(host))


def run(env: Environment, generator, until: float = 5.0):
    """Drive ``generator`` as a process; return its value (or raise)."""
    proc = env.process(generator)
    env.run(until=until)
    if not proc.processed:
        raise AssertionError(
            f"process did not finish within {until} simulated seconds"
        )
    if not proc.ok:
        raise proc.value
    return proc.value


@pytest.fixture
def drive():
    """The ``run`` helper as a fixture."""
    return run
