"""Tests for the echo/RPC app and the replicated state machine."""

import pytest

from repro.apps import EchoServer, QuorumError, RsmClient, RsmReplica, ping_session
from repro.chunnels import McastSequencerFallback, SerializeFallback
from repro.core import Runtime
from repro.discovery import DiscoveryService
from repro.sim import Address, LossProgram, Network

from ..conftest import run


class TestEchoServer:
    def test_ping_session_measures_setup_and_rtts(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        EchoServer(server_rt, port=7000)

        def scenario(env):
            yield env.timeout(1e-4)
            result = yield from ping_session(
                client_rt, Address("srv", 7000), size=64, count=5
            )
            return result

        result = run(two_hosts.env, scenario(two_hosts.env))
        assert len(result.rtts) == 5
        assert result.setup_time > max(result.rtts)  # negotiation overhead
        assert result.transport == "udp"

    def test_serves_many_connections(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        server = EchoServer(server_rt, port=7000)

        def scenario(env):
            yield env.timeout(1e-4)
            for _ in range(4):
                yield from ping_session(
                    client_rt, Address("srv", 7000), size=16, count=2
                )
            return server.connections_served, server.requests_served

        connections, requests = run(two_hosts.env, scenario(two_hosts.env))
        assert connections == 4
        assert requests == 8

    def test_close_stops_accepting(self, two_hosts):
        from repro.errors import ConnectionTimeoutError

        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        server = EchoServer(server_rt, port=7000)

        def scenario(env):
            yield env.timeout(1e-4)
            server.close()
            yield env.timeout(1e-4)
            try:
                yield from ping_session(
                    client_rt, Address("srv", 7000), size=16, count=1
                )
            except ConnectionTimeoutError:
                return "refused"

        assert run(two_hosts.env, scenario(two_hosts.env)) == "refused"


def rsm_world(replicas=3):
    net = Network()
    members = [f"r{i}" for i in range(replicas)]
    for name in members:
        net.add_host(name)
    net.add_host("cli")
    dsc = net.add_host("dsc")
    net.add_switch("tor")
    for name in members + ["cli", "dsc"]:
        net.add_link(name, "tor", latency=5e-6)
    discovery = DiscoveryService(dsc)
    replica_objs = []
    for name in members:
        runtime = Runtime(net.hosts[name], discovery=discovery.address)
        runtime.register_chunnel(SerializeFallback)
        runtime.register_chunnel(McastSequencerFallback)
        replica_objs.append(
            RsmReplica(runtime, port=7300, group="G", members=members)
        )
    client_rt = Runtime(net.hosts["cli"], discovery=discovery.address)
    client_rt.register_chunnel(SerializeFallback)
    client_rt.register_chunnel(McastSequencerFallback)
    return net, replica_objs, client_rt


class TestRsm:
    def test_linearizable_put_cas_get(self):
        net, replicas, client_rt = rsm_world()

        def scenario(env):
            yield env.timeout(1e-3)
            client = RsmClient(client_rt, group="G")
            yield from client.connect([r.address for r in replicas])
            first = yield from client.submit({"op": "put", "key": "x", "value": 1})
            second = yield from client.submit(
                {"op": "cas", "key": "x", "expect": 1, "value": 2}
            )
            third = yield from client.submit({"op": "get", "key": "x"})
            return first, second, third

        first, second, third = run(net.env, scenario(net.env))
        assert (first, second, third) == ("ok", "ok", 2)
        for replica in replicas:
            assert replica.state == {"x": 2}

    def test_replicas_apply_identical_histories(self):
        net, replicas, client_rt = rsm_world()

        def scenario(env):
            yield env.timeout(1e-3)
            client = RsmClient(client_rt, group="G")
            yield from client.connect([r.address for r in replicas])
            for index in range(6):
                yield from client.submit(
                    {"op": "put", "key": f"k{index % 2}", "value": index}
                )
            yield env.timeout(2e-3)  # let the slowest replica catch up

        run(net.env, scenario(net.env))
        states = [replica.state for replica in replicas]
        assert states[0] == {"k0": 4, "k1": 5}
        assert all(state == states[0] for state in states)
        assert all(replica.applied == 6 for replica in replicas)

    def test_quorum_reached_with_one_slow_replica(self):
        net, replicas, client_rt = rsm_world()
        # Make r2 drop the first sequenced message it receives.
        net.hosts["r2"].install_kernel_program(
            LossProgram(
                "slow-replica",
                predicate=lambda d: d.headers.get("mcast_seq") == 1,
                drop_first=1,
            )
        )

        def scenario(env):
            yield env.timeout(1e-3)
            client = RsmClient(client_rt, group="G")
            yield from client.connect([r.address for r in replicas])
            result = yield from client.submit(
                {"op": "put", "key": "q", "value": "v"}, quorum=2
            )
            return result

        assert run(net.env, scenario(net.env)) == "ok"

    def test_no_quorum_raises(self):
        net, replicas, client_rt = rsm_world()
        # Every replica drops the sequenced message: no replies at all.
        for replica in replicas:
            net.hosts[replica.name].install_kernel_program(
                LossProgram(
                    f"mute-{replica.name}",
                    predicate=lambda d: "mcast_seq" in d.headers,
                    drop_first=10,
                )
            )

        def scenario(env):
            yield env.timeout(1e-3)
            client = RsmClient(client_rt, group="G")
            yield from client.connect([r.address for r in replicas])
            yield from client.submit(
                {"op": "put", "key": "x", "value": 1}, timeout=2e-3
            )

        with pytest.raises(QuorumError):
            run(net.env, scenario(net.env))

    def test_submit_before_connect_raises(self):
        net, _replicas, client_rt = rsm_world()
        client = RsmClient(client_rt, group="G")

        def scenario(env):
            yield env.timeout(0)
            yield from client.submit({"op": "get", "key": "x"})

        with pytest.raises(QuorumError):
            run(net.env, scenario(net.env))
