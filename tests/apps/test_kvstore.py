"""Tests for the sharded key-value store application."""

import pytest

from repro.apps import KV_SHARD_FN, KvClient, KvCodec, KvServer, kv_request, kv_response
from repro.chunnels import SerializeFallback, ShardClientFallback, ShardServerFallback
from repro.core import Runtime
from repro.errors import ChunnelArgumentError
from repro.sim import Address

from ..conftest import run


class TestKvCodec:
    def test_request_roundtrip(self):
        codec = KvCodec()
        request = kv_request("put", "user42", b"value-bytes")
        assert codec.decode(codec.encode(request)) == request

    def test_response_roundtrip(self):
        codec = KvCodec()
        response = kv_response("ok", b"some value")
        assert codec.decode(codec.encode(response)) == response

    def test_get_has_empty_value(self):
        codec = KvCodec()
        decoded = codec.decode(codec.encode(kv_request("get", "k")))
        assert decoded["value"] == b""

    def test_key_hash_at_fixed_offset(self):
        """The property the XDP/switch shard implementations rely on."""
        import struct
        import zlib

        codec = KvCodec()
        for key in ("a", "user0001", "长键"):
            encoded = codec.encode(kv_request("get", key))
            (wire_hash,) = struct.unpack_from(">I", encoded, 1)
            assert wire_hash == zlib.crc32(key.encode()) & 0xFFFFFFFF

    def test_shard_fn_reads_the_hash_window(self):
        codec = KvCodec()
        a = codec.encode(kv_request("get", "same-key"))
        b = codec.encode(kv_request("put", "same-key", b"xxx"))
        assert KV_SHARD_FN.bucket(a, {}, 3) == KV_SHARD_FN.bucket(b, {}, 3)

    def test_invalid_inputs(self):
        codec = KvCodec()
        with pytest.raises(ChunnelArgumentError):
            codec.encode({"no": "kind"})
        with pytest.raises(ChunnelArgumentError):
            codec.decode(b"")
        with pytest.raises(ChunnelArgumentError):
            codec.decode(b"\x99rest")
        with pytest.raises(ChunnelArgumentError):
            kv_request("explode", "k")
        with pytest.raises(ChunnelArgumentError):
            kv_response("weird")


def kv_world(world, client_push=True, shards=3):
    server_rt = world.runtime("srv")
    client_rt = world.runtime("cl")
    server_rt.register_chunnel(SerializeFallback)
    server_rt.register_chunnel(ShardServerFallback)
    client_rt.register_chunnel(SerializeFallback)
    if client_push:
        client_rt.register_chunnel(ShardClientFallback)
    server = KvServer(server_rt, port=7100, shards=shards)
    return server, client_rt


class TestKvStore:
    def test_put_get_delete_cycle(self, two_hosts):
        server, client_rt = kv_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            put = yield from client.put("alpha", b"1")
            got = yield from client.get("alpha")
            deleted = yield from client.delete("alpha")
            missing = yield from client.get("alpha")
            return put, got, deleted, missing

        put, got, deleted, missing = run(two_hosts.env, scenario(two_hosts.env))
        assert put["status"] == "ok"
        assert (got["status"], got["value"]) == ("ok", b"1")
        assert deleted["status"] == "ok"
        assert missing["status"] == "not_found"

    def test_delete_missing_key(self, two_hosts):
        server, client_rt = kv_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            return (yield from client.delete("never-existed"))

        assert run(two_hosts.env, scenario(two_hosts.env))["status"] == "not_found"

    def test_keys_spread_across_shards(self, two_hosts):
        server, client_rt = kv_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            for index in range(30):
                yield from client.put(f"key-{index}", b"v")
            return [len(worker.store) for worker in server.workers]

        per_shard = run(two_hosts.env, scenario(two_hosts.env))
        assert sum(per_shard) == 30
        assert all(count > 0 for count in per_shard)

    def test_reads_after_writes_are_consistent_per_key(self, two_hosts):
        server, client_rt = kv_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            for index in range(10):
                yield from client.put(f"k{index}", b"v%d" % index)
            results = []
            for index in range(10):
                reply = yield from client.get(f"k{index}")
                results.append(reply["value"])
            return results

        values = run(two_hosts.env, scenario(two_hosts.env))
        assert values == [b"v%d" % i for i in range(10)]

    def test_works_with_server_fallback_sharding(self, two_hosts):
        server, client_rt = kv_world(two_hosts, client_push=False)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("via-fallback", b"works")
            reply = yield from client.get("via-fallback")
            node = client.conn.dag.find("shard")[0]
            return reply, type(client.conn.impls[node]).__name__

        reply, impl = run(two_hosts.env, scenario(two_hosts.env))
        assert reply["value"] == b"works"
        assert impl == "ShardServerFallback"

    def test_request_before_connect_raises(self, two_hosts):
        _server, client_rt = kv_world(two_hosts)
        client = KvClient(client_rt)

        def scenario(env):
            yield env.timeout(0)
            yield from client.get("x")

        with pytest.raises(ChunnelArgumentError):
            run(two_hosts.env, scenario(two_hosts.env))

    def test_server_counts_requests(self, two_hosts):
        server, client_rt = kv_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            for index in range(5):
                yield from client.put(f"c{index}", b"x")
            return server.requests_served, server.total_keys()

        served, keys = run(two_hosts.env, scenario(two_hosts.env))
        assert served == 5
        assert keys == 5


class TestScanAndRmw:
    """YCSB workloads E (scan) and F (read-modify-write) operations."""

    def test_scan_returns_sorted_keys_from_shard(self, two_hosts):
        server, client_rt = kv_world(two_hosts, shards=1)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            for index in range(9, -1, -1):  # insert in reverse order
                yield from client.put(f"k{index}", b"v")
            reply = yield from client.scan("k3", length=4)
            return reply

        reply = run(two_hosts.env, scenario(two_hosts.env))
        assert reply["status"] == "ok"
        keys = reply["value"].split(b"\x00")
        assert keys == [b"k3", b"k4", b"k5", b"k6"]

    def test_scan_length_encoded_in_value(self):
        from repro.apps.kvstore import KvCodec

        codec = KvCodec()
        encoded = codec.encode(kv_request("scan", "start", (7).to_bytes(4, "big")))
        decoded = codec.decode(encoded)
        assert decoded["op"] == "scan"
        assert int.from_bytes(decoded["value"][:4], "big") == 7

    def test_rmw_appends_atomically(self, two_hosts):
        server, client_rt = kv_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("log", b"a")
            yield from client.rmw("log", b"b")
            reply = yield from client.rmw("log", b"c")
            final = yield from client.get("log")
            return reply["value"], final["value"]

        after_rmw, final = run(two_hosts.env, scenario(two_hosts.env))
        assert after_rmw == b"abc"
        assert final == b"abc"

    def test_rmw_on_missing_key_creates_it(self, two_hosts):
        server, client_rt = kv_world(two_hosts)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            reply = yield from client.rmw("fresh", b"xyz")
            return reply

        reply = run(two_hosts.env, scenario(two_hosts.env))
        assert (reply["status"], reply["value"]) == ("ok", b"xyz")


class TestKvCodecValidation:
    """Regression: truncated/corrupt buffers must raise, not decode to a
    silently wrong key (chaos-corrupted datagrams became wrong-key ops)."""

    def _encoded(self, op="put", key="user42", value=b"payload"):
        return KvCodec().encode(kv_request(op, key, value))

    def test_truncated_request_header_raises(self):
        codec = KvCodec()
        with pytest.raises(ChunnelArgumentError, match="truncated request"):
            codec.decode(b"\x10\x00\x00")

    def test_truncated_key_raises(self):
        codec = KvCodec()
        encoded = self._encoded(key="a-long-key-name")
        # Cut mid-key: the old decoder sliced a shorter key and "succeeded".
        with pytest.raises(ChunnelArgumentError, match="truncated key"):
            codec.decode(encoded[:12])

    def test_key_hash_mismatch_raises(self):
        import struct

        codec = KvCodec()
        encoded = bytearray(self._encoded(key="victim"))
        struct.pack_into(">I", encoded, 1, 0xDEADBEEF)  # corrupt the hash
        with pytest.raises(ChunnelArgumentError, match="hash mismatch"):
            codec.decode(bytes(encoded))

    def test_corrupted_key_bytes_caught_by_hash(self):
        codec = KvCodec()
        encoded = bytearray(self._encoded(key="abcdef"))
        encoded[9] ^= 0xFF  # flip a key byte; hash no longer matches
        with pytest.raises(ChunnelArgumentError):
            codec.decode(bytes(encoded))

    def test_unknown_op_code_raises(self):
        codec = KvCodec()
        encoded = bytearray(self._encoded())
        encoded[5] = 0x7F
        with pytest.raises(ChunnelArgumentError, match="unknown op"):
            codec.decode(bytes(encoded))

    def test_truncated_response_value_raises(self):
        codec = KvCodec()
        encoded = codec.encode(kv_response("ok", b"0123456789"))
        with pytest.raises(ChunnelArgumentError, match="truncated value"):
            codec.decode(encoded[:10])

    def test_unknown_status_code_raises(self):
        codec = KvCodec()
        encoded = bytearray(codec.encode(kv_response("ok", b"v")))
        encoded[1] = 0x7F
        with pytest.raises(ChunnelArgumentError, match="unknown status"):
            codec.decode(bytes(encoded))

    def test_worker_counts_corrupt_request_as_error(self, two_hosts):
        from repro.apps.kvstore import ShardWorker

        server_rt = two_hosts.runtime("srv")
        worker = ShardWorker(server_rt.entity, 7199)
        corrupt = bytearray(KvCodec().encode(kv_request("put", "key", b"v")))
        corrupt[9] ^= 0xFF
        dgram_like = type(
            "D", (), {"payload": bytes(corrupt), "headers": {}, "src": None}
        )()
        response = worker._apply(dgram_like)
        assert response["status"] == "error"
        assert worker.errors == 1
        assert worker.requests_served == 0
        worker.stop()


class TestScanLengthValidation:
    """Regression: an explicit scan length of 0 was coerced to 1."""

    def test_scan_length_zero_returns_empty(self, two_hosts):
        server, client_rt = kv_world(two_hosts, shards=1)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            yield from client.connect(Address("srv", 7100))
            yield from client.put("k1", b"v")
            reply = yield from client.scan("k0", length=0)
            return reply

        reply = run(two_hosts.env, scenario(two_hosts.env))
        assert reply["status"] == "ok"
        assert reply["value"] == b""

    def test_client_rejects_out_of_range_lengths(self, two_hosts):
        client_rt = two_hosts.runtime("cl")
        client = KvClient(client_rt)
        for bad in (-1, 1 << 32, "ten", 2.5):
            with pytest.raises(ChunnelArgumentError):
                # .scan is a generator; validation must fire eagerly on
                # construction-time argument checking via next().
                gen = client.scan("k", bad)
                next(gen)
