"""Tier-1 integration scenarios under a seeded 10%-loss fault plan.

The ISSUE.md acceptance bar: with ``FaultPlan(drop_rate=0.10, ...)`` on
every link, the rpc (echo), kvstore, and reconfig scenarios must complete
with zero application-message loss and no double reservation.

Two delivery mechanisms are exercised:

* The echo scenario puts :class:`Reliable` in the negotiated DAG — the
  stack itself retransmits, so the application loop is loss-oblivious.
* The kv scenarios drive the connection with per-request ``rpc_id``
  headers and application-level retry.  Worker replies travel directly
  worker→client (the Listing 4 triangular path), bypassing the connection
  stack, so in-stack reliability cannot cover them — matching and retry
  must live at the application, exactly as datagram RPC clients do.
"""

import pytest

from repro.apps import EchoServer, KvClient, KvServer, kv_request
from repro.chunnels import (
    Reliable,
    ReliableFallback,
    Serialize,
    SerializeFallback,
    ShardServerFallback,
    ShardXdp,
)
from repro.core import Runtime, wrap
from repro.discovery import DiscoveryService
from repro.discovery.client import RemoteDiscoveryClient
from repro.sim import Address, FaultPlan, Network

from .conftest import run

#: The acceptance-criteria fault mix: 10% loss plus duplication/reorder.
CHAOS = dict(drop_rate=0.10, duplicate_rate=0.02, reorder_rate=0.05)


def chaos_world(seed):
    net = Network()
    for name in ("cl", "srv", "dsc"):
        net.add_host(name)
    net.add_switch("tor")
    for name in ("cl", "srv", "dsc"):
        net.add_link(name, "tor", latency=5e-6)
    net.attach_faults_everywhere(FaultPlan(seed=seed, **CHAOS))
    service = DiscoveryService(net.hosts["dsc"])
    return net, service


def make_runtime(net, service, host_name, **kwargs):
    # A larger retransmission budget than the defaults: every discovery
    # RPC crosses two lossy links in each direction.
    client = RemoteDiscoveryClient(
        net.hosts[host_name], service.address, timeout=2e-3, retries=8
    )
    runtime = Runtime(net.hosts[host_name], discovery=client, **kwargs)
    runtime.register_chunnel(SerializeFallback)
    return runtime


def _recv_or_timeout(env, event, timeout):
    """Generator: the event's value, or None after ``timeout`` seconds.

    Mirrors the runtime's ``_wait_with_timeout``: a timed-out mailbox get
    is cancelled via ``succeed(None)`` so it cannot swallow a later item
    (``Store.put`` skips triggered getters).
    """
    deadline = env.timeout(timeout)
    yield env.any_of([event, deadline])
    if event.processed:
        return event.value
    if not event.triggered:
        event.succeed(None)
    return None


def kv_rpc(env, conn, request, rpc_id, per_try=2.5e-3, tries=40):
    """Generator: at-least-once request with rpc_id matching.

    Retransmits the request until a reply tagged with this ``rpc_id``
    arrives; replies to earlier attempts (or fault-duplicated copies) are
    discarded by the id check.
    """
    for _attempt in range(tries):
        conn.send(request, headers={"rpc_id": rpc_id})
        deadline = env.now + per_try
        while True:
            remaining = deadline - env.now
            if remaining <= 0:
                break
            reply = yield from _recv_or_timeout(env, conn.recv(), remaining)
            if reply is None:
                break
            if reply.headers.get("rpc_id") == rpc_id:
                return reply.payload
    raise AssertionError(f"request {rpc_id} permanently lost")


class TestEchoUnderChaos:
    def test_reliable_dag_delivers_everything(self):
        net, service = chaos_world(seed=11)
        server_rt = make_runtime(net, service, "srv")
        client_rt = make_runtime(net, service, "cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(ReliableFallback)
        dag = wrap(Serialize() >> Reliable(timeout=150e-6, max_retries=12))
        server = EchoServer(server_rt, port=7400, dag=dag)

        def scenario(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(
                Address("srv", 7400), timeout=2e-3, retries=60
            )
            echoed = []
            for index in range(60):
                conn.send(f"ping-{index}", size=64)
                msg = yield conn.recv()
                echoed.append(msg.payload)
            conn.close()
            return echoed

        echoed = run(net.env, scenario(net.env), until=30.0)
        # Zero app-message loss, in order: Reliable retransmits and
        # suppresses the fault-injected duplicates.
        assert echoed == [f"ping-{i}" for i in range(60)]
        assert server.requests_served == 60
        # The faults genuinely fired and the stack genuinely recovered.
        assert net.fault_drops > 0
        assert service.audit_leases()["ok"]

    def test_same_seed_same_trace(self):
        def trace(seed):
            net, service = chaos_world(seed=seed)
            server_rt = make_runtime(net, service, "srv")
            client_rt = make_runtime(net, service, "cl")
            for rt in (server_rt, client_rt):
                rt.register_chunnel(ReliableFallback)
            dag = wrap(Serialize() >> Reliable(timeout=150e-6, max_retries=12))
            EchoServer(server_rt, port=7400, dag=dag)

            def scenario(env):
                yield env.timeout(1e-4)
                conn = yield from client_rt.new("c").connect(
                    Address("srv", 7400), timeout=2e-3, retries=60
                )
                times = []
                for index in range(20):
                    start = env.now
                    conn.send(f"ping-{index}", size=64)
                    yield conn.recv()
                    times.append(env.now - start)
                conn.close()
                return times

            return run(net.env, scenario(net.env), until=30.0)

        assert trace(23) == trace(23)


class TestKvStoreUnderChaos:
    def test_all_requests_complete_no_double_reservation(self):
        net, service = chaos_world(seed=12)
        server_rt = make_runtime(net, service, "srv")
        client_rt = make_runtime(net, service, "cl")
        server_rt.register_chunnel(ShardServerFallback)
        server = KvServer(server_rt, port=7100, shards=3)

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(
                Address("srv", 7100), timeout=2e-3, retries=60
            )
            for index in range(40):
                key, value = f"key-{index:03d}", f"value-{index}".encode()
                put = yield from kv_rpc(
                    env, conn, kv_request("put", key, value), rpc_id=2 * index
                )
                assert put["status"] == "ok"
                got = yield from kv_rpc(
                    env, conn, kv_request("get", key), rpc_id=2 * index + 1
                )
                assert got == {
                    "type": "response", "status": "ok", "value": value,
                }
            client.close()
            return True

        assert run(net.env, scenario(net.env), until=30.0)
        assert server.total_keys() == 40
        assert net.fault_drops > 0
        audit = service.audit_leases()
        assert audit["ok"]


class TestReconfigUnderChaos:
    def test_revocation_transition_survives_loss(self):
        net, service = chaos_world(seed=13)
        server_rt = make_runtime(net, service, "srv")
        client_rt = make_runtime(net, service, "cl")
        server_rt.register_chunnel(ShardServerFallback)
        record = service.register(ShardXdp.meta, location="srv")
        server = KvServer(server_rt, port=7100, auto_reconfig=True)

        def shard_impl(conn):
            (node_id,) = conn.dag.find("shard")
            return type(conn.impls[node_id]).__name__

        def scenario(env):
            yield env.timeout(1e-4)
            client = KvClient(client_rt)
            conn = yield from client.connect(
                Address("srv", 7100), timeout=2e-3, retries=80
            )
            server_conn = server.listener.connections[0]
            # The upgrade poll doubles as a watchdog: even if the watch
            # notification datagram is lost, the next poll re-decides.
            server_rt.reconfig.enable_upgrade_polling(
                server_conn, interval=5e-3
            )
            before = shard_impl(server_conn)
            for index in range(15):
                reply = yield from kv_rpc(
                    env, conn, kv_request("put", f"k{index}", b"v"),
                    rpc_id=index,
                )
                assert reply["status"] == "ok"
            service.revoke(record.record_id, reason="offload reclaimed")
            for _ in range(400):
                yield env.timeout(5e-3)
                if shard_impl(server_conn) == "ShardServerFallback":
                    break
            after = shard_impl(server_conn)
            # TRANSITION/ACK completed over the lossy links; the
            # connection keeps serving through and after the swap.
            for index in range(15, 30):
                reply = yield from kv_rpc(
                    env, conn, kv_request("put", f"k{index}", b"v"),
                    rpc_id=index,
                )
                assert reply["status"] == "ok"
            client.close()
            return before, after, server_conn

        before, after, server_conn = run(
            net.env, scenario(net.env), until=60.0
        )
        assert before == "ShardXdp"
        assert after == "ShardServerFallback"
        assert server_conn.transitions >= 1
        assert server.total_keys() == 30
        audit = service.audit_leases()
        assert audit["ok"]
        # The revoked offload's lease was released despite the loss.
        assert audit["leases"] == 0
