"""Capstone integration: a whole cluster, every subsystem at once.

One simulated deployment runs the paper's three applications side by side
— the sharded KV store (XDP-accelerated), a replicated state machine over
switch-sequenced multicast, and a latency-sensitive RPC service using the
local fast path — all sharing one discovery service, one ToR switch, and
one operator policy.  If the layers compose, this works; if any shared
state leaks between applications, it breaks here first.
"""

import pytest

from repro.apps import (
    EchoServer,
    KvClient,
    KvServer,
    RsmClient,
    RsmReplica,
    ping_session,
)
from repro.chunnels import (
    LocalOrRemote,
    LocalOrRemoteFallback,
    McastSequencerFallback,
    McastSwitchSequencer,
    SerializeFallback,
    ShardServerFallback,
    ShardXdp,
)
from repro.core import Runtime, wrap
from repro.discovery import DiscoveryService
from repro.sim import Address, Network

from .conftest import run


@pytest.fixture(scope="module")
def cluster_results():
    net = Network()
    # Hosts: KV server, three RSM replicas, an app host with two
    # containers (RPC server + its co-located client), one client machine,
    # and the infra host running discovery.
    net.add_host("kv-host")
    members = ["rsm0", "rsm1", "rsm2"]
    for name in members:
        net.add_host(name)
    app_host = net.add_host("app-host")
    rpc_server_ct = app_host.add_container("rpc-server-ct")
    rpc_client_ct = app_host.add_container("rpc-client-ct")
    net.add_host("client-host")
    infra = net.add_host("infra")
    net.add_switch("tor")
    for name in ["kv-host", *members, "app-host", "client-host", "infra"]:
        net.add_link(name, "tor", latency=5e-6)

    discovery = DiscoveryService(infra)
    # The operator registers the offloads once, cluster-wide (Figure 1's
    # coordination, collapsed into two calls):
    discovery.register(ShardXdp.meta, location="kv-host")
    discovery.register(McastSwitchSequencer.meta, location="tor")

    # --- the KV application
    kv_rt = Runtime(net.hosts["kv-host"], discovery=discovery.address)
    kv_rt.register_chunnel(SerializeFallback)
    kv_rt.register_chunnel(ShardServerFallback)
    kv_server = KvServer(kv_rt, port=7100, shards=3)

    # --- the RSM application (thin clients → switch sequencer wins)
    replicas = []
    for name in members:
        runtime = Runtime(net.hosts[name], discovery=discovery.address)
        runtime.register_chunnel(SerializeFallback)
        runtime.register_chunnel(McastSequencerFallback)
        replicas.append(
            RsmReplica(runtime, port=7300, group="cluster-rsm", members=members)
        )

    # --- the RPC application (two containers on app-host)
    rpc_rt = Runtime(rpc_server_ct, discovery=discovery.address)
    rpc_rt.register_chunnel(LocalOrRemoteFallback)
    EchoServer(
        rpc_rt, port=7000, dag=wrap(LocalOrRemote()), service_name="rpc-svc"
    )

    # --- clients
    kv_client_rt = Runtime(net.hosts["client-host"], discovery=discovery.address)
    kv_client_rt.register_chunnel(SerializeFallback)
    rsm_client_rt = Runtime(net.hosts["client-host"], discovery=discovery.address)
    rsm_client_rt.register_chunnel(SerializeFallback)
    rpc_client_rt = Runtime(rpc_client_ct, discovery=discovery.address)
    rpc_client_rt.register_chunnel(LocalOrRemoteFallback)

    results = {}

    def kv_workload(env):
        yield env.timeout(1e-3)
        client = KvClient(kv_client_rt)
        yield from client.connect(Address("kv-host", 7100))
        node = client.conn.dag.find("shard")[0]
        results["kv_impl"] = type(client.conn.impls[node]).__name__
        for index in range(20):
            yield from client.put(f"cluster-key-{index}", b"v%d" % index)
        ok = 0
        for index in range(20):
            reply = yield from client.get(f"cluster-key-{index}")
            ok += reply["status"] == "ok"
        results["kv_ok"] = ok

    def rsm_workload(env):
        yield env.timeout(1e-3)
        client = RsmClient(rsm_client_rt, group="cluster-rsm")
        yield from client.connect([r.address for r in replicas])
        node = client.conn.dag.find("ordered_mcast")[0]
        results["rsm_impl"] = type(client.conn.impls[node]).__name__
        for index in range(10):
            yield from client.submit(
                {"op": "put", "key": "counter", "value": index}
            )
        results["rsm_final"] = yield from client.submit(
            {"op": "get", "key": "counter"}
        )

    def rpc_workload(env):
        yield env.timeout(1e-3)
        result = yield from ping_session(
            rpc_client_rt, "rpc-svc", dag=wrap(LocalOrRemote()), size=64,
            count=10,
        )
        results["rpc_transport"] = result.transport
        results["rpc_mean_rtt"] = sum(result.rtts) / len(result.rtts)

    for workload in (kv_workload, rsm_workload, rpc_workload):
        net.env.process(workload(net.env))
    net.env.run(until=2.0)
    results["replica_states"] = [r.state for r in replicas]
    results["kv_total_keys"] = kv_server.total_keys()
    results["switch_programs"] = [
        p.name for p in net.switches["tor"].programs
    ]
    results["kernel_programs"] = [
        p.name for p in net.hosts["kv-host"].kernel_programs
    ]
    results["discovery_in_use_kv"] = discovery.device_in_use("kv-host")
    results["discovery_in_use_tor"] = discovery.device_in_use("tor")
    return results


class TestClusterIntegration:
    def test_kv_uses_xdp_and_answers_everything(self, cluster_results):
        assert cluster_results["kv_impl"] == "ShardXdp"
        assert cluster_results["kv_ok"] == 20
        assert cluster_results["kv_total_keys"] == 20

    def test_rsm_uses_switch_sequencer_and_converges(self, cluster_results):
        assert cluster_results["rsm_impl"] == "McastSwitchSequencer"
        assert cluster_results["rsm_final"] == 9
        states = cluster_results["replica_states"]
        assert states[0] == states[1] == states[2] == {"counter": 9}

    def test_rpc_negotiated_pipes(self, cluster_results):
        assert cluster_results["rpc_transport"] == "pipe"
        assert cluster_results["rpc_mean_rtt"] < 20e-6

    def test_devices_carry_exactly_the_expected_programs(self, cluster_results):
        assert any(
            "mcast-seq-prog" in name
            for name in cluster_results["switch_programs"]
        )
        assert any(
            "xdp-shard" in name for name in cluster_results["kernel_programs"]
        )

    def test_discovery_accounting_reflects_live_offloads(self, cluster_results):
        assert cluster_results["discovery_in_use_kv"]["xdp_share"] == 1
        assert cluster_results["discovery_in_use_tor"]["switch_stages"] == 1
