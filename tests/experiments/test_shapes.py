"""Shape checks: do the reproduced experiments show the paper's results?

These run scaled-down versions of every figure and assert the *qualitative*
claims (who wins, roughly by how much, where crossovers are) — the
reproduction contract DESIGN.md §4 sets out.  The full-scale versions live
in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    Fig3Config,
    Fig4Config,
    Fig5Config,
    run_fig3,
    run_fig4,
    run_fig5_scenario,
    run_negotiation_overhead,
    run_optimizer_ablation,
    run_scheduler_ablation,
    run_serialization_comparison,
)


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(Fig3Config(connections=40, sizes=[64, 10240]))


class TestFig3Shapes:
    def test_bertha_matches_hardcoded_ipc(self, fig3_result):
        """The headline: negotiated ≈ specialized, within 10%."""
        for size in fig3_result.config.sizes:
            bertha = fig3_result.rtts[("bertha", size)].p50
            pipes = fig3_result.rtts[("pipes", size)].p50
            assert bertha == pytest.approx(pipes, rel=0.10)

    def test_both_beat_container_tcp(self, fig3_result):
        for size in fig3_result.config.sizes:
            bertha = fig3_result.rtts[("bertha", size)].p50
            tcp = fig3_result.rtts[("tcp", size)].p50
            assert tcp > 2 * bertha

    def test_udp_sits_between(self, fig3_result):
        for size in fig3_result.config.sizes:
            udp = fig3_result.rtts[("udp", size)].p50
            tcp = fig3_result.rtts[("tcp", size)].p50
            bertha = fig3_result.rtts[("bertha", size)].p50
            assert bertha < udp < tcp

    def test_setup_overhead_only_at_connect(self, fig3_result):
        """Bertha pays negotiation at connect, not per message."""
        size = fig3_result.config.sizes[0]
        bertha_setup = fig3_result.setups[("bertha", size)].p50
        pipes_setup = fig3_result.setups[("pipes", size)].p50
        assert bertha_setup > pipes_setup  # the 2 control RTTs exist
        # ...but steady-state RTTs match (tested above).

    def test_distribution_is_non_degenerate(self, fig3_result):
        size = fig3_result.config.sizes[0]
        summary = fig3_result.rtts[("bertha", size)]
        assert summary.p95 > summary.p5

    def test_rows_render(self, fig3_result):
        table = fig3_result.render()
        assert "bertha" in table and "tcp" in table


class TestFig4Shapes:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(Fig4Config(duration=8.0, connect_interval=0.5))

    def test_latency_steps_down_after_local_start(self, result):
        assert result.before is not None and result.after is not None
        assert result.after.p50 < result.before.p50 / 2

    def test_switch_happens_at_local_start_time(self, result):
        config = Fig4Config(duration=8.0, connect_interval=0.5)
        assert (
            config.local_start_time
            <= result.switch_time
            <= config.local_start_time + 2 * config.connect_interval
        )

    def test_transport_switches_to_pipe(self, result):
        transports = [t for _time, t in result.transports]
        assert transports[0] == "udp"
        assert transports[-1] == "pipe"

    def test_no_client_changes_were_needed(self, result):
        """Every connection used the same endpoint code; only resolution
        changed.  (Encoded here as: the series is continuous — a connection
        attempt exists in every interval.)"""
        assert len(result.series) >= 14


class TestFig5Shapes:
    @pytest.fixture(scope="class")
    def config(self):
        return Fig5Config(requests_per_point=1500)

    def point(self, scenario, load, config):
        result = run_fig5_scenario(scenario, load, config)
        import numpy as np

        latencies = result["latencies_us"]
        return float(np.percentile(latencies, 95)) if latencies else float("inf")

    def test_fallback_saturates_first(self, config):
        fallback = self.point("server_fallback", 300_000, config)
        accel = self.point("server_accel", 300_000, config)
        push = self.point("client_push", 300_000, config)
        assert fallback > 5 * accel
        assert fallback > 5 * push

    def test_xdp_saturates_before_client_push(self, config):
        accel = self.point("server_accel", 650_000, config)
        push = self.point("client_push", 650_000, config)
        assert accel > 2 * push

    def test_low_load_ordering(self, config):
        """Below every knee, all four are within a small factor, with the
        fallback paying its extra hop."""
        push = self.point("client_push", 100_000, config)
        accel = self.point("server_accel", 100_000, config)
        mixed = self.point("mixed", 100_000, config)
        fallback = self.point("server_fallback", 100_000, config)
        assert fallback > push
        assert max(push, accel, mixed) < 2 * min(push, accel, mixed)

    def test_mixed_sits_between(self, config):
        load = 550_000
        push = self.point("client_push", load, config)
        accel = self.point("server_accel", load, config)
        mixed = self.point("mixed", load, config)
        assert push <= mixed <= accel * 1.1

    def test_negotiation_picks_expected_impls(self, config):
        result = run_fig5_scenario("mixed", 100_000, config)
        assert sorted(result["chosen_impls"]) == [
            "ShardClientFallback",
            "ShardXdp",
        ]

    def test_everything_completes_below_saturation(self, config):
        result = run_fig5_scenario("client_push", 200_000, config)
        assert result["completed"] == result["offered"]


class TestAblationShapes:
    def test_negotiation_costs_two_round_trips_and_nothing_after(self):
        result = run_negotiation_overhead(connections=20, requests=10)
        assert result.control_round_trips == 2
        # Steady state: identical data path, no added per-message latency.
        assert result.bertha_rtt_us == pytest.approx(
            result.hardcoded_rtt_us, rel=0.05
        )
        assert result.bertha_setup_us > result.hardcoded_setup_us

    def test_optimizer_reorder_saves_3x_pcie(self):
        result = run_optimizer_ablation(messages=100)
        by_name = {row["pipeline"]: row for row in result.rows()}
        original = by_name["encrypt |> http2 |> tcp"]
        reordered = by_name["http2 |> encrypt |> tcp"]
        assert original["crossings"] == 3
        assert reordered["crossings"] == 1
        assert original["pcie_bytes"] == 3 * reordered["pcie_bytes"]

    def test_optimizer_merge_produces_tls(self):
        result = run_optimizer_ablation(messages=10)
        assert any("tls" in row["pipeline"] for row in result.rows())

    def test_scheduler_drf_serves_both_tenants(self):
        result = run_scheduler_ablation()
        by_name = {row["scheduler"]: row for row in result.rows()}
        assert by_name["first-fit"]["tenants_served"] == 1
        assert by_name["drf"]["tenants_served"] == 2
        assert by_name["drf"]["max_min_gap"] < by_name["first-fit"]["max_min_gap"]

    def test_accelerated_serialization_is_faster(self):
        rows = run_serialization_comparison(requests=40, value_size=4096)
        by_impl = {row["implementation"]: row["mean_rtt_us"] for row in rows}
        assert by_impl["fpga"] < by_impl["sw"]


@pytest.fixture(scope="module")
def reconfig_result():
    from repro.experiments import ReconfigConfig, run_reconfig

    return run_reconfig(
        ReconfigConfig(
            duration=3.0,
            revoke_at=1.0,
            restore_at=2.0,
            offered_load=1000,
            bucket=0.25,
            phase_margin=0.3,
            poll_interval=0.1,
        )
    )


class TestReconfigShapes:
    def test_zero_loss_through_both_transitions(self, reconfig_result):
        """The acceptance bar: revocation mid-stream loses nothing."""
        assert reconfig_result.zero_loss
        assert reconfig_result.offered > 0

    def test_p95_steps_up_then_recovers(self, reconfig_result):
        p95 = reconfig_result.phase_p95
        assert p95["degraded"] > 1.2 * p95["baseline"]
        assert p95["recovered"] == pytest.approx(p95["baseline"], rel=0.05)

    def test_transitions_happen_at_the_right_times(self, reconfig_result):
        config = reconfig_result.config
        commits = [
            t for t, event, _ in reconfig_result.transitions if event == "committed"
        ]
        assert len(commits) == 2
        degrade, upgrade = commits
        assert config.revoke_at <= degrade <= config.revoke_at + 0.1
        assert (
            config.restore_at
            <= upgrade
            <= config.restore_at + 2 * config.poll_interval
        )

    def test_impl_timeline_round_trips_to_xdp(self, reconfig_result):
        impls = [impl for _t, impl in reconfig_result.impl_timeline]
        assert impls[0] == "ShardXdp"
        assert any("server-fallback" in i for i in impls)
        assert impls[-1] == "ShardXdp"

    def test_pauses_are_bounded(self, reconfig_result):
        assert len(reconfig_result.pause_times) == 2
        assert all(0 < p < 1e-3 for p in reconfig_result.pause_times)

    def test_rows_render(self, reconfig_result):
        rows = reconfig_result.rows()
        assert len(rows) >= 10
        assert "p95_us" in reconfig_result.render()


class TestEpochOverheadShape:
    def test_arming_reconfiguration_is_free(self):
        from repro.experiments import run_epoch_overhead

        overhead = run_epoch_overhead(requests=300)
        assert overhead["n"] == 300
        # Exact equality: the sim is deterministic and epoch 0 stamps
        # nothing, so the latency streams are bit-identical.
        assert overhead["identical"]
        assert overhead["max_abs_delta_us"] == 0.0
