"""The engine benchmark: tiers measured, deterministic, CLI-wired."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.engine import (
    PRE_REFACTOR_REFERENCE,
    EngineConfig,
    run_engine,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_engine.json"


@pytest.fixture(scope="module")
def smoke_result():
    """One shared smoke measurement (the CI tier: two repeats, so the
    determinism digest comparison is meaningful)."""
    return run_engine(EngineConfig.smoke())


class TestSmokeTier:
    def test_overall_ok(self, smoke_result):
        assert smoke_result.ok

    def test_tier_measured(self, smoke_result):
        tier = smoke_result.tier("smoke")
        assert tier is not None
        assert tier.wall_s > 0
        assert tier.events > 0
        assert tier.events_per_sec > 0
        assert tier.repeats == 2

    def test_same_seed_repeats_are_bit_identical(self, smoke_result):
        tier = smoke_result.tier("smoke")
        assert tier.deterministic
        assert len(tier.metrics_digest) == 64  # sha256 of the canonical export

    def test_workload_invariants_checked(self, smoke_result):
        assert smoke_result.tier("smoke").invariants_ok

    def test_payload_shape(self, smoke_result):
        payload = smoke_result.payload()
        assert payload["experiment"] == "engine"
        assert "smoke" in payload["tiers"]
        assert payload["reference"]["pre_refactor"] == PRE_REFACTOR_REFERENCE

    def test_write_baseline_roundtrips(self, smoke_result, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        smoke_result.write_baseline(str(path))
        snap = json.loads(path.read_text())
        assert snap["tiers"]["smoke"]["deterministic"] is True
        assert snap["tiers"]["smoke"]["events"] > 0

    def test_render_mentions_every_tier(self, smoke_result):
        rendered = smoke_result.render()
        assert "smoke" in rendered
        assert "events/s" in rendered


class TestConfig:
    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(tiers=("warp",))

    def test_nonpositive_repeats_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(repeats=0)


class TestRecordedBaseline:
    """The checked-in BENCH_engine.json is the artifact CI gates against."""

    @pytest.fixture(scope="class")
    def recorded(self):
        return json.loads(BASELINE_PATH.read_text())

    def test_all_tiers_recorded(self, recorded):
        assert set(recorded["tiers"]) == {"smoke", "chaos_sweep", "scaled"}
        for tier in recorded["tiers"].values():
            assert tier["deterministic"] is True
            assert tier["invariants_ok"] is True
            assert tier["events"] > 0
            assert tier["events_per_sec"] > 0

    def test_speedups_recorded_against_pre_refactor(self, recorded):
        reference = recorded["reference"]
        assert reference["pre_refactor"]["chaos_sweep_wall_s"] > 0
        assert reference["speedups"]["chaos_sweep"] > 1.0
        assert reference["speedups"]["scaled"] > 1.0


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCli:
    def test_bench_engine_smoke(self, tmp_path):
        out_path = tmp_path / "engine.json"
        result = run_cli(
            "bench", "engine", "--smoke", "--metrics-out", str(out_path)
        )
        assert result.returncode == 0, result.stderr
        assert "smoke" in result.stdout
        snap = json.loads(out_path.read_text())
        assert snap["tiers"]["smoke"]["deterministic"] is True

    def test_unknown_bench_target_rejected(self):
        result = run_cli("bench", "warp")
        assert result.returncode != 0
        assert "warp" in result.stderr

    def test_profile_flag_prints_hotspots(self, tmp_path):
        stats_path = tmp_path / "engine.pstats"
        result = run_cli(
            "engine",
            "--tier",
            "smoke",
            "--repeats",
            "1",
            "--profile",
            "--profile-out",
            str(stats_path),
        )
        assert result.returncode == 0, result.stderr
        assert "cumulative" in result.stdout  # cProfile table made it out
        assert stats_path.exists()
