"""The offload experiment: crossover, coherence, exactly-once, CI-usable."""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.offload import (
    OffloadConfig,
    OffloadResult,
    run_offload,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_offload.json"


@pytest.fixture(scope="module")
def result() -> OffloadResult:
    """One shared seed-7 run (the CI tier *is* the default timeline)."""
    return run_offload(OffloadConfig.smoke(seed=7))


class TestInvariants:
    def test_overall_ok(self, result):
        assert result.ok

    def test_each_invariant_holds(self, result):
        invariants = result.invariants
        assert invariants["cache_wins_high_skew"]
        assert invariants["hit_rate_rises_with_skew"]
        assert invariants["cache_wins_read_heavy"]
        assert invariants["cache_saturates_on_writes"]
        assert invariants["sweeps_zero_loss"]
        assert invariants["no_stale_after_put"]
        assert invariants["delete_invalidates"]
        assert invariants["coherence_served_from_cache"]
        assert invariants["fanin_byte_identical"]
        assert invariants["fanin_absorbs_replies"]
        assert invariants["failover_exactly_once"]
        assert invariants["failover_reconfigured"]
        assert invariants["priority_preempts_aggregator"]
        assert invariants["drf_denied_in_arrival_order"]

    def test_crossover_exists_inside_the_mix_sweep(self, result):
        # Read-heavy favours the cache, write-heavy favours the host —
        # the saturation arm of the Fig. 5-style crossover.
        winners = [
            "cache" if row["cached_us"] < row["host_us"] else "host"
            for row in result.mix_sweep
        ]
        assert winners[0] == "cache"
        assert winners[-1] == "host"

    def test_hit_rate_monotone_signal(self, result):
        rates = [row["hit_rate"] for row in result.skew_sweep]
        assert rates[-1] > rates[0]
        assert all(0.0 <= rate <= 1.0 for rate in rates)

    def test_fanin_switch_absorbed_n_minus_one(self, result):
        config = result.config
        expected = (config.fanin_members - 1) * config.fanin_requests
        assert result.fanin["absorbed"] == expected
        assert result.fanin["aggregated"] == config.fanin_requests
        assert result.fanin["host_impl"] == "FanInHost"
        assert result.fanin["switch_impl"] == "FanInSwitch"
        # The host leg gathered everything itself; the switch leg's
        # client stage only saw pre-combined replies.
        assert result.fanin["host_gathered_at_host"] == config.fanin_requests
        assert (
            result.fanin["switch_gathered_in_network"]
            == config.fanin_requests
        )

    def test_failover_is_exactly_once(self, result):
        assert result.failover["offered"] == result.failover["delivered"]
        assert result.failover["duplicates"] == 0
        assert result.failover["lost"] == 0
        # The listener degraded off the failed switch and came back.
        assert result.failover["transitions"] >= 2

    def test_contention_preempts_and_orders(self, result):
        contention = result.contention
        assert contention["fanin_granted_first"]
        assert contention["cache_granted"]
        assert contention["preempted"] == 1
        # After preemption only the cache occupies the ToR.
        assert contention["in_use"]["switch_stages"] == 3.0
        assert contention["drf_denied"] == [
            "kvcache/switch",
            "kvcache/second",
        ]
        assert contention["drf_denied_ok"]

    def test_violated_invariant_flips_ok(self, result):
        broken = replace(
            result,
            failover={**result.failover, "duplicates": 1},
        )
        assert not broken.invariants["failover_exactly_once"]
        assert not broken.ok


class TestDeterminism:
    def test_same_seed_bit_identical_metrics_payload(self, result):
        # The CI offload gate in code form: two same-seed runs serialize
        # to the exact same canonical JSON.
        again = run_offload(OffloadConfig.smoke(seed=7))
        first = json.dumps(
            result.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        second = json.dumps(
            again.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        assert first == second


class TestBaseline:
    def test_checked_in_baseline_matches_seed7(self, result):
        committed = json.loads(BASELINE_PATH.read_text())
        assert committed == result.to_baseline()


class TestMetricsPayload:
    def test_payload_carries_world_snapshot(self, result):
        payload = result.metrics_payload()
        assert payload["experiment"] == "offload"
        assert payload["world"], "failover world snapshot missing"
        assert len(payload["skew_sweep"]) == len(result.config.skew_points)
        assert len(payload["mix_sweep"]) == len(result.config.mix_points)
