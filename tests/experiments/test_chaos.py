"""The chaos experiment: invariants asserted, deterministic, CI-usable."""

import json

import pytest

from repro.experiments.chaos import ChaosConfig, ChaosResult, run_chaos


@pytest.fixture(scope="module")
def smoke_result() -> ChaosResult:
    """One shared smoke run (the CI tier: a single 5%-loss point)."""
    return run_chaos(ChaosConfig.smoke(seed=7))


class TestInvariants:
    def test_overall_ok(self, smoke_result):
        assert smoke_result.ok

    def test_each_invariant_holds(self, smoke_result):
        invariants = smoke_result.invariants
        assert invariants["all_established"]
        assert invariants["zero_app_loss"]
        assert invariants["no_double_reservation"]
        assert invariants["bounded_setup"]
        assert invariants["outage_degraded_not_failed"]
        assert invariants["outage_recovered"]

    def test_faults_actually_fired(self, smoke_result):
        (point,) = smoke_result.points
        assert point.loss == 0.05
        assert point.fault_drops > 0
        # Loss was recovered by work, not luck: the stack retransmitted.
        assert point.reliability_retransmissions > 0

    def test_outage_segment_recorded(self, smoke_result):
        outage = smoke_result.outage
        assert outage["degraded_established"]
        assert outage["degraded_served"]
        assert outage["recovered_full"]
        assert outage["audit_ok"]

    def test_violated_invariant_flips_ok(self, smoke_result):
        # A result whose books don't balance must not report ok — the CLI
        # exits non-zero off this property.
        (point,) = smoke_result.points
        broken = ChaosResult(
            points=[point.__class__(**{**point.__dict__, "audit_ok": False})],
            outage=smoke_result.outage,
            config=smoke_result.config,
        )
        assert not broken.invariants["no_double_reservation"]
        assert not broken.ok


class TestDeterminism:
    def test_same_seed_same_baseline(self, smoke_result):
        again = run_chaos(ChaosConfig.smoke(seed=7))
        assert json.dumps(again.to_baseline(), sort_keys=True) == json.dumps(
            smoke_result.to_baseline(), sort_keys=True
        )

    def test_different_seed_different_trace(self, smoke_result):
        other = run_chaos(ChaosConfig.smoke(seed=8))
        assert (
            other.to_baseline()["points"]
            != smoke_result.to_baseline()["points"]
        )


class TestBaselineShape:
    def test_baseline_payload(self, smoke_result, tmp_path):
        path = tmp_path / "BENCH_chaos.json"
        smoke_result.write_baseline(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "chaos"
        assert payload["seed"] == 7
        assert set(payload["discovery"]) == {"timeout_s", "retries", "backoff"}
        (point,) = payload["points"]
        assert point["loss"] == 0.05
        assert point["extra_round_trips"] == (
            point["discovery_retransmits"]
            + point["reliability_retransmissions"]
        )
        assert payload["invariants"]["zero_app_loss"] is True

    def test_rows_render(self, smoke_result):
        rendered = smoke_result.render()
        assert "loss_pct" in rendered
        assert "invariants:" in rendered
