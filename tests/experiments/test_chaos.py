"""The chaos experiment: invariants asserted, deterministic, CI-usable."""

import json
from pathlib import Path

import pytest

from repro.experiments.chaos import ChaosConfig, ChaosResult, run_chaos

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_chaos.json"

#: The recorded baseline before the control plane moved onto the unified
#: RPC core (typed messages + shared retransmit loop).  The refactor must
#: not change the protocol's round-trip economics: retransmit-driven extra
#: round trips stay within loss noise, and the loss-free setup latency
#: stays put.  Loss-y percentile latencies are heavy-tailed (one unlucky
#: retransmit schedule moves p50 by multiples), so they only get an
#: order-of-magnitude bound.
PRE_UNIFICATION_POINTS = {
    0.0: {"extra_round_trips": 18, "setup_p50_us": 158.153, "setup_p95_us": 333.742},
    0.05: {"extra_round_trips": 93, "setup_p50_us": 2235.095, "setup_p95_us": 3508.046},
    0.1: {"extra_round_trips": 141, "setup_p50_us": 5783.878, "setup_p95_us": 23035.207},
    0.2: {"extra_round_trips": 433, "setup_p50_us": 8752.658, "setup_p95_us": 108249.283},
}


@pytest.fixture(scope="module")
def smoke_result() -> ChaosResult:
    """One shared smoke run (the CI tier: a single 5%-loss point)."""
    return run_chaos(ChaosConfig.smoke(seed=7))


class TestInvariants:
    def test_overall_ok(self, smoke_result):
        assert smoke_result.ok

    def test_each_invariant_holds(self, smoke_result):
        invariants = smoke_result.invariants
        assert invariants["all_established"]
        assert invariants["zero_app_loss"]
        assert invariants["no_double_reservation"]
        assert invariants["bounded_setup"]
        assert invariants["outage_degraded_not_failed"]
        assert invariants["outage_recovered"]

    def test_faults_actually_fired(self, smoke_result):
        (point,) = smoke_result.points
        assert point.loss == 0.05
        assert point.fault_drops > 0
        # Loss was recovered by work, not luck: the stack retransmitted.
        assert point.reliability_retransmissions > 0

    def test_outage_segment_recorded(self, smoke_result):
        outage = smoke_result.outage
        assert outage["degraded_established"]
        assert outage["degraded_served"]
        assert outage["recovered_full"]
        assert outage["audit_ok"]

    def test_violated_invariant_flips_ok(self, smoke_result):
        # A result whose books don't balance must not report ok — the CLI
        # exits non-zero off this property.
        (point,) = smoke_result.points
        broken = ChaosResult(
            points=[point.__class__(**{**point.__dict__, "audit_ok": False})],
            outage=smoke_result.outage,
            config=smoke_result.config,
        )
        assert not broken.invariants["no_double_reservation"]
        assert not broken.ok


class TestDeterminism:
    def test_same_seed_same_baseline(self, smoke_result):
        again = run_chaos(ChaosConfig.smoke(seed=7))
        assert json.dumps(again.to_baseline(), sort_keys=True) == json.dumps(
            smoke_result.to_baseline(), sort_keys=True
        )

    def test_different_seed_different_trace(self, smoke_result):
        other = run_chaos(ChaosConfig.smoke(seed=8))
        assert (
            other.to_baseline()["points"]
            != smoke_result.to_baseline()["points"]
        )

    def test_same_seed_bit_identical_metrics_snapshots(self, smoke_result):
        # The CI determinism gate in code form: every registry snapshot —
        # all sweep points plus the outage segment — must serialize to the
        # exact same canonical JSON across same-seed runs.
        again = run_chaos(ChaosConfig.smoke(seed=7))
        first = json.dumps(
            smoke_result.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        second = json.dumps(
            again.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        assert first == second


class TestMetricsPayload:
    def test_every_point_carries_a_full_snapshot(self, smoke_result):
        (point,) = smoke_result.points
        assert point.metrics, "point snapshot missing"
        # The motivation counters all reach one namespace: spot-check one
        # name per legacy subsystem.
        names = set(point.metrics)
        for prefix in (
            "net.delivered",
            "net.fault_drops",
            "discovery.requests_served",
            "experiment.established",
        ):
            assert any(n.startswith(prefix) for n in names), prefix
        for prefix in ("link.", "faults.", "rpc.discovery.", "conn.", "runtime."):
            assert any(n.startswith(prefix) for n in names), prefix

    def test_invariants_derive_from_snapshots(self, smoke_result):
        (point,) = smoke_result.points
        snap = point.metrics
        assert point.fault_drops == snap["net.fault_drops"]
        assert point.duplicate_requests == snap["discovery.duplicate_requests"]
        assert point.established == snap["experiment.established"]
        assert point.discovery_retransmits == sum(
            value
            for name, value in snap.items()
            if name.startswith("rpc.discovery.")
            and name.endswith(".retransmits_total")
        )

    def test_write_metrics_file(self, smoke_result, tmp_path):
        path = tmp_path / "metrics.json"
        smoke_result.write_metrics(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "chaos"
        assert payload["seed"] == 7
        assert [p["loss"] for p in payload["points"]] == [0.05]
        assert payload["points"][0]["metrics"]
        assert payload["outage"]["metrics"]


class TestBaselineShape:
    def test_baseline_payload(self, smoke_result, tmp_path):
        path = tmp_path / "BENCH_chaos.json"
        smoke_result.write_baseline(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "chaos"
        assert payload["seed"] == 7
        assert set(payload["discovery"]) == {"timeout_s", "retries", "backoff"}
        (point,) = payload["points"]
        assert point["loss"] == 0.05
        assert point["extra_round_trips"] == (
            point["discovery_retransmits"]
            + point["reliability_retransmissions"]
        )
        assert payload["invariants"]["zero_app_loss"] is True

    def test_rows_render(self, smoke_result):
        rendered = smoke_result.render()
        assert "loss_pct" in rendered
        assert "invariants:" in rendered


class TestRecordedBaselineWithinNoise:
    """The checked-in BENCH_chaos.json (re-recorded on the unified RPC
    core) must not have drifted from the pre-unification run in ways that
    would indicate extra protocol round trips or slower establishment."""

    @pytest.fixture(scope="class")
    def recorded(self) -> dict:
        return json.loads(BASELINE_PATH.read_text())

    def test_invariants_still_hold(self, recorded):
        assert all(recorded["invariants"].values())

    def test_same_loss_points(self, recorded):
        assert [p["loss"] for p in recorded["points"]] == sorted(
            PRE_UNIFICATION_POINTS
        )

    def test_extra_round_trips_within_noise(self, recorded):
        for point in recorded["points"]:
            reference = PRE_UNIFICATION_POINTS[point["loss"]]
            # Retransmit counts move with the loss pattern, not the code
            # path: ±50% covers the reshuffled drop schedule (sizes are
            # content-derived now), while a protocol regression that added
            # a round trip per connection would blow far past it.
            assert (
                0.5 * reference["extra_round_trips"]
                <= point["extra_round_trips"]
                <= 1.5 * reference["extra_round_trips"]
            ), f"extra round trips drifted at loss {point['loss']}"

    def test_loss_free_setup_latency_within_noise(self, recorded):
        (point,) = [p for p in recorded["points"] if p["loss"] == 0.0]
        reference = PRE_UNIFICATION_POINTS[0.0]
        for metric in ("setup_p50_us", "setup_p95_us"):
            assert (
                0.75 * reference[metric]
                <= point[metric]
                <= 1.25 * reference[metric]
            ), f"loss-free {metric} drifted"

    def test_lossy_setup_latency_same_magnitude(self, recorded):
        for point in recorded["points"]:
            if point["loss"] == 0.0:
                continue
            reference = PRE_UNIFICATION_POINTS[point["loss"]]
            for metric in ("setup_p50_us", "setup_p95_us"):
                ratio = point[metric] / reference[metric]
                assert 0.1 <= ratio <= 10.0, (
                    f"{metric} at loss {point['loss']} off by {ratio:.1f}x"
                )


class TestSameSeedByteIdentity:
    """Two same-seed runs must export byte-for-byte identical metrics.

    CI diffs two subprocess exports already; this is the in-process
    version, so a nondeterminism regression (iteration-order leak, id()
    in a sort key, wall-clock in a metric) fails the suite directly.
    """

    def test_two_smoke_runs_export_identical_metrics(self):
        def canonical():
            result = run_chaos(ChaosConfig.smoke(seed=7))
            return json.dumps(
                result.metrics_payload(), sort_keys=True, separators=(",", ":")
            )

        assert canonical() == canonical()
