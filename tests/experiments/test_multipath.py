"""The multipath experiment: crossover, rebalance, determinism, CI-usable."""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.multipath import (
    MultipathConfig,
    MultipathResult,
    run_multipath,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_multipath.json"


@pytest.fixture(scope="module")
def result() -> MultipathResult:
    """One shared seed-7 run (the CI tier *is* the default timeline)."""
    return run_multipath(MultipathConfig.smoke(seed=7))


class TestInvariants:
    def test_overall_ok(self, result):
        assert result.ok

    def test_each_invariant_holds(self, result):
        invariants = result.invariants
        assert invariants["split_wins_asymmetric"]
        assert invariants["direct_wins_clean"]
        assert invariants["sweep_zero_loss"]
        assert invariants["rebalance_committed"]
        assert invariants["rebalance_alarmed"]
        assert invariants["rebalance_shifted"]
        assert invariants["rebalance_zero_app_loss"]
        assert invariants["rebalance_zero_duplicates"]

    def test_crossover_exists_inside_the_sweep(self, result):
        # The clean point favours direct, every lossy point favours the
        # split — the paper's connection-splitting trade-off.
        winners = [row["winner"] for row in result.rows()]
        assert winners[0] == "direct"
        assert set(winners[1:]) == {"split"}

    def test_split_advantage_grows_with_loss(self, result):
        gaps = [
            row["direct_rtt_us"] - row["split_rtt_us"] for row in result.sweep
        ]
        assert gaps[-1] > gaps[1] > 0

    def test_rebalance_shifted_traffic(self, result):
        assert result.reb_alarms == 1
        assert result.reb_committed == 1
        assert result.post_share <= result.pre_share / 2
        assert sum(result.pre_sent) > 0
        assert sum(result.post_sent) > 0
        assert result.reb_app_loss == 0

    def test_violated_invariant_flips_ok(self, result):
        broken = replace(result, reb_delivered=result.reb_delivered - 1)
        assert broken.reb_app_loss == 1
        assert not broken.invariants["rebalance_zero_app_loss"]
        assert not broken.ok


class TestDeterminism:
    def test_same_seed_bit_identical_metrics_payload(self, result):
        # The CI multipath gate in code form: two same-seed runs serialize
        # to the exact same canonical JSON.
        again = run_multipath(MultipathConfig.smoke(seed=7))
        first = json.dumps(
            result.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        second = json.dumps(
            again.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        assert first == second


class TestBaseline:
    def test_checked_in_baseline_matches_seed7(self, result):
        committed = json.loads(BASELINE_PATH.read_text())
        assert committed == result.to_baseline()


class TestMetricsPayload:
    def test_payload_carries_multipath_counters(self, result):
        world = result.metrics_payload()["world"]
        tunnel_counters = [
            name for name in world if name.startswith("multipath.")
        ]
        assert any(name.endswith(".sent") for name in tunnel_counters)
        assert any(name.endswith(".received") for name in tunnel_counters)
        assert any(
            name.endswith(".pins_skipped") for name in tunnel_counters
        )
