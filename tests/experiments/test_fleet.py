"""The fleet experiment: invariants asserted, deterministic, CI-usable."""

import json

import pytest

from repro.experiments.fleet import FleetConfig, run_fleet


@pytest.fixture(scope="module")
def smoke_result():
    """One shared smoke run (the CI tier: 300 establishments, 2 shards)."""
    return run_fleet(FleetConfig.smoke(seed=7))


class TestInvariants:
    def test_overall_ok(self, smoke_result):
        assert smoke_result.ok

    def test_each_invariant_holds(self, smoke_result):
        invariants = smoke_result.invariants
        assert invariants["all_established"]
        assert invariants["zero_app_loss"]
        assert invariants["bounded_setup_p99"]
        assert invariants["failover_recovered"]
        assert invariants["zero_lost_revocations"]
        assert invariants["all_shards_loaded"]
        assert invariants["resume_effective"]
        assert invariants["final_wave_clean"]

    def test_scale_reached(self, smoke_result):
        config = smoke_result.config
        assert smoke_result.established == config.establishments
        assert smoke_result.completed == config.establishments
        assert smoke_result.final_established == config.final_wave

    def test_failover_actually_happened(self, smoke_result):
        # The scripted replica crash fired mid-run, the router detected it
        # and promoted a follower, and revocations landed afterwards —
        # through the promoted primary, not the corpse.
        assert smoke_result.failovers >= 1
        assert smoke_result.failovers_failed == 0
        assert 0 < smoke_result.failover_recovery_ms < 50.0
        assert smoke_result.revoked == smoke_result.config.revocations
        assert smoke_result.lost_revocations == 0

    def test_discovery_load_spreads_across_shards(self, smoke_result):
        assert len(smoke_result.per_shard_queries) == smoke_result.config.shards
        assert all(count > 0 for count in smoke_result.per_shard_queries)

    def test_resume_carries_most_establishments(self, smoke_result):
        # Zipf popularity concentrates repeats, so the one-RTT resume path
        # should dominate; revocation pushes must still invalidate.
        assert smoke_result.resume_hit_rate > 0.5
        assert smoke_result.negcache_invalidations > 0


class TestDeterminism:
    def test_same_seed_same_baseline(self, smoke_result):
        again = run_fleet(FleetConfig.smoke(seed=7))
        assert json.dumps(again.to_baseline(), sort_keys=True) == json.dumps(
            smoke_result.to_baseline(), sort_keys=True
        )

    def test_same_seed_bit_identical_metrics_snapshots(self, smoke_result):
        again = run_fleet(FleetConfig.smoke(seed=7))
        first = json.dumps(
            smoke_result.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        second = json.dumps(
            again.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        assert first == second


class TestMetricsPayload:
    def test_snapshot_covers_the_tier(self, smoke_result):
        names = set(smoke_result.metrics)
        for prefix in (
            "experiment.established",
            "discovery.s0.",
            "discovery.s1.",
            "router.failovers",
            "negcache.",
            "rsm.",
        ):
            assert any(n.startswith(prefix) for n in names), prefix

    def test_write_metrics_file(self, smoke_result, tmp_path):
        path = tmp_path / "metrics.json"
        smoke_result.write_metrics(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "fleet"
        assert payload["seed"] == 7
        assert payload["invariants"]["zero_lost_revocations"]
        assert payload["fleet"]
