"""The churn experiment: invariants asserted, deterministic, CI-usable."""

import json
from pathlib import Path

import pytest

from repro.experiments.churn import ChurnConfig, ChurnResult, run_churn

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_churn.json"


@pytest.fixture(scope="module")
def smoke_result() -> ChurnResult:
    """One shared smoke run (the CI tier: 50 sessions per mode)."""
    return run_churn(ChurnConfig.smoke(seed=7))


class TestInvariants:
    def test_overall_ok(self, smoke_result):
        assert smoke_result.ok

    def test_each_invariant_holds(self, smoke_result):
        invariants = smoke_result.invariants
        assert invariants["all_established"]
        assert invariants["zero_app_loss"]
        assert invariants["resumed_fewer_rtts"]
        assert invariants["resumed_faster_median"]
        assert invariants["cache_effective"]
        assert invariants["cold_path_untouched"]

    def test_resumption_actually_happened(self, smoke_result):
        resumed = smoke_result.resumed
        # Only the very first connect misses; every later one resumes.
        assert resumed.negcache_misses == 1
        assert resumed.negcache_hits == resumed.sessions - 1
        assert resumed.negcache_fallbacks == 0
        # One control round trip per connect, amortizing toward 1.0 as the
        # single cold connect's share shrinks.
        assert resumed.ctl_rtts_per_connect < 1.5
        assert smoke_result.cold.ctl_rtts_per_connect >= 2.0

    def test_violated_invariant_flips_ok(self, smoke_result):
        broken = ChurnResult(
            cold=smoke_result.cold,
            resumed=smoke_result.resumed.__class__(
                **{
                    **smoke_result.resumed.__dict__,
                    "negcache_fallbacks": 3,
                }
            ),
            config=smoke_result.config,
        )
        assert not broken.invariants["cache_effective"]
        assert not broken.ok


class TestDeterminism:
    def test_same_seed_bit_identical_metrics_payload(self, smoke_result):
        # The CI churn gate in code form: two same-seed runs serialize to
        # the exact same canonical JSON (both modes' full snapshots).
        again = run_churn(ChurnConfig.smoke(seed=7))
        first = json.dumps(
            smoke_result.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        second = json.dumps(
            again.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        assert first == second


class TestMetricsPayload:
    def test_sides_carry_full_snapshots(self, smoke_result):
        for side in (smoke_result.cold, smoke_result.resumed):
            names = set(side.metrics)
            for prefix in (
                "experiment.established",
                "rpc.discovery.cl.",
                "rpc.negotiation.cl.",
                "negcache.cl.",
                "negcache.srv.",
            ):
                assert any(n.startswith(prefix) for n in names), prefix

    def test_side_fields_derive_from_snapshots(self, smoke_result):
        resumed = smoke_result.resumed
        snap = resumed.metrics
        assert resumed.established == snap["experiment.established"]
        assert resumed.negcache_hits == snap["negcache.cl.hits"]
        assert resumed.negcache_misses == snap["negcache.cl.misses"]

    def test_write_metrics_file(self, smoke_result, tmp_path):
        path = tmp_path / "metrics.json"
        smoke_result.write_metrics(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "churn"
        assert payload["seed"] == 7
        assert payload["cold"] and payload["resumed"]
        assert payload["invariants"]["cache_effective"] is True


class TestBaselineShape:
    def test_baseline_payload(self, smoke_result, tmp_path):
        path = tmp_path / "BENCH_churn.json"
        smoke_result.write_baseline(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "churn"
        assert payload["seed"] == 7
        assert payload["sessions"] == 50
        assert payload["cache"] == {"size": 64, "ttl": None}
        assert payload["speedup_p50"] > 1.0
        assert (
            payload["resumed"]["ctl_rtts_per_connect"]
            < payload["cold"]["ctl_rtts_per_connect"]
        )

    def test_rows_render(self, smoke_result):
        rendered = smoke_result.render()
        assert "ctl_rtts" in rendered
        assert "invariants:" in rendered
        assert "resumption: setup p50" in rendered


class TestRecordedBaseline:
    """The checked-in BENCH_churn.json (full 2000-session run) must show
    the tentpole's claim: one-RTT resumption, faster medians, no
    fallbacks."""

    @pytest.fixture(scope="class")
    def recorded(self) -> dict:
        return json.loads(BASELINE_PATH.read_text())

    def test_invariants_recorded_ok(self, recorded):
        assert all(recorded["invariants"].values())

    def test_resumed_is_one_round_trip(self, recorded):
        assert recorded["resumed"]["ctl_rtts_per_connect"] < 1.01
        assert recorded["cold"]["ctl_rtts_per_connect"] >= 2.0

    def test_resumed_is_faster(self, recorded):
        assert recorded["speedup_p50"] > 1.0
        assert (
            recorded["resumed"]["setup_p50_us"]
            < recorded["cold"]["setup_p50_us"]
        )
        assert recorded["resumed"]["negcache_fallbacks"] == 0
