"""The failover experiment: invariants asserted, deterministic, CI-usable."""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.failover import (
    FailoverConfig,
    FailoverResult,
    run_failover,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_failover.json"


@pytest.fixture(scope="module")
def result() -> FailoverResult:
    """One shared seed-7 run (the CI tier *is* the default timeline)."""
    return run_failover(FailoverConfig.smoke(seed=7))


class TestInvariants:
    def test_overall_ok(self, result):
        assert result.ok

    def test_each_invariant_holds(self, result):
        invariants = result.invariants
        assert invariants["zero_app_loss"]
        assert invariants["zero_duplicates"]
        assert invariants["all_migrated"]
        assert invariants["all_parked_and_resumed"]
        assert invariants["bounded_blackout"]

    def test_failover_actually_happened(self, result):
        # Every connection migrated off the crashed primary once, and the
        # total outage parked (then resumed) every one of them.
        assert result.migrations == result.config.connections
        assert result.parked == result.config.connections
        assert result.resumed == result.parked
        assert result.suspicions >= result.migrations + result.parked
        assert result.migration_failures == 0
        assert result.heartbeats > 0

    def test_blackouts_are_real_and_bounded(self, result):
        assert 0 < result.blackout_p50_ms <= result.blackout_p99_ms
        assert result.blackout_p99_ms <= result.blackout_max_ms
        assert result.blackout_max_ms < result.config.blackout_budget * 1e3
        # The slowest round trip spans a blackout; the median does not.
        assert result.recovery_rtt_max_ms > result.rtt_p50_us / 1e3

    def test_violated_invariant_flips_ok(self, result):
        broken = replace(result, delivered=result.delivered - 1)
        assert broken.app_loss == 1
        assert not broken.invariants["zero_app_loss"]
        assert not broken.ok


class TestDeterminism:
    def test_same_seed_bit_identical_metrics_payload(self, result):
        # The CI failover gate in code form: two same-seed runs serialize
        # to the exact same canonical JSON.
        again = run_failover(FailoverConfig.smoke(seed=7))
        first = json.dumps(
            result.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        second = json.dumps(
            again.metrics_payload(), sort_keys=True, separators=(",", ":")
        )
        assert first == second


class TestMetricsPayload:
    def test_snapshot_carries_failover_metrics(self, result):
        names = set(result.metrics)
        for prefix in (
            "experiment.offered",
            "failover.cl0.migrations_total",
            "failover.cl0.parked_total",
            "failover.cl0.blackout_seconds.count",
            "failover.cl1.heartbeats_sent",
            "negcache.cl0.",
        ):
            assert any(n.startswith(prefix) for n in names), prefix

    def test_result_fields_derive_from_snapshot(self, result):
        snap = result.metrics
        assert result.offered == snap["experiment.offered"]
        assert result.responses == snap["experiment.responses"]
        assert result.migrations == sum(
            snap[f"failover.cl{i}.migrations_total"] for i in range(2)
        )

    def test_write_metrics_file(self, result, tmp_path):
        path = tmp_path / "metrics.json"
        result.write_metrics(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "failover"
        assert payload["seed"] == 7
        assert payload["app_loss"] == 0
        assert payload["migrations_total"] > 0
        assert payload["invariants"]["zero_app_loss"] is True


class TestBaselineShape:
    def test_baseline_payload(self, result, tmp_path):
        path = tmp_path / "BENCH_failover.json"
        result.write_baseline(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "failover"
        assert payload["seed"] == 7
        assert payload["app_loss"] == 0
        assert payload["duplicates"] == 0
        assert payload["migrations_total"] == result.config.connections
        assert payload["blackout_p99_ms"] > 0

    def test_rows_render(self, result):
        rendered = result.render()
        assert "blackout_p99_ms" in rendered
        assert "invariants:" in rendered
        assert "VIOLATED" not in rendered


class TestRecordedBaseline:
    """The checked-in BENCH_failover.json must show the tentpole's claim:
    zero app-visible loss or duplication across two crashes and a total
    outage, with bounded blackouts."""

    @pytest.fixture(scope="class")
    def recorded(self) -> dict:
        return json.loads(BASELINE_PATH.read_text())

    def test_invariants_recorded_ok(self, recorded):
        assert all(recorded["invariants"].values())

    def test_loss_free_with_real_failovers(self, recorded):
        assert recorded["app_loss"] == 0
        assert recorded["duplicates"] == 0
        assert recorded["migrations_total"] > 0
        assert recorded["parked_total"] == recorded["resumed_total"] > 0

    def test_recorded_matches_a_fresh_run(self, result, recorded):
        assert result.to_baseline() == recorded
