"""Smoke tests for the experiment CLI (python -m repro.experiments)."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    result = subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestCli:
    def test_fig4_command(self):
        out = run_cli("fig4")
        assert "Figure 4" in out
        assert "pipe" in out and "udp" in out
        assert "switch at t=4" in out

    def test_fig3_command_prints_all_systems(self):
        out = run_cli("fig3")
        for system in ("bertha", "pipes", "tcp", "udp"):
            assert system in out
        assert "setup_p50" in out

    def test_unknown_experiment_rejected(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "fig99"],
            capture_output=True,
            text=True,
        )
        assert result.returncode != 0
        assert "invalid choice" in result.stderr

    def test_help(self):
        out = run_cli("--help")
        assert "--full" in out
        for name in ("fig3", "fig4", "fig5", "ablations", "all"):
            assert name in out


class TestReconfigCli:
    def test_reconfig_command(self):
        out = run_cli("reconfig")
        assert "Live reconfiguration" in out
        assert "zero loss" in out
        assert "server-fallback" in out
        assert "latency samples identical: True" in out


class TestMultipathCli:
    def test_multipath_command(self):
        out = run_cli("multipath", "--smoke")
        assert "Multipath" in out
        assert "winner" in out
        assert "rebalance" in out
        assert "VIOLATED" not in out


class TestOffloadCli:
    def test_offload_command(self):
        out = run_cli("offload", "--smoke")
        assert "Offload" in out
        assert "winner" in out
        assert "fan-in" in out
        assert "contention" in out
        assert "VIOLATED" not in out

    def test_bench_offload_target(self):
        out = run_cli("bench", "offload", "--smoke")
        assert "Offload" in out
        assert "VIOLATED" not in out

    def test_bench_rejects_unknown_target(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "bench", "nope"],
            capture_output=True,
            text=True,
        )
        assert result.returncode != 0
        assert "unknown bench target" in result.stderr
