"""Table 1 of the paper is a glossary; verify every term maps to real API.

| Term          | Paper meaning                                   | Here |
|---------------|--------------------------------------------------|------|
| Chunnel       | a piece of network-oriented app functionality    | ChunnelSpec/ChunnelImpl |
| Offload       | specialized hardware implementing Chunnels       | SmartNic / ProgrammableSwitch + Placement |
| Fallback Impl | default end-host implementation                  | the `*Fallback` classes |
| Chunnel DAG   | the application's Chunnel specification          | ChunnelDag / wrap |
| Scope         | constraint on where a Chunnel is implemented     | Scope enum + .scoped() |
"""

from repro.core import (
    ChunnelDag,
    ChunnelImpl,
    ChunnelSpec,
    Placement,
    Scope,
    catalog,
    wrap,
)
from repro.sim import ProgrammableSwitch, SmartNic


class TestGlossaryTerms:
    def test_chunnel_is_spec_plus_impl(self):
        assert issubclass(ChunnelSpec, object)
        assert hasattr(ChunnelImpl, "setup")
        assert hasattr(ChunnelImpl, "teardown")
        assert hasattr(ChunnelImpl, "make_stage")

    def test_offload_devices_exist(self):
        # "Tofino Switch" ↔ ProgrammableSwitch; SmartNIC hardware too.
        assert hasattr(ProgrammableSwitch, "install")
        assert hasattr(SmartNic, "install")
        assert Placement.SWITCH.is_offload
        assert Placement.SMARTNIC.is_offload

    def test_fallback_implementations_for_every_builtin_type(self):
        """Host fallback (§2's requirement): every built-in Chunnel type has
        at least one HOST_SOFTWARE implementation in the catalog."""
        import repro.chunnels  # noqa: F401 - populates the catalog

        types = {
            "serialize",
            "reliable",
            "ordered",
            "encrypt",
            "compress",
            "http2",
            "tcp",
            "tls",
            "shard",
            "ordered_mcast",
            "local_or_remote",
            "loadbalance",
            "batch",
            "ratelimit",
        }
        for chunnel_type in types:
            impls = catalog.implementations_of(chunnel_type)
            assert impls, f"no implementations of {chunnel_type!r}"
            assert any(
                cls.meta.placement is Placement.HOST_SOFTWARE for cls in impls
            ), f"no host fallback for {chunnel_type!r}"

    def test_chunnel_dag_term(self):
        dag = wrap()
        assert isinstance(dag, ChunnelDag)

    def test_scope_term(self):
        # "Local scope (§3)" — the paper's bertha::scope::Application.
        assert Scope.APPLICATION
        spec_like = wrap()
        assert hasattr(ChunnelSpec, "scoped")

    def test_listing5_register_chunnel_exists(self):
        from repro.core import Runtime

        assert hasattr(Runtime, "register_chunnel")

    def test_listing_api_surface(self):
        """The paper's API verbs all exist: new / listen / connect /
        send / recv."""
        from repro.core import Connection, Endpoint, Runtime

        assert hasattr(Runtime, "new")
        assert hasattr(Endpoint, "listen")
        assert hasattr(Endpoint, "connect")
        assert hasattr(Connection, "send")
        assert hasattr(Connection, "recv")
