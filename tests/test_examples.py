"""Smoke tests: every example script must run clean and say what it claims.

Examples are documentation that executes; these tests keep them honest as
the library evolves.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "sharded_kv.py",
            "ordered_multicast.py",
            "local_fastpath.py",
            "dag_optimizer.py",
            "legacy_interop.py",
        } <= names

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "chunnels: ['serialize', 'reliable']" in out
        assert "connected in" in out
        assert "{'echo': {'n': 1}}" in out

    def test_sharded_kv(self):
        out = run_example("sharded_kv.py")
        assert "ShardClientFallback" in out
        assert "ShardXdp" in out
        assert "ShardServerFallback" in out
        assert "No application code changed" in out

    def test_ordered_multicast(self):
        out = run_example("ordered_multicast.py")
        assert "McastSequencerFallback" in out
        assert "McastSwitchSequencer" in out
        assert "alice=70" in out  # the CAS applied consistently

    def test_local_fastpath(self):
        out = run_example("local_fastpath.py")
        assert "transport=pipe" in out
        assert "transport=udp" in out
        assert "local replica started" in out
        assert "via pipe" in out

    def test_dag_optimizer(self):
        out = run_example("dag_optimizer.py")
        assert "3.0x PCIe traffic" in out
        assert "http2 |> tls" in out

    def test_legacy_interop(self):
        out = run_example("legacy_interop.py")
        assert "0 control RTTs" in out
        assert "sharded across ['legacy-1', 'legacy-2']" in out
        assert "reliability rejected" in out

    def test_live_reconfig(self):
        out = run_example("live_reconfig.py")
        assert "negotiated shard implementation: ShardXdp" in out
        assert "degraded to: ShardServerFallback (epoch 1, 0 of 20 requests lost)" in out
        assert "back on ShardXdp (epoch 2)" in out
        assert "No requests were lost" in out
