"""Lint: no module-level ``random.*`` calls on the data path.

Chunnel stages and experiments must draw randomness from seeded
``random.Random(...)`` instances keyed by ``(seed, conn_id, role)`` — the
module-level functions share hidden global state, which breaks the
same-seed byte-identity guarantee the benchmarks and CI smoke steps rely
on.  This test greps the data-path packages and fails on any use of the
``random`` module other than constructing a ``random.Random``.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: ``random.<anything>`` except ``random.Random`` (the seeded constructor).
FORBIDDEN = re.compile(r"\brandom\.(?!Random\b)\w+")

#: Packages whose determinism the benchmarks depend on.
SCANNED = ("chunnels", "experiments")


def scan(package: str) -> list[str]:
    violations = []
    for path in sorted((SRC / package).rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = FORBIDDEN.search(line)
            if match:
                violations.append(
                    f"{path.relative_to(SRC.parent.parent)}:{lineno}: "
                    f"{match.group(0)} ({line.strip()})"
                )
    return violations


def test_data_path_uses_only_seeded_rngs():
    violations = [v for package in SCANNED for v in scan(package)]
    assert not violations, (
        "module-level random.* calls break same-seed reproducibility; "
        "use a seeded random.Random instead:\n" + "\n".join(violations)
    )


def test_scanner_sees_the_data_path_packages():
    # Guard against the lint silently passing because a rename emptied it.
    for package in SCANNED:
        assert list((SRC / package).rglob("*.py")), package
