"""Tests for the Figure 3 baseline applications."""

import pytest

from repro.baselines import (
    pipe_echo_server,
    pipe_ping_session,
    tcp_echo_server,
    tcp_ping_session,
    udp_echo_server,
    udp_ping_session,
)
from repro.errors import TransportError
from repro.sim import Address, Network

from ..conftest import run


def container_world():
    net = Network()
    host = net.add_host("box")
    host.add_container("server-ct")
    host.add_container("client-ct")
    return net


class TestBaselines:
    def test_pipe_session_measures_rtts(self):
        net = container_world()
        pipe_echo_server(net.entity("server-ct"), 7001)

        def scenario(env):
            yield env.timeout(1e-4)
            return (
                yield from pipe_ping_session(
                    net.entity("client-ct"), Address("server-ct", 7001),
                    size=64, count=5,
                )
            )

        result = run(net.env, scenario(net.env))
        assert len(result.rtts) == 5
        assert result.transport == "pipe"
        assert result.setup_time == 0  # pipes have no handshake

    def test_tcp_session_pays_handshake(self):
        net = container_world()
        tcp_echo_server(net.entity("server-ct"), 7002)

        def scenario(env):
            yield env.timeout(1e-4)
            return (
                yield from tcp_ping_session(
                    net.entity("client-ct"), Address("server-ct", 7002),
                    size=64, count=3,
                )
            )

        result = run(net.env, scenario(net.env))
        assert result.setup_time > 0  # SYN/SYN-ACK round trip
        assert result.transport == "tcp"

    def test_udp_session(self):
        net = container_world()
        udp_echo_server(net.entity("server-ct"), 7003)

        def scenario(env):
            yield env.timeout(1e-4)
            return (
                yield from udp_ping_session(
                    net.entity("client-ct"), Address("server-ct", 7003),
                    size=64, count=3,
                )
            )

        result = run(net.env, scenario(net.env))
        assert len(result.rtts) == 3

    def test_figure3_ordering_holds(self):
        """pipes < udp < tcp on the same host — the baseline sanity check
        underlying the whole Figure 3 comparison."""
        net = container_world()
        pipe_echo_server(net.entity("server-ct"), 7001)
        tcp_echo_server(net.entity("server-ct"), 7002)
        udp_echo_server(net.entity("server-ct"), 7003)

        def scenario(env):
            yield env.timeout(1e-4)
            client = net.entity("client-ct")
            pipe = yield from pipe_ping_session(
                client, Address("server-ct", 7001), count=5
            )
            tcp = yield from tcp_ping_session(
                client, Address("server-ct", 7002), count=5
            )
            udp = yield from udp_ping_session(
                client, Address("server-ct", 7003), count=5
            )
            mean = lambda rtts: sum(rtts) / len(rtts)  # noqa: E731
            return mean(pipe.rtts), mean(udp.rtts), mean(tcp.rtts)

        pipe_rtt, udp_rtt, tcp_rtt = run(net.env, scenario(net.env))
        assert pipe_rtt < udp_rtt < tcp_rtt

    def test_pipe_baseline_rejects_cross_host(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b")
        pipe_echo_server(net.hosts["b"], 7001)

        def scenario(env):
            yield env.timeout(0)
            yield from pipe_ping_session(
                net.hosts["a"], Address("b", 7001), count=1
            )

        with pytest.raises(TransportError):
            run(net.env, scenario(net.env))

    def test_rtts_scale_with_size(self):
        net = container_world()
        pipe_echo_server(net.entity("server-ct"), 7001)

        def scenario(env):
            yield env.timeout(1e-4)
            client = net.entity("client-ct")
            small = yield from pipe_ping_session(
                client, Address("server-ct", 7001), size=64, count=3
            )
            large = yield from pipe_ping_session(
                client, Address("server-ct", 7001), size=100_000, count=3
            )
            return small.rtts[0], large.rtts[0]

        small, large = run(net.env, scenario(net.env))
        assert large > small * 2
