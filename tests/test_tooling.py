"""Tooling gates that mirror the CI lint job locally.

The CI workflow type-checks the control-plane core (wire encoding, typed
message schema, RPC loop) with mypy.  When mypy is installed locally this
test runs the same check; in environments without it, it skips rather
than fails — the contract is enforced in CI either way.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

TYPED_MODULES = [
    "src/repro/core/wire.py",
    "src/repro/core/messages.py",
    "src/repro/core/rpc.py",
]


class TestMypyControlPlaneCore:
    def test_typed_core_passes_mypy(self):
        pytest.importorskip("mypy")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "mypy",
                "--ignore-missing-imports",
                "--follow-imports=silent",
                *TYPED_MODULES,
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_typed_modules_exist(self):
        # Guards the CI file list: renaming a module must update the gate.
        for module in TYPED_MODULES:
            assert (REPO_ROOT / module).is_file(), module
