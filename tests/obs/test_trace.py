"""TraceLog unit tests plus the end-to-end lifecycle integration check."""

import json

from repro.sim import Address

from ..conftest import run


class FakeEnv:
    def __init__(self):
        self.now = 0.0


class TestSpans:
    def test_begin_is_open(self):
        from repro.obs import TraceLog

        env = FakeEnv()
        trace = TraceLog(env)
        span = trace.begin("negotiate", "c-1", target="srv")
        assert span.end is None
        assert span.duration is None
        assert span.status == "open"
        assert len(trace) == 1

    def test_finish_stamps_end_status_attrs(self):
        from repro.obs import TraceLog

        env = FakeEnv()
        trace = TraceLog(env)
        span = trace.begin("establish", "c-1")
        env.now = 2.5
        trace.finish(span, transport="sockets")
        assert span.duration == 2.5
        assert span.status == "ok"
        assert span.attrs["transport"] == "sockets"

    def test_finish_error_status(self):
        from repro.obs import TraceLog

        trace = TraceLog(FakeEnv())
        span = trace.begin("rpc", "c-1")
        trace.finish(span, status="timeout", attempts=4)
        assert span.status == "timeout"
        assert span.attrs == {"attempts": 4}

    def test_event_is_instant(self):
        from repro.obs import TraceLog

        env = FakeEnv()
        env.now = 1.0
        trace = TraceLog(env)
        span = trace.event("teardown", "c-1", sent=3)
        assert span.start == span.end == 1.0
        assert span.duration == 0.0

    def test_select_and_lifecycle(self):
        from repro.obs import TraceLog

        trace = TraceLog(FakeEnv())
        trace.finish(trace.begin("negotiate", "c-1"))
        trace.finish(trace.begin("establish", "c-1"))
        trace.event("chaos", action="partition")
        trace.event("teardown", "c-1")
        assert [s.phase for s in trace.select(conn_id="c-1")] == [
            "negotiate",
            "establish",
            "teardown",
        ]
        assert len(trace.select(phase="chaos")) == 1
        assert trace.lifecycle("c-1") == ["negotiate", "establish", "teardown"]

    def test_export_is_canonical(self):
        from repro.obs import TraceLog

        trace = TraceLog(FakeEnv())
        trace.event("chaos", action="flap", link="a-b")
        payload = json.loads(trace.to_json())
        assert payload == [
            {
                "phase": "chaos",
                "conn_id": "",
                "start": 0.0,
                "end": 0.0,
                "status": "ok",
                "attrs": {"action": "flap", "link": "a-b"},
            }
        ]
        assert trace.to_json() == trace.to_json()


class TestConnectionLifecycle:
    """One real establishment must leave the paper's span sequence:
    negotiate → reserve → establish → data → teardown."""

    def test_full_lifecycle_spans(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        endpoint = server_rt.new("echo")
        listener = endpoint.listen(port=7000)

        def serve(env):
            conn = yield listener.accept()
            msg = yield conn.recv()
            conn.send(msg.payload, size=msg.size, dst=msg.src)

        two_hosts.env.process(serve(two_hosts.env))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.send(b"ping", size=4)
            yield conn.recv()
            conn.close()
            return conn.conn_id

        conn_id = run(two_hosts.env, client(two_hosts.env))
        trace = two_hosts.net.trace
        phases = trace.lifecycle(conn_id)
        for phase in ("negotiate", "reserve", "establish", "data", "teardown"):
            assert phase in phases, f"missing {phase!r} in {phases}"
        # Ordering: the client-side establishment pipeline is sequential.
        assert phases.index("negotiate") < phases.index("establish")
        assert phases.index("establish") < phases.index("data")
        assert phases.index("data") < phases.index("teardown")
        # Interval spans all closed ok, stamped on virtual time.
        for span in trace.select(conn_id=conn_id):
            assert span.end is not None
            assert span.status == "ok"
            assert span.end >= span.start >= 0.0

    def test_registry_sees_the_connection(self, two_hosts):
        server_rt = two_hosts.runtime("srv")
        client_rt = two_hosts.runtime("cl")
        endpoint = server_rt.new("echo")
        listener = endpoint.listen(port=7000)

        def serve(env):
            conn = yield listener.accept()
            msg = yield conn.recv()
            conn.send(msg.payload, size=msg.size, dst=msg.src)

        two_hosts.env.process(serve(two_hosts.env))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            conn.send(b"ping", size=4)
            yield conn.recv()
            return conn.conn_id

        conn_id = run(two_hosts.env, client(two_hosts.env))
        snap = two_hosts.net.obs.snapshot()
        assert snap[f"conn.{conn_id}.client.messages_sent"] == 1
        assert snap[f"conn.{conn_id}.client.messages_received"] == 1
        assert snap.sum("rpc.negotiation.cl.", "round_trips") >= 1
        assert snap.get("net.delivered") > 0
        assert snap.get("discovery.leases") == 0
        assert snap.at == two_hosts.env.now
