"""Unit tests for the metrics registry (instruments, snapshots, export)."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    current_registry,
    set_current_registry,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["a.b"] == 5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("a")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        assert registry.snapshot()["depth"] == 7

    def test_gauge_computed_on_pull(self):
        registry = MetricsRegistry()
        box = {"value": 1}
        registry.gauge("live", lambda: box["value"])
        box["value"] = 9
        assert registry.snapshot()["live"] == 9

    def test_histogram_summary_names(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        for value in (2.0, 1.0, 4.0):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["lat.count"] == 3
        assert snap["lat.sum"] == pytest.approx(7.0)
        assert snap["lat.min"] == 1.0
        assert snap["lat.max"] == 4.0
        assert hist.values == [2.0, 1.0, 4.0]

    def test_empty_histogram_summary_is_zero(self):
        registry = MetricsRegistry()
        registry.histogram("lat")
        snap = registry.snapshot()
        assert snap["lat.count"] == 0
        assert snap["lat.max"] == 0.0


class TestRegistration:
    def test_duplicate_register_rejected(self):
        registry = MetricsRegistry()
        registry.register("x", lambda: 0)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", lambda: 1)

    def test_replace_overrides(self):
        registry = MetricsRegistry()
        registry.register("x", lambda: 0)
        registry.replace("x", lambda: 1)
        assert registry.snapshot()["x"] == 1

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.register("bad name", lambda: 0)
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.register("", lambda: 0)

    def test_bind_wraps_attribute_live(self):
        class Owner:
            hits = 0

        owner = Owner()
        registry = MetricsRegistry()
        registry.bind("owner.hits", owner, "hits")
        owner.hits = 3
        assert registry.snapshot()["owner.hits"] == 3

    def test_bind_fails_fast_on_typo(self):
        registry = MetricsRegistry()
        with pytest.raises(AttributeError):
            registry.bind("x", object(), "no_such_attr")

    def test_bind_replace_lets_new_owner_take_over(self):
        class Owner:
            def __init__(self, hits):
                self.hits = hits

        registry = MetricsRegistry()
        registry.bind("owner.hits", Owner(1), "hits")
        with pytest.raises(ValueError):
            registry.bind("owner.hits", Owner(2), "hits")
        registry.bind("owner.hits", Owner(2), "hits", replace=True)
        assert registry.snapshot()["owner.hits"] == 2

    def test_bind_stats_registers_all_rpc_fields(self):
        from repro.core.rpc import RpcStats

        stats = RpcStats()
        stats.round_trips = 5
        registry = MetricsRegistry()
        registry.bind_stats("rpc.negotiation.cl", stats)
        assert registry.names("rpc.negotiation.cl.") == [
            "rpc.negotiation.cl.failures_total",
            "rpc.negotiation.cl.late_replies",
            "rpc.negotiation.cl.retransmits_total",
            "rpc.negotiation.cl.round_trips",
        ]
        assert registry.snapshot()["rpc.negotiation.cl.round_trips"] == 5

    def test_names_contains_len(self):
        registry = MetricsRegistry()
        registry.register("b", lambda: 0)
        registry.register("a.x", lambda: 0)
        registry.register("a.y", lambda: 0)
        assert registry.names() == ["a.x", "a.y", "b"]
        assert registry.names("a.") == ["a.x", "a.y"]
        assert "b" in registry
        assert "c" not in registry
        assert len(registry) == 3


class TestSnapshot:
    def test_bools_become_ints(self):
        registry = MetricsRegistry()
        registry.register("ok", lambda: True)
        snap = registry.snapshot()
        assert snap["ok"] == 1
        assert isinstance(snap["ok"], int)

    def test_non_numeric_source_rejected(self):
        registry = MetricsRegistry()
        registry.register("oops", lambda: "three")
        with pytest.raises(TypeError, match="non-numeric"):
            registry.snapshot()

    def test_clock_stamps_at(self):
        registry = MetricsRegistry(clock=lambda: 1.5)
        assert registry.snapshot().at == 1.5
        assert MetricsRegistry().snapshot().at is None

    def test_get_sum_prefix_suffix(self):
        snap = MetricsSnapshot(
            {
                "rpc.discovery.cl.retransmits_total": 2,
                "rpc.discovery.srv.retransmits_total": 3,
                "rpc.discovery.cl.round_trips": 10,
                "rpc.negotiation.cl.retransmits_total": 99,
            }
        )
        assert snap.get("rpc.discovery.cl.round_trips") == 10
        assert snap.get("missing") == 0
        assert snap.get("missing", -1) == -1
        assert snap.sum("rpc.discovery.", ".retransmits_total") == 5
        assert snap.sum("rpc.") == 114

    def test_as_dict_sorted(self):
        snap = MetricsSnapshot({"b": 1, "a": 2})
        assert list(snap.as_dict()) == ["a", "b"]
        assert list(iter(snap)) == ["a", "b"]

    def test_diff_counts_from_zero_and_reports_drops(self):
        earlier = MetricsSnapshot({"kept": 1, "gone": 4, "quiet": 7})
        later = MetricsSnapshot({"kept": 3, "new": 2, "quiet": 7})
        assert later.diff(earlier) == {"kept": 2, "new": 2, "gone": -4}

    def test_diff_over_quiet_window_is_empty(self):
        snap = MetricsSnapshot({"a": 1})
        assert snap.diff(MetricsSnapshot({"a": 1})) == {}

    def test_to_json_canonical(self):
        one = MetricsSnapshot({"b": 1, "a": 2}).to_json()
        two = MetricsSnapshot({"a": 2, "b": 1}).to_json()
        assert one == two
        assert json.loads(one) == {"a": 2, "b": 1}
        assert " " not in one

    def test_write_json_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"n": 3}


class TestGlobalHandle:
    def test_set_and_get(self):
        registry = MetricsRegistry()
        assert set_current_registry(registry) is registry
        assert current_registry() is registry

    def test_network_installs_itself(self):
        from repro.sim import Network

        net = Network()
        assert current_registry() is net.obs
