"""Public-API hygiene: exports resolve, errors form one hierarchy, and the
advertised entry points behave."""

import importlib

import pytest

import repro
from repro import errors


class TestExports:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.chunnels",
            "repro.discovery",
            "repro.sim",
            "repro.apps",
            "repro.workloads",
            "repro.baselines",
            "repro.experiments",
        ],
    )
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert getattr(module, name, None) is not None, (
                f"{module_name}.{name} is exported but missing"
            )

    def test_top_level_exposes_subpackages(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2


class TestErrorHierarchy:
    @pytest.mark.parametrize("name", errors.__all__)
    def test_every_error_derives_from_bertha_error(self, name):
        error_cls = getattr(errors, name)
        assert issubclass(error_cls, errors.BerthaError)

    def test_negotiation_errors_are_catchable_as_one(self):
        for cls in (
            errors.IncompatibleDagError,
            errors.NoImplementationError,
            errors.ResourceExhaustedError,
            errors.ConnectionTimeoutError,
        ):
            assert issubclass(cls, errors.NegotiationError)

    def test_transport_errors_are_catchable_as_one(self):
        for cls in (errors.AddressError, errors.ConnectionClosedError):
            assert issubclass(cls, errors.TransportError)


class TestSmartNicOffloadsNegotiate:
    """The TOE-class implementations actually win under the right policy."""

    @pytest.mark.parametrize(
        "impl_name, spec_factory, fallback",
        [
            ("ReliableToe", "Reliable", "ReliableFallback"),
            ("TcpToe", "Tcp", "TcpFallback"),
            ("TlsSmartNic", "Tls", "TlsFallback"),
        ],
    )
    def test_offload_binds_on_smartnic_host(
        self, two_hosts_smartnic, impl_name, spec_factory, fallback
    ):
        import repro.chunnels as chunnels
        from repro.core import PriorityFirstPolicy, wrap
        from repro.sim import Address

        from .conftest import run

        world = two_hosts_smartnic
        impl_cls = getattr(chunnels, impl_name)
        fallback_cls = getattr(chunnels, fallback)
        spec_cls = getattr(chunnels, spec_factory)
        world.discovery.register(impl_cls.meta, location="srv")
        world.discovery.register(impl_cls.meta, location="cl")
        server_rt = world.runtime("srv", policy=PriorityFirstPolicy())
        client_rt = world.runtime("cl")
        for rt in (server_rt, client_rt):
            rt.register_chunnel(fallback_cls)
        listener = server_rt.new("s", wrap(spec_cls())).listen(port=7000)

        def serve(env):
            conn = yield listener.accept()
            msg = yield conn.recv()
            conn.send(msg.payload, size=msg.size, dst=msg.src)

        world.env.process(serve(world.env))

        def client(env):
            yield env.timeout(1e-4)
            conn = yield from client_rt.new("c").connect(Address("srv", 7000))
            node = conn.dag.topological_order()[0]
            conn.send(b"offloaded", size=9)
            reply = yield conn.recv()
            return type(conn.impls[node]).__name__, reply.payload

        chosen, payload = run(world.env, client(world.env))
        assert chosen == impl_name
        assert payload == b"offloaded"


class TestFig5Validation:
    def test_unknown_scenario_rejected(self):
        from repro.experiments import Fig5Config, run_fig5_scenario

        with pytest.raises(ValueError):
            run_fig5_scenario("serverless", 1000, Fig5Config())
