"""Discovery robustness: retransmission, dedup, crash/restart, and the
failure paths of the Null and Direct clients.

The discovery protocol's at-most-once guarantee (PROTOCOL.md §6) is the
property under test here: retransmitted ``disc.reserve``/``disc.register``
requests reaching the service must never double-allocate, and a client
whose reply was lost must converge on the cached verdict.
"""

import pytest

from repro.chunnels import ReliableToe
from repro.core.resources import NIC_SLOTS, ResourceVector
from repro.discovery import DiscoveryService
from repro.discovery.client import (
    DirectDiscoveryClient,
    NullDiscoveryClient,
    RemoteDiscoveryClient,
)
from repro.errors import ConnectionTimeoutError
from repro.sim import Address, FaultPlan, Network, UdpSocket

from ..conftest import run


def world(fault_plan=None):
    net = Network()
    net.add_host("cl")
    net.add_host("dsc")
    net.add_switch("tor")
    net.add_link("cl", "tor", latency=5e-6)
    net.add_link("dsc", "tor", latency=5e-6)
    if fault_plan is not None:
        net.attach_faults_everywhere(fault_plan)
    service = DiscoveryService(net.hosts["dsc"])
    # The test records live at "dsc", a plain host with no SmartNIC —
    # grant it schedulable slots so reservations can succeed.
    service.set_capacity("dsc", ResourceVector({NIC_SLOTS: 8}))
    return net, service


class TestBackoff:
    def test_timeouts_grow_exponentially_and_cap(self):
        net, service = world()
        client = RemoteDiscoveryClient(
            net.hosts["cl"], service.address,
            timeout=1e-3, backoff=2.0, max_timeout=8e-3, jitter=0.0,
        )
        timeouts = [client._attempt_timeout(n) for n in range(6)]
        assert timeouts == [1e-3, 2e-3, 4e-3, 8e-3, 8e-3, 8e-3]

    def test_jitter_stays_within_fraction(self):
        net, service = world()
        client = RemoteDiscoveryClient(
            net.hosts["cl"], service.address, timeout=1e-3, jitter=0.25
        )
        for attempt in range(20):
            base = min(client.timeout * client.backoff**attempt, client.max_timeout)
            assert 0.75 * base <= client._attempt_timeout(attempt) <= 1.25 * base

    def test_parameters_validated(self):
        net, service = world()
        host = net.hosts["cl"]
        with pytest.raises(ValueError):
            RemoteDiscoveryClient(host, service.address, timeout=0)
        with pytest.raises(ValueError):
            RemoteDiscoveryClient(host, service.address, retries=0)
        with pytest.raises(ValueError):
            RemoteDiscoveryClient(host, service.address, backoff=0.5)
        with pytest.raises(ValueError):
            RemoteDiscoveryClient(host, service.address, jitter=1.5)


class TestRetransmissionAndDedup:
    def test_reserve_under_loss_never_double_allocates(self):
        net, service = world(
            FaultPlan(drop_rate=0.15, duplicate_rate=0.3, seed=17)
        )
        record = service.register(ReliableToe.meta, location="dsc")
        client = RemoteDiscoveryClient(
            net.hosts["cl"], service.address, timeout=5e-4, retries=12
        )

        def scenario(env):
            outcomes = []
            for index in range(30):
                owner = f"owner-{index}"
                ok = yield from client.reserve(record.record_id, owner)
                outcomes.append(ok)
                yield from client.release(record.record_id, owner)
            return outcomes

        outcomes = run(net.env, scenario(net.env), until=30.0)
        assert all(outcomes)
        # Retransmits and duplicate deliveries really happened...
        assert client.retransmits_total > 0
        assert service.duplicate_requests > 0
        # ...yet the lease books balance exactly.
        audit = service.audit_leases()
        assert audit["ok"]
        assert audit["leases"] == 0

    def test_duplicate_request_replays_cached_verdict(self):
        from repro.core import messages as msgs

        net, service = world()
        record = service.register(ReliableToe.meta, location="dsc")
        socket = UdpSocket(net.hosts["cl"], 4000)
        request = msgs.Reserve(
            record_id=record.record_id, owner="dup-owner"
        )

        def scenario(env):
            replies = []
            for attempt in range(2):
                socket.send(
                    msgs.encode_message(request.stamped("manual-1", attempt)),
                    service.address,
                    size=64,
                )
                reply = yield socket.recv()
                replies.append(msgs.decode_message(reply.payload))
            return replies

        first, second = run(net.env, scenario(net.env))
        assert first.ok and second.ok
        assert service.duplicate_requests == 1
        # The replay did not run the handler again: still exactly one lease.
        assert service.audit_leases()["leases"] == 1
        # The echoed attempt tag follows the retransmission, not the cache.
        assert (first.attempt, second.attempt) == (0, 1)

    def test_late_reply_accepted_and_counted(self):
        # RPC timeout shorter than the round trip: the reply to attempt 0
        # arrives while attempt 1 is in flight.  It must be accepted (same
        # req_id) and recorded as a late reply.
        net, service = world()
        client = RemoteDiscoveryClient(
            net.hosts["cl"], service.address,
            timeout=1e-5, retries=8, jitter=0.0,
        )

        def scenario(env):
            return (yield from client.query(["reliable"]))

        result = run(net.env, scenario(net.env))
        assert result.offers == {"reliable": []}
        assert client.late_replies >= 1
        assert client.retransmits_total >= 1


class TestCrashRestart:
    def test_crashed_service_times_out_then_recovers(self):
        net, service = world()
        client = RemoteDiscoveryClient(
            net.hosts["cl"], service.address, timeout=1e-4, retries=3
        )
        service.crash()
        assert service.down and service.crashes == 1

        def during(env):
            return (yield from client.query(["reliable"]))

        with pytest.raises(ConnectionTimeoutError):
            run(net.env, during(net.env))
        assert client.failures_total == 1

        service.restart()
        assert not service.down

        def after(env):
            return (yield from client.query(["reliable"]))

        assert run(net.env, after(net.env)).offers == {"reliable": []}

    def test_crash_clears_volatile_state_keeps_records(self):
        net, service = world()
        from repro.core import messages as msgs

        record = service.register(ReliableToe.meta, location="dsc")
        service._replies.put("stale", msgs.ReserveReply(ok=True))
        service.crash()
        assert not service._replies  # dedup cache is volatile
        assert record.record_id in service._records  # records are stable
        service.crash()  # idempotent while down
        assert service.crashes == 1


class TestNullClientFailurePaths:
    def test_query_returns_empty_offers(self, two_hosts):
        client = NullDiscoveryClient(two_hosts.net.hosts["cl"])

        def scenario(env):
            return (yield from client.query(["reliable", "shard"]))

        result = run(two_hosts.env, scenario(two_hosts.env))
        assert result.offers == {"reliable": [], "shard": []}
        assert result.instances == []

    def test_names_resolve_through_the_cluster(self, two_hosts):
        client = NullDiscoveryClient(two_hosts.net.hosts["cl"])
        address = Address("srv", 7000)

        def scenario(env):
            yield from client.register_name("svc", address)
            result = yield from client.query(["reliable"], service_name="svc")
            yield from client.unregister_name("svc", address)
            gone = yield from client.query(["reliable"], service_name="svc")
            return result.instances, gone.instances

        present, absent = run(two_hosts.env, scenario(two_hosts.env))
        assert present == [address]
        assert absent == []

    def test_reservations_always_granted_releases_noop(self, two_hosts):
        client = NullDiscoveryClient(two_hosts.net.hosts["cl"])

        def scenario(env):
            ok = yield from client.reserve("rec-1", "me")
            yield from client.release("rec-1", "me")
            yield from client.watch("rec-1", Address("cl", 1))
            return ok

        assert run(two_hosts.env, scenario(two_hosts.env)) is True


class TestDirectClientFailurePaths:
    def test_query_unknown_types_gives_empty_offer_sets(self, two_hosts):
        client = DirectDiscoveryClient(two_hosts.discovery)

        def scenario(env):
            return (yield from client.query(["no-such-chunnel"]))

        result = run(two_hosts.env, scenario(two_hosts.env))
        assert result.offers == {"no-such-chunnel": []}

    def test_reservation_refused_when_capacity_exhausted(self, two_hosts):
        service = two_hosts.discovery
        record = service.register(ReliableToe.meta, location="srv")
        service.set_capacity("srv", ResourceVector({NIC_SLOTS: 1}))
        client = DirectDiscoveryClient(service)

        def scenario(env):
            first = yield from client.reserve(record.record_id, "a")
            refused = yield from client.reserve(record.record_id, "b")
            yield from client.release(record.record_id, "a")
            after = yield from client.reserve(record.record_id, "b")
            return first, refused, after

        first, refused, after = run(two_hosts.env, scenario(two_hosts.env))
        assert (first, refused, after) == (True, False, True)
        assert service.audit_leases()["ok"]
