"""The sharded discovery tier (PROTOCOL.md §8): routing, replication,
failover, and cross-shard negotiation-cache invalidation.

World shape: ``shards × replicas`` discovery hosts behind one ToR, a
router host serving the shard map, and client/server hosts whose runtimes
route through :class:`ShardedDiscoveryClient`.  With two shards, the
``reliable`` chunnel type hashes to shard 0 and ``serialize`` to shard 1
(and ``svc-0`` to shard 1), so a single establishment genuinely fans out
across shards — which is what the cross-shard invalidation test needs.
"""

import warnings

import pytest

from repro.chunnels import (
    Reliable,
    ReliableFallback,
    ReliableToe,
    Serialize,
    SerializeFallback,
)
from repro.core import Runtime
from repro.core.chunnel import ImplMeta
from repro.core.dag import wrap
from repro.core.policy import PriorityFirstPolicy
from repro.core.resources import ResourceVector
from repro.core.scope import Endpoints, Placement, Scope
from repro.discovery import (
    DiscoveryShardTier,
    ShardedDiscoveryClient,
    ShardInfo,
    ShardMap,
    ShardRouter,
)
from repro.core import messages as msgs
from repro.errors import ConnectionTimeoutError, DegradedEstablishmentWarning
from repro.sim import Address, FaultPlan, Network, SmartNic
from repro.sim.transport import UdpSocket

from ..conftest import run


def soft_meta(chunnel_type="reliable", name="soft"):
    """A zero-resource implementation record (no device accounting)."""
    return ImplMeta(
        chunnel_type=chunnel_type,
        name=name,
        priority=10,
        scope=Scope.GLOBAL,
        endpoints=Endpoints.BOTH,
        placement=Placement.HOST_SOFTWARE,
        resources=ResourceVector(),
    )


def shard_world(shards=2, replicas=3, loss=0.0, seed=7, extra_hosts=("cli",)):
    net = Network()
    shard_hosts = [
        [f"s{k}r{i}" for i in range(replicas)] for k in range(shards)
    ]
    for group in shard_hosts:
        for name in group:
            net.add_host(name)
    router_host = net.add_host("rtr")
    for name in extra_hosts:
        net.add_host(name)
    net.add_switch("tor")
    for name in [n for g in shard_hosts for n in g] + ["rtr", *extra_hosts]:
        net.add_link(name, "tor", latency=5e-6)
    if loss:
        net.attach_faults_everywhere(FaultPlan(drop_rate=loss, seed=seed))
    tier = DiscoveryShardTier(net, shard_hosts)
    router = ShardRouter(router_host, tier.map)
    return net, tier, router


class TestShardMap:
    def setup_method(self):
        self.map = ShardMap(
            1,
            [
                ShardInfo(k, Address(f"s{k}", 1), [Address(f"s{k}", 1)])
                for k in range(4)
            ],
        )

    def test_routing_is_deterministic_and_total(self):
        other = ShardMap(9, list(self.map.shards))
        for key in ("reliable", "serialize", "multicast", "encrypt"):
            assert self.map.shard_for_type(key) == other.shard_for_type(key)
            assert 0 <= self.map.shard_for_type(key) < 4
        names = [self.map.shard_for_name(f"svc-{i}") for i in range(32)]
        assert len(set(names)) > 1  # names actually spread

    def test_type_and_name_namespaces_hash_independently(self):
        assert self.map.shard_for_type("echo") != self.map.shard_for_name(
            "echo"
        ) or self.map.shard_for_type("x") != self.map.shard_for_name("x")

    def test_record_ids_route_by_prefix(self):
        assert self.map.shard_for_record("s2-17") == 2
        assert self.map.shard_for_record("s7-1") == 3  # modulo shard count
        # Foreign-format ids still route (hashed), just not by prefix.
        assert 0 <= self.map.shard_for_record("rec-3") < 4

    def test_wire_round_trip(self):
        wire = self.map.to_wire()
        back = ShardMap.from_wire(self.map.version, wire)
        assert back.version == self.map.version
        assert [s.to_wire() for s in back.shards] == wire

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(1, [])


class TestShardedRegistry:
    def test_seed_records_are_identical_across_replicas(self):
        net, tier, _router = shard_world()
        record = tier.seed_record(soft_meta("reliable"), "cli")
        assert record.record_id.startswith("s0-")  # reliable → shard 0
        for replica in tier.shards[0]:
            assert record.record_id in replica._records
        for replica in tier.shards[1]:
            assert record.record_id not in replica._records

    def test_query_fans_out_across_shards(self):
        net, tier, router = shard_world()
        rel = tier.seed_record(soft_meta("reliable", "rel"), "cli")
        ser = tier.seed_record(soft_meta("serialize", "ser"), "cli")
        assert rel.record_id.startswith("s0-")
        assert ser.record_id.startswith("s1-")
        client = ShardedDiscoveryClient(net.entity("cli"), router.address)

        def scenario(env):
            yield env.timeout(1e-3)
            yield from client.register_name("svc-0", Address("cli", 4100))
            result = yield from client.query(
                ["reliable", "serialize"], service_name="svc-0"
            )
            return result

        result = run(net.env, scenario(net.env))
        assert [o.record_id for o in result.offers["reliable"]] == [
            rel.record_id
        ]
        assert [o.record_id for o in result.offers["serialize"]] == [
            ser.record_id
        ]
        assert result.instances == [Address("cli", 4100)]
        # Both shards actually served a leg of the query — on a standby,
        # not the primary: reads are replica-local and the client pins
        # them away from the primary's (mutation-serialized) serve loop.
        for shard_id in (0, 1):
            served = sum(r.queries_served for r in tier.shards[shard_id])
            assert served >= 1
            assert tier.primary(shard_id).queries_served == 0
        assert router.maps_served >= 1

    def test_read_pin_walks_off_a_dead_standby(self):
        # The router only monitors primaries, so a client pinned to a
        # dead standby must walk off it on its own: the timed-out read
        # advances the pin and the next read lands on a live replica.
        net, tier, router = shard_world()
        tier.seed_record(soft_meta("reliable"), "cli")
        client = ShardedDiscoveryClient(net.entity("cli"), router.address)
        shard_id = tier.map.shard_for_type("reliable")
        by_address = {r.address: r for r in tier.shards[shard_id]}

        def scenario(env):
            yield env.timeout(1e-3)
            yield from client.query(["reliable"])
            pinned = by_address[client._read_replica(shard_id)]
            assert not pinned.is_primary
            pinned.crash()
            try:
                yield from client.query(["reliable"])
            except ConnectionTimeoutError:
                pass
            else:
                raise AssertionError("read against a dead standby succeeded")
            assert client.read_repins == 1
            moved = client._read_replica(shard_id)
            assert moved != pinned.address
            result = yield from client.query(["reliable"])
            assert result.offers["reliable"]
            return by_address[moved].queries_served

        assert run(net.env, scenario(net.env)) >= 1

    def test_mutations_replicate_to_every_replica(self):
        net, tier, router = shard_world()
        record = tier.seed_record(soft_meta("reliable"), "cli")
        client = ShardedDiscoveryClient(net.entity("cli"), router.address)

        def scenario(env):
            yield env.timeout(1e-3)
            first = yield from client.reserve(record.record_id, "alice")
            second = yield from client.reserve(record.record_id, "alice")
            yield from client.release(record.record_id, "alice")
            yield from client.register_name("svc-1", Address("cli", 4200))
            yield env.timeout(2e-3)  # let the slowest replica apply
            return first, second

        first, second = run(net.env, scenario(net.env))
        assert first and second
        key = (record.record_id, "alice")
        for replica in tier.shards[0]:
            lease = replica._leases[key]
            assert lease.count == 1  # two reserves, one release — everywhere
            assert replica.reservations_granted == 1
        # svc-1 → shard 1: replicated to the shard-local name table on all
        # replicas, mirrored into the cluster name service by the primary.
        for replica in tier.shards[1]:
            assert replica._names["svc-1"] == [Address("cli", 4200)]
        assert [r.address for r in net.names.resolve("svc-1")] == [
            Address("cli", 4200)
        ]

    def test_revocation_pushes_once_from_the_primary(self):
        net, tier, router = shard_world()
        record = tier.seed_record(soft_meta("reliable"), "cli")
        client = ShardedDiscoveryClient(net.entity("cli"), router.address)
        watcher = UdpSocket(net.entity("cli"))
        pushes = []

        def listen(env):
            while True:
                dgram = yield watcher.recv()
                pushes.append(msgs.decode_message(dgram.payload))

        def scenario(env):
            yield env.timeout(1e-3)
            yield from client.watch(record.record_id, watcher.address)
            yield env.timeout(1e-3)
            result = yield from tier.revoke(record.record_id)
            yield env.timeout(2e-3)
            return result

        net.env.process(listen(net.env), name="test.watcher")
        result = run(net.env, scenario(net.env))
        assert result is True
        # Watch table replicated everywhere; push emitted exactly once (by
        # the primary), not once per live replica.
        assert [p.KIND for p in pushes] == ["disc.revoked"]
        for replica in tier.shards[0]:
            assert record.record_id not in replica._records
            assert replica.revocations == 1


class TestFailover:
    def test_promote_rejects_stale_versions(self):
        net, tier, _router = shard_world(shards=1)
        standby = tier.shards[0][1]
        standby.map_version = 5
        assert standby.promote(3) is False
        assert not standby.is_primary
        assert standby.promote(5) is True
        assert standby.is_primary and standby.promotions == 1

    def test_router_promotes_standby_and_watches_survive(self):
        net, tier, router = shard_world()
        record = tier.seed_record(soft_meta("reliable"), "cli")
        client = ShardedDiscoveryClient(net.entity("cli"), router.address)
        watcher = UdpSocket(net.entity("cli"))
        pushes = []
        old_primary = tier.primary(0)

        def listen(env):
            while True:
                dgram = yield watcher.recv()
                pushes.append(msgs.decode_message(dgram.payload))

        def scenario(env):
            yield env.timeout(1e-3)
            yield from client.watch(record.record_id, watcher.address)
            yield env.timeout(1e-3)
            router.start_monitor(interval=1e-3, miss_threshold=3)
            yield env.timeout(5e-3)  # a few healthy probe rounds
            tier.crash_primary(0)
            crash_at = env.now
            yield env.timeout(40e-3)  # detect (3 misses) + promote
            assert router.failovers == 1
            # A routed mutation still works: the client times out against
            # the dead primary, refreshes the map, and retries.
            ok = yield from client.reserve(record.record_id, "owner-1")
            # Revocation through the replicated log still reaches the
            # watcher via the *new* primary's replicated watch table.
            yield from tier.revoke(record.record_id)
            yield env.timeout(5e-3)
            router.stop()
            return ok, crash_at

        net.env.process(listen(net.env), name="test.watcher")
        ok, _crash_at = run(net.env, scenario(net.env), until=10.0)
        assert ok is True
        new_primary = tier.primary(0)
        assert new_primary is not old_primary
        assert new_primary.is_primary and not new_primary.down
        assert tier.map.version == 2
        assert client.map.version == 2  # refreshed after the timeout
        assert client.map_refreshes >= 1
        assert [p.KIND for p in pushes] == ["disc.revoked"]
        assert len(router.failover_durations) == 1
        assert 0 < router.failover_durations[0] < 50e-3


CONNECT = dict(timeout=2e-3, retries=80)


def resume_world(loss=0.0, seed=7):
    """test_resume's echo world, rebuilt on the sharded tier: SmartNIC
    offload behind priority-first policy, negotiation caches both sides,
    discovery fanned across two shards."""
    net, tier, router = shard_world(
        loss=loss, seed=seed, extra_hosts=("cl",)
    )
    server_host = net.add_host(
        "srv", nic=SmartNic(net.env, name="srv.nic", offload_slots=4)
    )
    net.add_link("srv", "tor", latency=5e-6)
    toe_record = tier.seed_record(ReliableToe.meta, location="srv")
    assert toe_record.record_id.startswith("s0-")  # reliable → shard 0

    def _runtime(host, **kwargs):
        runtime = Runtime(
            host,
            discovery=ShardedDiscoveryClient(host, router.address),
            negotiation_cache_size=8,
            **kwargs,
        )
        runtime.register_chunnel(SerializeFallback)
        runtime.register_chunnel(ReliableFallback)
        return runtime

    from repro.apps.rpc import EchoServer

    server_rt = _runtime(net.entity("srv"), policy=PriorityFirstPolicy())
    client_rt = _runtime(net.entity("cl"))
    server = EchoServer(
        server_rt, port=7400, dag=wrap(Serialize() >> Reliable())
    )
    return net, tier, router, toe_record, server, client_rt


def drive(net, generator, until=60.0):
    done = {}

    def _main():
        done["value"] = yield from generator
        done["at"] = net.env.now

    net.env.process(_main(), name="test.main")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedEstablishmentWarning)
        net.env.run(until=until)
    assert "value" in done or "at" in done, "driver did not finish"
    return done.get("value")


class TestCrossShardNegcacheInvalidation:
    """Satellite: a revocation landing on shard A must evict cached
    negotiation results on clients whose establishment routed through
    shard B's map too — under 10% loss, where the best-effort push may
    die and the server-side reservation revalidation is the safety net."""

    @pytest.mark.parametrize("seed", [7, 23])
    def test_revocation_on_shard_a_evicts_across_shard_routing(self, seed):
        net, tier, _router, toe, server, client_rt = resume_world(
            loss=0.10, seed=seed
        )

        def scenario():
            endpoint = client_rt.new("x0", wrap(Serialize() >> Reliable()))
            first = yield from endpoint.connect(server.address, **CONNECT)
            first_records = {
                o.record_id for o in first.choice.values() if o.record_id
            }
            first.close()
            yield net.env.timeout(2e-3)  # let the watch registrations land
            # The establishment fanned out: serialize legs hit shard 1,
            # the reliable (offload) leg hit shard 0 (reads land on a
            # replica of the shard, not necessarily its primary).
            assert sum(r.queries_served for r in tier.shards[1]) >= 1
            # Operator revokes the offload through shard 0's replicated
            # log; the (primary-only) push races 10% loss.
            yield from tier.revoke(toe.record_id)
            yield net.env.timeout(2e-3)
            endpoint = client_rt.new("x1", wrap(Serialize() >> Reliable()))
            second = yield from endpoint.connect(server.address, **CONNECT)
            second_records = {
                o.record_id for o in second.choice.values() if o.record_id
            }
            second.close()
            return first_records, second_records

        first_records, second_records = drive(net, scenario())
        # The first negotiation offloaded; the second must not — whether
        # the eviction push survived the loss or the stale resume died at
        # reservation revalidation against the replicated lease table.
        assert toe.record_id in first_records
        assert toe.record_id not in second_records
        # Nothing resumed onto the stale binding.
        assert client_rt.negcache.hits == client_rt.negcache.fallbacks
        # Every replica of the owning shard expired the record and stayed
        # consistent under loss (the RSM retransmit/dedup path).
        for replica in tier.shards[0]:
            assert toe.record_id not in replica._records
            assert replica.audit_leases()["ok"]

    def test_push_evicts_on_lossless_fabric(self):
        net, tier, _router, toe, server, client_rt = resume_world(loss=0.0)

        def scenario():
            endpoint = client_rt.new("x0", wrap(Serialize() >> Reliable()))
            first = yield from endpoint.connect(server.address, **CONNECT)
            first.close()
            yield net.env.timeout(2e-3)
            yield from tier.revoke(toe.record_id)
            yield net.env.timeout(2e-3)
            endpoint = client_rt.new("x1", wrap(Serialize() >> Reliable()))
            second = yield from endpoint.connect(server.address, **CONNECT)
            second.close()
            return second

        second = drive(net, scenario())
        # Loss-free: the push always lands, so the entry was gone before
        # the second connect even looked (a miss, not a fallback).
        assert client_rt.negcache.invalidations >= 1
        assert server.runtime.negcache.invalidations >= 1
        assert client_rt.negcache.hits == 0
        assert toe.record_id not in {
            o.record_id for o in second.choice.values()
        }
