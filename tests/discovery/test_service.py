"""Tests for the discovery service: records, leases, inventory, protocol."""

import pytest

from repro.chunnels import (
    McastSwitchSequencer,
    SerializeAccelerated,
    ShardSwitch,
    ShardXdp,
)
from repro.core import ResourceVector
from repro.discovery import (
    DirectDiscoveryClient,
    DiscoveryService,
    NullDiscoveryClient,
    RemoteDiscoveryClient,
)
from repro.errors import DiscoveryError, RegistrationError
from repro.sim import Address, Network, SmartNic

from ..conftest import run


def world():
    net = Network()
    net.add_host("cl")
    net.add_host("srv", nic=SmartNic(net.env, name="srv.nic", offload_slots=2))
    dsc = net.add_host("dsc")
    net.add_switch("tor", stages=4, sram_kb=256)
    for name in ("cl", "srv", "dsc"):
        net.add_link(name, "tor", latency=5e-6)
    return net, DiscoveryService(dsc)


class TestRegistration:
    def test_register_and_query(self):
        _net, service = world()
        service.register(ShardXdp.meta, location="srv")
        offers = service.offers_for(["shard"])
        assert [o.meta.name for o in offers["shard"]] == ["xdp"]
        assert offers["shard"][0].origin == "network"
        assert offers["shard"][0].location == "srv"

    def test_register_at_switch(self):
        _net, service = world()
        record = service.register(McastSwitchSequencer.meta, location="tor")
        assert record.location == "tor"

    def test_register_unknown_location_rejected(self):
        _net, service = world()
        with pytest.raises(RegistrationError):
            service.register(ShardXdp.meta, location="atlantis")

    def test_unregister_removes_offers(self):
        _net, service = world()
        record = service.register(ShardXdp.meta, location="srv")
        service.unregister(record.record_id)
        assert service.offers_for(["shard"])["shard"] == []

    def test_query_multiple_types(self):
        _net, service = world()
        service.register(ShardXdp.meta, location="srv")
        service.register(SerializeAccelerated.meta, location="srv")
        offers = service.offers_for(["shard", "serialize", "reliable"])
        assert len(offers["shard"]) == 1
        assert len(offers["serialize"]) == 1
        assert offers["reliable"] == []


class TestDeviceInventory:
    def test_switch_capacity_derived_from_device(self):
        _net, service = world()
        capacity = service.device_capacity("tor")
        assert capacity["switch_stages"] == 4
        assert capacity["switch_sram_kb"] == 256

    def test_host_capacity_includes_smartnic(self):
        _net, service = world()
        capacity = service.device_capacity("srv")
        assert capacity["nic_slots"] == 2
        assert capacity["xdp_share"] == 1

    def test_plain_host_has_no_nic_slots(self):
        _net, service = world()
        capacity = service.device_capacity("cl")
        assert "nic_slots" not in capacity

    def test_capacity_override(self):
        _net, service = world()
        service.set_capacity("tor", ResourceVector(switch_stages=99))
        assert service.device_capacity("tor")["switch_stages"] == 99

    def test_unknown_device_rejected(self):
        _net, service = world()
        with pytest.raises(DiscoveryError):
            service.device_capacity("nowhere")


class TestReservations:
    def test_reserve_consumes_resources(self):
        _net, service = world()
        record = service.register(ShardSwitch.meta, location="tor")
        assert service.reserve(record.record_id, "appA")
        in_use = service.device_in_use("tor")
        assert in_use["switch_stages"] == 2

    def test_reserve_is_refcounted_per_owner(self):
        _net, service = world()
        record = service.register(ShardSwitch.meta, location="tor")
        assert service.reserve(record.record_id, "appA")
        assert service.reserve(record.record_id, "appA")  # second conn
        assert service.device_in_use("tor")["switch_stages"] == 2  # once
        service.release(record.record_id, "appA")
        assert service.device_in_use("tor")["switch_stages"] == 2  # held
        service.release(record.record_id, "appA")
        assert service.device_in_use("tor").is_zero  # now free

    def test_capacity_exhaustion_denies(self):
        _net, service = world()
        record = service.register(ShardSwitch.meta, location="tor")
        assert service.reserve(record.record_id, "appA")  # 2 of 4 stages
        assert service.reserve(record.record_id, "appB")  # 4 of 4 stages
        assert not service.reserve(record.record_id, "appC")
        assert service.reservations_denied == 1

    def test_release_unknown_is_noop(self):
        _net, service = world()
        service.release("rec-404", "ghost")  # must not raise

    def test_reserve_unknown_record_fails(self):
        _net, service = world()
        assert not service.reserve("rec-404", "appA")

    def test_leases_at_location(self):
        _net, service = world()
        record = service.register(ShardSwitch.meta, location="tor")
        service.reserve(record.record_id, "appA")
        leases = service.leases_at("tor")
        assert len(leases) == 1
        assert leases[0].owner == "appA"

    def test_scheduler_hook_vetoes(self):
        from repro.core import DrfScheduler

        _net, service = world()
        service.scheduler = DrfScheduler(fairness_cap=0.25)
        record = service.register(ShardSwitch.meta, location="tor")
        # 2 of 4 stages = 0.5 dominant share > 0.25 cap.
        assert not service.reserve(record.record_id, "appA")


class TestRemoteProtocol:
    def test_query_over_the_network(self):
        net, service = world()
        service.register(ShardXdp.meta, location="srv")
        client = RemoteDiscoveryClient(net.hosts["cl"], service.address)

        def scenario(env):
            yield env.timeout(1e-4)
            result = yield from client.query(["shard"], service_name=None)
            return result

        result = run(net.env, scenario(net.env))
        assert [o.meta.name for o in result.offers["shard"]] == ["xdp"]
        assert client.round_trips == 1

    def test_reserve_and_release_over_the_network(self):
        net, service = world()
        record = service.register(ShardSwitch.meta, location="tor")
        client = RemoteDiscoveryClient(net.hosts["cl"], service.address)

        def scenario(env):
            yield env.timeout(1e-4)
            ok = yield from client.reserve(record.record_id, "appA")
            in_use = service.device_in_use("tor")["switch_stages"]
            yield from client.release(record.record_id, "appA")
            return ok, in_use, service.device_in_use("tor").is_zero

        ok, in_use, free_after = run(net.env, scenario(net.env))
        assert ok and in_use == 2 and free_after

    def test_name_registration_over_the_network(self):
        net, service = world()
        client = RemoteDiscoveryClient(net.hosts["cl"], service.address)

        def scenario(env):
            yield env.timeout(1e-4)
            yield from client.register_name("svc", Address("srv", 7000))
            found = [r.address for r in net.names.resolve("svc")]
            yield from client.unregister_name("svc", Address("srv", 7000))
            return found, net.names.resolve("svc")

        found, after = run(net.env, scenario(net.env))
        assert found == [Address("srv", 7000)]
        assert after == []

    def test_unreachable_service_times_out(self):
        from repro.errors import ConnectionTimeoutError

        net, _service = world()
        client = RemoteDiscoveryClient(
            net.hosts["cl"], Address("dsc", 9), timeout=1e-4, retries=2
        )

        def scenario(env):
            yield env.timeout(0)
            yield from client.query(["shard"])

        with pytest.raises(ConnectionTimeoutError):
            run(net.env, scenario(net.env))

    def test_unknown_request_kind_answered_with_error(self):
        from repro.core import messages as msgs

        net, service = world()
        from repro.sim import UdpSocket

        def scenario(env):
            sock = UdpSocket(net.hosts["cl"])
            # A raw dict that never went through the schema: the service
            # must reject it, but still answer (it carries a req_id) so the
            # sender stops retransmitting.
            sock.send(
                {"kind": "disc.shenanigans", "req_id": "r1"},
                service.address,
                size=32,
            )
            reply = yield sock.recv()
            return reply.payload

        reply = msgs.decode_message(run(net.env, scenario(net.env)))
        assert isinstance(reply, msgs.ServiceError)
        assert reply.req_id == "r1"
        assert service.malformed_total == 1


class TestClientFlavours:
    def test_direct_client_matches_remote_semantics(self):
        net, service = world()
        service.register(ShardXdp.meta, location="srv")
        client = DirectDiscoveryClient(service)

        def scenario(env):
            yield env.timeout(0)
            result = yield from client.query(["shard"])
            ok = yield from client.reserve("rec-404", "a")
            return result, ok

        result, ok = run(net.env, scenario(net.env))
        assert [o.meta.name for o in result.offers["shard"]] == ["xdp"]
        assert ok is False

    def test_null_client_returns_nothing_but_resolves_names(self):
        net, _service = world()
        net.names.register("svc", Address("srv", 7000))
        client = NullDiscoveryClient(net.hosts["cl"])

        def scenario(env):
            yield env.timeout(0)
            result = yield from client.query(["shard"], service_name="svc")
            ok = yield from client.reserve("anything", "a")
            return result, ok

        result, ok = run(net.env, scenario(net.env))
        assert result.offers["shard"] == []
        assert result.instances == [Address("srv", 7000)]
        assert ok is True


class TestLeaseExpiryAndWatch:
    """Regression: unregister must expire leases, and watchers must hear."""

    def test_unregister_expires_leases_and_frees_resources(self):
        _net, service = world()
        record = service.register(ShardSwitch.meta, location="tor")
        assert service.reserve(record.record_id, "appA")
        assert service.reserve(record.record_id, "appB")
        assert not service.device_in_use("tor").is_zero

        service.unregister(record.record_id)

        assert service.leases_at("tor") == []
        assert service.device_in_use("tor").is_zero
        assert service.leases_expired == 2
        # The record is gone for good: nothing to reserve any more.
        assert not service.reserve(record.record_id, "appC")

    def test_revoke_pushes_to_watchers(self):
        net, service = world()
        from repro.sim import UdpSocket

        record = service.register(ShardXdp.meta, location="srv")
        sock = UdpSocket(net.hosts["cl"], 4000)
        service.add_watch(record.record_id, sock.address)

        def scenario(env):
            yield env.timeout(1e-4)
            service.revoke(record.record_id, reason="test")
            push = yield sock.recv()
            return push.payload

        from repro.core import messages as msgs

        push = msgs.decode_message(run(net.env, scenario(net.env)))
        assert isinstance(push, msgs.Revoked)
        assert push.record_id == record.record_id
        assert service.revocations == 1

    def test_revoke_unknown_record_is_noop(self):
        _net, service = world()
        service.revoke("rec-404")
        assert service.revocations == 0

    def test_priority_scheduler_preempts_and_notifies(self):
        from repro.core import PriorityScheduler
        from repro.sim import UdpSocket

        net, service = world()
        service.scheduler = PriorityScheduler()
        # Three low-priority sequencer leases occupy 3 of 4 switch stages.
        low = service.register(McastSwitchSequencer.meta, location="tor")
        for owner in ("a", "b", "c"):
            assert service.reserve(low.record_id, owner)
        sock = UdpSocket(net.hosts["cl"], 4001)
        service.add_watch(low.record_id, sock.address)

        # A priority-90 shard program needs 2 stages: one victim suffices.
        high = service.register(ShardSwitch.meta, location="tor")

        def scenario(env):
            yield env.timeout(1e-4)
            granted = service.reserve(high.record_id, "shard-app")
            push = yield sock.recv()
            return granted, push.payload

        from repro.core import messages as msgs

        granted, body = run(net.env, scenario(net.env))
        push = msgs.decode_message(body)
        assert granted
        assert service.leases_preempted == 1
        assert isinstance(push, msgs.LeaseRevoked)
        assert push.record_id == low.record_id
        assert push.owner == "a"  # oldest equal-priority lease evicted
        # Survivors: two sequencers + the shard program = 4 of 4 stages.
        assert service.device_in_use("tor")["switch_stages"] == 4

    def test_watch_over_the_wire(self):
        net, service = world()
        record = service.register(ShardXdp.meta, location="srv")
        client = RemoteDiscoveryClient(net.hosts["cl"], service.address)
        from repro.sim import UdpSocket

        sock = UdpSocket(net.hosts["cl"], 4002)

        def scenario(env):
            yield env.timeout(1e-4)
            yield from client.watch(record.record_id, sock.address)
            service.revoke(record.record_id)
            push = yield sock.recv()
            return push.payload

        from repro.core import messages as msgs

        push = msgs.decode_message(run(net.env, scenario(net.env)))
        assert isinstance(push, msgs.Revoked)
        assert push.record_id == record.record_id
