"""Tests for key distributions, YCSB workloads, and arrival processes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    DeterministicArrivals,
    LatestChooser,
    PoissonArrivals,
    ScrambledZipfianChooser,
    UniformChooser,
    WORKLOAD_MIXES,
    WorkloadSpec,
    YcsbWorkload,
    ZipfianChooser,
    closed_loop_gaps,
    make_chooser,
    zipf_pmf,
)


class TestChoosers:
    def test_uniform_covers_space(self):
        chooser = UniformChooser(10, seed=1)
        seen = {chooser.next_index() for _ in range(500)}
        assert seen == set(range(10))

    def test_indices_always_in_range(self):
        for name in ("uniform", "zipfian", "zipfian_clustered", "latest"):
            chooser = make_chooser(name, 50, seed=3)
            assert all(0 <= chooser.next_index() < 50 for _ in range(500))

    def test_seed_determinism(self):
        a = ZipfianChooser(100, seed=9)
        b = ZipfianChooser(100, seed=9)
        assert [a.next_index() for _ in range(50)] == [
            b.next_index() for _ in range(50)
        ]

    def test_zipfian_is_skewed(self):
        chooser = ZipfianChooser(1000, seed=2)
        draws = [chooser.next_index() for _ in range(5000)]
        top_fraction = sum(1 for d in draws if d < 10) / len(draws)
        assert top_fraction > 0.3  # head-heavy

    def test_zipfian_matches_analytic_head_probability(self):
        chooser = ZipfianChooser(100, seed=5)
        draws = [chooser.next_index() for _ in range(20000)]
        empirical_p0 = sum(1 for d in draws if d == 0) / len(draws)
        analytic_p0 = zipf_pmf(100)[0]
        assert abs(empirical_p0 - analytic_p0) < 0.03

    def test_scrambled_zipfian_spreads_hot_keys(self):
        chooser = ScrambledZipfianChooser(1000, seed=2)
        draws = [chooser.next_index() for _ in range(3000)]
        # The hottest key is no longer index 0; popular keys scatter.
        hottest = max(set(draws), key=draws.count)
        assert draws.count(0) < draws.count(hottest) or hottest != 0

    def test_latest_prefers_high_indices(self):
        chooser = LatestChooser(1000, seed=4)
        draws = [chooser.next_index() for _ in range(3000)]
        assert sum(1 for d in draws if d > 900) / len(draws) > 0.3

    def test_grow_extends_range(self):
        chooser = ZipfianChooser(10, seed=1)
        chooser.grow(100)
        draws = [chooser.next_index() for _ in range(2000)]
        assert max(draws) >= 10

    def test_grow_cannot_shrink(self):
        chooser = UniformChooser(10)
        with pytest.raises(ValueError):
            chooser.grow(5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            UniformChooser(0)
        with pytest.raises(ValueError):
            ZipfianChooser(10, theta=1.5)
        with pytest.raises(ValueError):
            make_chooser("pareto", 10)

    def test_pmf_sums_to_one(self):
        assert math.isclose(sum(zipf_pmf(50)), 1.0, rel_tol=1e-12)


class TestYcsbWorkload:
    def test_all_defined_workloads_generate(self):
        for name in WORKLOAD_MIXES:
            spec = WorkloadSpec(
                workload=name, record_count=50, operation_count=200
            )
            ops = list(YcsbWorkload(spec).operations())
            assert len(ops) == 200

    def test_workload_a_mix_is_half_and_half(self):
        spec = WorkloadSpec(workload="A", record_count=100, operation_count=4000)
        workload = YcsbWorkload(spec)
        list(workload.operations())
        reads = workload.counts.get("read", 0)
        updates = workload.counts.get("update", 0)
        assert abs(reads - updates) < 400  # ~50/50

    def test_workload_c_is_read_only(self):
        spec = WorkloadSpec(workload="C", record_count=10, operation_count=300)
        workload = YcsbWorkload(spec)
        ops = list(workload.operations())
        assert all(op["op"] == "read" for op in ops)

    def test_inserts_extend_the_key_space(self):
        spec = WorkloadSpec(workload="D", record_count=10, operation_count=500)
        workload = YcsbWorkload(spec)
        inserted = [op for op in workload.operations() if op["op"] == "insert"]
        assert inserted
        keys = {op["key"] for op in inserted}
        assert len(keys) == len(inserted)  # all fresh keys

    def test_load_phase_covers_all_records(self):
        spec = WorkloadSpec(record_count=25)
        load_ops = list(YcsbWorkload(spec).load_operations())
        assert len(load_ops) == 25
        assert len({op["key"] for op in load_ops}) == 25
        assert all(len(op["value"]) == spec.value_size for op in load_ops)

    def test_values_are_deterministic(self):
        spec = WorkloadSpec(record_count=5, operation_count=50, seed=77)
        a = [op for op in YcsbWorkload(spec).operations()]
        b = [op for op in YcsbWorkload(spec).operations()]
        assert a == b

    def test_scan_lengths_bounded(self):
        spec = WorkloadSpec(
            workload="E", record_count=20, operation_count=300, max_scan_length=7
        )
        ops = list(YcsbWorkload(spec).operations())
        scans = [op for op in ops if op["op"] == "scan"]
        assert scans
        assert all(1 <= op["length"] <= 7 for op in scans)

    def test_uniform_distribution_override(self):
        spec = WorkloadSpec(
            workload="A",
            record_count=100,
            operation_count=2000,
            distribution="uniform",
        )
        workload = YcsbWorkload(spec)
        keys = [op["key"] for op in workload.operations() if "key" in op]
        hottest = max(set(keys), key=keys.count)
        assert keys.count(hottest) < 60  # no Zipf head

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            WorkloadSpec(workload="Z")
        with pytest.raises(ValueError):
            WorkloadSpec(record_count=0)


class TestArrivals:
    def test_poisson_mean_rate(self):
        arrivals = PoissonArrivals(rate=1000, seed=5)
        gaps = list(arrivals.gaps(5000))
        assert abs(sum(gaps) / len(gaps) - 1e-3) < 1e-4

    def test_poisson_determinism(self):
        assert list(PoissonArrivals(100, seed=1).gaps(20)) == list(
            PoissonArrivals(100, seed=1).gaps(20)
        )

    def test_deterministic_arrivals_are_bounded(self):
        arrivals = DeterministicArrivals(rate=100, jitter=0.2, seed=2)
        for gap in arrivals.gaps(200):
            assert 0.8 / 100 <= gap <= 1.2 / 100

    def test_zero_jitter_is_periodic(self):
        arrivals = DeterministicArrivals(rate=50, jitter=0.0)
        assert set(arrivals.gaps(10)) == {1 / 50}

    def test_arrival_times_are_monotonic(self):
        times = list(PoissonArrivals(100, seed=3).arrival_times(100))
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_closed_loop_gaps(self):
        gaps = closed_loop_gaps(0.5)
        assert [next(gaps) for _ in range(3)] == [0.5, 0.5, 0.5]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0)
        with pytest.raises(ValueError):
            DeterministicArrivals(rate=10, jitter=1.0)
        with pytest.raises(ValueError):
            next(closed_loop_gaps(-1))

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=20)
    def test_poisson_gaps_positive(self, rate):
        arrivals = PoissonArrivals(rate=rate, seed=0)
        assert all(gap > 0 for gap in arrivals.gaps(50))
