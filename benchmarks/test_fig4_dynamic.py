"""Benchmark: Figure 4 — dynamic name resolution.

Paper: the client resolves the service name at every connect; when a local
instance starts at t = 4 s, later connections use it (pipe IPC) and latency
steps down — with no client change or reconfiguration.
"""

import pytest

from repro.experiments import Fig4Config, run_fig4

CONFIG = Fig4Config(duration=10.0, connect_interval=0.25, local_start_time=4.0)


def test_fig4_dynamic_resolution(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig4(CONFIG), rounds=1, iterations=1
    )
    record_result("fig4_dynamic", result.render())
    assert result.before is not None and result.after is not None
    # The step: post-switch latency is a small fraction of pre-switch.
    assert result.after.p50 < result.before.p50 / 2
    # The switch happens within two connect intervals of the local start.
    assert (
        CONFIG.local_start_time
        <= result.switch_time
        <= CONFIG.local_start_time + 2 * CONFIG.connect_interval
    )
    # Transport flips from the network stack to pipes.
    transports = [t for _time, t in result.transports]
    assert transports[0] == "udp" and transports[-1] == "pipe"
