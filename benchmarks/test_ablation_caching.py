"""Benchmark: DESIGN.md §5 ablation 1 — per-connect resolution vs caching.

The paper's runtime re-resolves names and re-queries discovery at every
``connect`` — that is what makes Figure 4's dynamic switchover work, at
the cost of one control round trip per connection.  This ablation
quantifies both sides: caching saves the round trip (cheaper setup) but
keeps sending post-switch connections to the stale remote instance.
"""

import pytest

from repro.experiments import run_caching_ablation
from repro.metrics import format_table


def test_caching_tradeoff(benchmark, record_result):
    rows = benchmark.pedantic(run_caching_ablation, rounds=1, iterations=1)
    record_result(
        "ablation_caching",
        format_table(
            rows,
            columns=[
                "mode",
                "mean_setup_us",
                "discovery_rtts",
                "stale_connections",
                "n",
            ],
        ),
    )
    by_mode = {row["mode"]: row for row in rows}
    # Caching is cheaper per connect...
    assert (
        by_mode["cached"]["mean_setup_us"]
        < by_mode["per-connect"]["mean_setup_us"]
    )
    assert by_mode["cached"]["discovery_rtts"] == 1
    # ...but misses the local instance entirely (stale placement),
    # while per-connect resolution never goes stale.
    assert by_mode["per-connect"]["stale_connections"] == 0
    assert by_mode["cached"]["stale_connections"] > 0
