"""Benchmark: §6 scheduling claim — contended offloads need multi-resource
scheduling.

"If two programs can benefit from offloading functionality to a P4 switch,
but the switch only has capacity for one, the Bertha runtime must choose
between these two applications.  Note that Chunnel priorities alone are
insufficient to accomplish this goal."
"""

import pytest

from repro.experiments import run_scheduler_ablation


def test_scheduler_fairness(benchmark, record_result):
    result = benchmark.pedantic(run_scheduler_ablation, rounds=1, iterations=1)
    record_result("ablation_scheduler", result.render())
    by_name = {row["scheduler"]: row for row in result.rows()}
    # First-fit starves the late tenant; priorities don't help; DRF does.
    assert by_name["first-fit"]["tenants_served"] == 1
    assert by_name["priority"]["tenants_served"] == 1
    assert by_name["drf"]["tenants_served"] == 2
    assert by_name["drf"]["max_min_gap"] < by_name["first-fit"]["max_min_gap"]
