"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures at a scale
that keeps ``pytest benchmarks/ --benchmark-only`` in the minutes range;
``python -m repro.experiments <name> --full`` runs paper-scale parameters.

Results (the rows/series the paper reports) are printed to the benchmark
log and written under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write one experiment's rendered rows to benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}")

    return _record
