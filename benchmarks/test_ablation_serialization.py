"""Benchmark: §3.2 serialization story — new implementations without
rebuilding the application.

The same application, same DAG; registering an accelerated serializer with
the discovery service (plus an operator policy that prefers it) changes
the negotiated implementation and the end-to-end latency.
"""

import pytest

from repro.experiments import run_serialization_comparison
from repro.metrics import format_table


def test_serialization_adoption(benchmark, record_result):
    rows = benchmark.pedantic(
        lambda: run_serialization_comparison(requests=150, value_size=8192),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_serialization",
        format_table(rows, columns=["implementation", "mean_rtt_us", "n"]),
    )
    by_impl = {row["implementation"]: row["mean_rtt_us"] for row in rows}
    assert by_impl["fpga"] < by_impl["sw"]
