"""Benchmark: §5 text claim — negotiation overhead.

"Establishing a Bertha connection requires two additional IPC round trips
to query the discovery service and negotiate the connection mechanism.
However, subsequent messages on an established connection do not encounter
additional latency."
"""

import pytest

from repro.experiments import run_negotiation_overhead


def test_negotiation_overhead(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_negotiation_overhead(connections=30, requests=20),
        rounds=1,
        iterations=1,
    )
    record_result("ablation_negotiation", result.render())
    assert result.control_round_trips == 2
    # Zero steady-state penalty: identical data path once established.
    assert result.bertha_rtt_us == pytest.approx(
        result.hardcoded_rtt_us, rel=0.05
    )
    # Setup costs more than a raw socket — the price of negotiation.
    assert result.bertha_setup_us > result.hardcoded_setup_us
