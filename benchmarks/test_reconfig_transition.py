"""Benchmark: live reconfiguration — transition pause and steady-state cost.

Two claims:

* The mid-connection transition is a bounded pause (one control round
  trip), and the p95 step (offloaded → fallback → offloaded) matches the
  degradation the negotiation priorities predict.
* Arming the reconfiguration machinery costs *nothing* until a transition
  actually runs: the latency stream with ``auto_reconfig`` on is
  bit-identical to the stream without it (exact equality — the simulator
  is deterministic, and epoch 0 stamps no header).
"""

import pytest

from repro.experiments import ReconfigConfig, run_epoch_overhead, run_reconfig

CONFIG = ReconfigConfig(
    duration=12.0,
    revoke_at=4.0,
    restore_at=8.0,
    offered_load=2_000,
    bucket=0.5,
)


def test_reconfig_transition(benchmark, record_result):
    result = benchmark.pedantic(lambda: run_reconfig(CONFIG), rounds=1, iterations=1)
    record_result("reconfig_transition", result.render())

    # Zero loss across both transitions.
    assert result.zero_loss

    # The step: degraded plateau above baseline, full recovery after.
    p95 = result.phase_p95
    assert p95["degraded"] > 1.2 * p95["baseline"]
    assert p95["recovered"] == pytest.approx(p95["baseline"], rel=0.05)

    # Bounded pause: one control round trip over 5 us links, well under
    # the engine's ack timeout (no retries needed).
    assert len(result.pause_times) == 2
    assert all(0 < pause < 1e-3 for pause in result.pause_times)


def test_epoch_stamp_steady_state_overhead(benchmark, record_result):
    overhead = benchmark.pedantic(
        lambda: run_epoch_overhead(requests=2000), rounds=1, iterations=1
    )
    text = (
        f"n={overhead['n']} requests, reconfig armed vs absent\n"
        f"latency streams identical: {overhead['identical']}\n"
        f"max |delta|: {overhead['max_abs_delta_us']:.6f} us"
    )
    record_result("reconfig_epoch_overhead", text)
    # Zero added per-message latency when no transition is in flight.
    assert overhead["identical"]
    assert overhead["max_abs_delta_us"] == 0.0
