"""Benchmark: Figure 3 — container networking via the local fast path.

Paper: client + server containers on one host; per-request latency
boxplots across request sizes and 10000 connections; the Bertha client
(negotiated pipes) matches the hardcoded-IPC app and beats inter-container
TCP, despite paying two extra control round trips at connect time.
"""

import pytest

from repro.experiments import Fig3Config, run_fig3

CONFIG = Fig3Config(connections=150, sizes=[64, 1024, 10240, 102400])


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(CONFIG)


def test_fig3_container_networking(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig3(Fig3Config(connections=40, sizes=[64, 10240])),
        rounds=1,
        iterations=1,
    )
    record_result("fig3_container", result.render())
    # Shape: bertha ≈ pipes, both ≪ tcp.
    for size in result.config.sizes:
        assert result.rtts[("bertha", size)].p50 == pytest.approx(
            result.rtts[("pipes", size)].p50, rel=0.10
        )
        assert result.rtts[("tcp", size)].p50 > 2 * result.rtts[("bertha", size)].p50


def test_fig3_full_size_sweep(record_result, fig3_result):
    """The four-size sweep the paper plots (one panel per size)."""
    record_result("fig3_container_full", fig3_result.render())
    for size in CONFIG.sizes:
        bertha = fig3_result.rtts[("bertha", size)]
        pipes = fig3_result.rtts[("pipes", size)]
        assert bertha.p50 == pytest.approx(pipes.p50, rel=0.10)
        assert bertha.p95 >= bertha.p5  # non-degenerate distribution


def test_fig3_setup_vs_steady_state(fig3_result):
    """Setup pays the negotiation; steady state does not (§5)."""
    size = CONFIG.sizes[0]
    assert (
        fig3_result.setups[("bertha", size)].p50
        > fig3_result.setups[("tcp", size)].p50
    )
    assert (
        fig3_result.rtts[("bertha", size)].p50
        < fig3_result.rtts[("tcp", size)].p50
    )
