"""Benchmark: §6 optimizer claims — reorder and merge vs PCIe traffic.

"Reordering this pipeline as http2 |> encrypt |> tcp allows the use of the
offloaded implementation without increased PCIe overhead" — the original
order costs a 3× increase (NIC-CPU-NIC).  And when the NIC offers only a
TLS engine, reorder-then-merge makes the offload usable at all.
"""

import pytest

from repro.experiments import run_optimizer_ablation


def test_optimizer_pcie_traffic(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_optimizer_ablation(messages=2000, message_size=1500),
        rounds=1,
        iterations=1,
    )
    record_result("ablation_optimizer", result.render())
    by_name = {row["pipeline"]: row for row in result.rows()}
    original = by_name["encrypt |> http2 |> tcp"]
    reordered = by_name["http2 |> encrypt |> tcp"]
    merged = by_name["http2 |> tls"]
    # The paper's 3×.
    assert original["pcie_bytes"] == 3 * reordered["pcie_bytes"]
    assert original["crossings"] == 3
    assert reordered["crossings"] == 1
    # Merge keeps the 1-crossing profile with one fewer pipeline stage.
    assert merged["crossings"] == 1
