"""Benchmark: §3.2 consensus — the value of in-network ordering.

The paper's NOPaxos/Speculative-Paxos motivation: ordered multicast from
the network shortens the consensus fast path.  Same replicas, same client
code; the only difference is one discovery registration (the switch
sequencer program).
"""

import pytest

from repro.experiments import run_consensus_comparison
from repro.metrics import format_table


def test_switch_sequencer_beats_host_sequencer(benchmark, record_result):
    rows = benchmark.pedantic(
        lambda: run_consensus_comparison(operations=200),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_consensus",
        format_table(rows, columns=["sequencer", "impl", "mean_us", "p95_us", "n"]),
    )
    by_seq = {row["sequencer"]: row for row in rows}
    host = by_seq["host-sequencer"]
    switch = by_seq["switch-sequencer"]
    assert switch["impl"] == "McastSwitchSequencer"
    assert host["impl"] == "McastSequencerFallback"
    # The host sequencer adds a full extra network traversal per op.
    assert switch["mean_us"] < host["mean_us"] * 0.8
