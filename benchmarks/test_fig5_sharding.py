"""Benchmark: Figure 5 — sharding placements under YCSB-A load.

Paper: sharded KV store (3 shards), 2 clients, YCSB workload A with
uniform keys; p95 latency in four negotiated configurations.  Shape: at
high load, client-push < mixed ≲ server-accelerated (XDP) ≪ server
fallback; the fallback saturates first, the XDP path next, client push
last (worker-limited).
"""

import numpy as np
import pytest

from repro.experiments import Fig5Config, SCENARIOS, run_fig5, run_fig5_scenario
from repro.metrics import percentile

CONFIG = Fig5Config(
    requests_per_point=4000,
    offered_loads=(100_000, 200_000, 300_000, 500_000, 700_000),
)


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(CONFIG)


def test_fig5_sharding_sweep(benchmark, record_result, fig5_result):
    benchmark.pedantic(
        lambda: run_fig5_scenario(
            "client_push", 200_000, Fig5Config(requests_per_point=1000)
        ),
        rounds=1,
        iterations=1,
    )
    record_result("fig5_sharding", fig5_result.render())

    def p95(scenario, load):
        return fig5_result.p95[(scenario, load)]

    # Saturation order: fallback first, then XDP, client push last.
    assert p95("server_fallback", 300_000) > 5 * p95("server_accel", 300_000)
    assert p95("server_accel", 700_000) > 2 * p95("client_push", 700_000)
    # Mixed sits between client push and server accelerated.
    assert (
        p95("client_push", 500_000)
        <= p95("mixed", 500_000)
        <= 1.1 * p95("server_accel", 500_000)
    )


def test_fig5_correctness_not_sacrificed(fig5_result):
    """Even the worst configuration still answers every request at loads
    it can sustain (the paper: fallback has 'poor performance, but still
    provides correctness')."""
    key = ("server_fallback", 100_000)
    assert fig5_result.completed[key] == fig5_result.offered[key]


def test_fig5_negotiated_implementations(fig5_result):
    impls = fig5_result.chosen_impls
    assert set(impls["client_push"]) == {"ShardClientFallback"}
    assert set(impls["server_accel"]) == {"ShardXdp"}
    assert set(impls["mixed"]) == {"ShardClientFallback", "ShardXdp"}
    assert set(impls["server_fallback"]) == {"ShardServerFallback"}
